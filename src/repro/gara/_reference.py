"""Reference slot-table implementation (the seed's event-point scan).

:class:`NaiveSlotTable` is the original O(n²)-per-query implementation
of the advance-reservation table: every :meth:`~NaiveSlotTable.usage_at`
walks the whole entry dict, every :meth:`~NaiveSlotTable.peak_usage`
re-samples usage at each event point inside the window. It is obviously
correct, which is exactly why it stays: the production
:class:`~repro.gara.slot_table.SlotTable` (sweep-line profile index)
is differentially tested against it on randomized mutation sequences
(``tests/gara/test_slot_table_index.py``) and benchmarked against it
(``benchmarks/bench_slot_table_scaling.py``). It is not part of the
public API and nothing on a hot path may import it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..errors import CapacityError, ReservationNotFound
from ..qos.vector import ResourceVector
from .slot_table import SlotEntry

__all__ = ["NaiveSlotTable"]


class NaiveSlotTable:
    """Event-point-scan capacity accounting (differential-test oracle).

    Mirrors :class:`~repro.gara.slot_table.SlotTable`'s API and
    semantics exactly, including the per-table entry-id counter, so a
    mirrored operation sequence yields identical entry ids and —
    for binary-exact demands — bit-identical query results.
    """

    def __init__(self, capacity: ResourceVector) -> None:
        self._capacity = capacity
        self._entries: Dict[int, SlotEntry] = {}
        self._entry_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        """The pool's total capacity."""
        return self._capacity

    def set_capacity(self, capacity: ResourceVector) -> None:
        """Change the pool capacity (entries are left in place)."""
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[SlotEntry]:
        """All booked entries (a copy), ordered by start time."""
        return sorted(self._entries.values(), key=lambda e: (e.start, e.entry_id))

    def entries_at(self, time: float) -> List[SlotEntry]:
        """Entries whose window covers ``time``."""
        return [entry for entry in self.entries() if entry.active_at(time)]

    def usage_at(self, time: float) -> ResourceVector:
        """Total demand booked at an instant (full entry scan)."""
        total = ResourceVector.zero()
        for entry in self._entries.values():
            if entry.active_at(time):
                total = total + entry.demand
        return total

    def _event_points(self, start: float, end: float) -> List[float]:
        points = {start}
        for entry in self._entries.values():
            if entry.overlaps(start, end) and entry.start > start:
                points.add(entry.start)
        return sorted(points)

    def peak_usage(self, start: float, end: float) -> ResourceVector:
        """Component-wise maximum booked demand over ``[start, end)``."""
        peak = ResourceVector.zero()
        for point in self._event_points(start, end):
            peak = peak.component_max(self.usage_at(point))
        return peak

    def available(self, start: float, end: float) -> ResourceVector:
        """Capacity not yet booked anywhere in ``[start, end)``."""
        return self._capacity - self.peak_usage(start, end)

    def available_at(self, time: float) -> ResourceVector:
        """Capacity not booked at an instant."""
        return self._capacity - self.usage_at(time)

    def can_reserve(self, demand: ResourceVector, start: float,
                    end: float) -> bool:
        """Whether ``demand`` fits throughout ``[start, end)``."""
        if end <= start:
            return False
        return demand.fits_within(self.available(start, end))

    def overcommitment_at(self, time: float) -> ResourceVector:
        """Booked demand in excess of capacity at ``time`` (zero if none)."""
        return self.usage_at(time) - self._capacity

    def utilization_at(self, time: float) -> float:
        """CPU-component utilization in ``[0, 1]`` (0 if no CPU capacity)."""
        if self._capacity.cpu <= 0:
            return 0.0
        return min(1.0, self.usage_at(time).cpu / self._capacity.cpu)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, demand: ResourceVector, start: float, end: float, *,
                label: str = "", force: bool = False) -> SlotEntry:
        """Book ``demand`` over ``[start, end)``.

        Raises:
            CapacityError: When the demand does not fit and ``force``
                is false.
        """
        if end <= start:
            raise CapacityError(
                f"empty reservation window [{start}, {end})")
        if not force and not self.can_reserve(demand, start, end):
            free = self.available(start, end)
            raise CapacityError(
                f"demand {demand} exceeds free capacity {free} over "
                f"[{start}, {end})")
        entry = SlotEntry(entry_id=next(self._entry_counter), demand=demand,
                          start=start, end=end, label=label)
        self._entries[entry.entry_id] = entry
        return entry

    def release(self, entry: SlotEntry) -> None:
        """Remove a booked entry.

        Raises:
            ReservationNotFound: When the entry is not in the table.
        """
        if entry.entry_id not in self._entries:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        del self._entries[entry.entry_id]

    def resize(self, entry: SlotEntry, demand: ResourceVector, *,
               force: bool = False) -> SlotEntry:
        """Replace an entry's demand (GARA's *modify* primitive).

        Raises:
            ReservationNotFound: When the entry is not in the table.
            CapacityError: When the new demand does not fit (the old
                booking is restored).
        """
        self.release(entry)
        try:
            return self.reserve(demand, entry.start, entry.end,
                                label=entry.label, force=force)
        except CapacityError:
            self._entries[entry.entry_id] = entry
            raise

    def truncate(self, entry: SlotEntry, end: float) -> SlotEntry:
        """Shorten an entry's window (early release at ``end``)."""
        if entry.entry_id not in self._entries:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        del self._entries[entry.entry_id]
        if end <= entry.start:
            return entry
        shortened = SlotEntry(entry_id=entry.entry_id, demand=entry.demand,
                              start=entry.start, end=min(entry.end, end),
                              label=entry.label)
        self._entries[shortened.entry_id] = shortened
        return shortened
