"""Advance-reservation slot table.

Reservations claim a :class:`~repro.qos.vector.ResourceVector` over a
half-open time window ``[start, end)``. The table answers the two
questions admission control needs — "what is free over this window?"
and "does this demand fit?" — from an incrementally maintained
**sweep-line usage profile**: booked usage is piecewise constant, so
the table keeps the sorted boundary times (reservation starts and
ends) together with the total usage of every segment between two
consecutive boundaries. Point queries (:meth:`usage_at`,
:meth:`available_at`) are a single binary search, window queries
(:meth:`peak_usage`, :meth:`available`) are a component-wise maximum
over the ``k`` segments the window overlaps, and mutations patch only
the affected segments — O(log n) / O(log n + k) instead of the
O(n²)-per-query event-point scan the first implementation used (kept
as :class:`repro.gara._reference.NaiveSlotTable` for differential
testing).

The table also supports capacity *reduction* (node failures shrink the
pool in the Section 5.6 example) and reports which windows become
overcommitted so the adaptation layer can react.

Exactness: segment usage is accumulated with plain float addition in
mutation order, while the naive scan re-sums entries per query. For
demands that are exactly representable in binary floating point
(integers, quarters, …) the two are bit-identical; for arbitrary
floats they can differ in the last ulp, which every admission
comparison already absorbs through the ``1e-9`` epsilon in
:meth:`ResourceVector.fits_within`.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import CapacityError, ReservationNotFound
from ..qos.vector import ResourceVector

#: Sentinel end time for open-ended reservations.
FOREVER = float("inf")


@dataclass(frozen=True)
class SlotEntry:
    """One booked window in the table."""

    entry_id: int
    demand: ResourceVector
    start: float
    end: float
    label: str = ""

    def active_at(self, time: float) -> bool:
        """Whether the window covers ``time`` (half-open semantics)."""
        return self.start <= time < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """Whether the window intersects ``[start, end)``."""
        return self.start < end and start < self.end


class SlotTable:
    """Time-indexed capacity accounting for one resource pool.

    Internally the table maintains three structures that are kept in
    lock-step by every mutation:

    * ``_entries`` — the booked entries by id (the ledger).
    * ``_times`` — sorted, distinct boundary times; segment ``i``
      covers ``[_times[i], _times[i+1])`` (the last segment extends to
      :data:`FOREVER`), and usage before ``_times[0]`` is zero.
    * ``_cpu`` / ``_memory`` / ``_disk`` / ``_bandwidth`` — parallel
      flat arrays, one scalar per segment: the total demand booked
      over that segment, per component. Flat columns keep the probe
      path allocation-free — a point query indexes four floats, a
      window peak is a builtin ``max`` over four list slices — where
      per-segment tuples forced a Python-level unpack per segment.

    ``_boundary_refs`` counts how many entry endpoints sit on each
    boundary so boundaries disappear (and segments re-merge) exactly
    when the last entry touching them is released.
    """

    def __init__(self, capacity: ResourceVector) -> None:
        self._capacity = capacity
        self._entries: Dict[int, SlotEntry] = {}
        self._entry_counter = itertools.count(1)
        self._times: List[float] = []
        self._cpu: List[float] = []
        self._memory: List[float] = []
        self._disk: List[float] = []
        self._bandwidth: List[float] = []
        self._boundary_refs: Dict[float, int] = {}

    # ------------------------------------------------------------------
    # Sweep-line profile maintenance
    # ------------------------------------------------------------------

    def _insert_boundary(self, time: float) -> None:
        """Reference-count ``time`` as a boundary, splitting its segment."""
        refs = self._boundary_refs
        count = refs.get(time)
        if count:
            refs[time] = count + 1
            return
        refs[time] = 1
        pos = bisect_left(self._times, time)
        self._times.insert(pos, time)
        # A new boundary splits its segment: both halves start with the
        # segment's current usage (zero before the first boundary).
        self._cpu.insert(pos, self._cpu[pos - 1] if pos else 0.0)
        self._memory.insert(pos, self._memory[pos - 1] if pos else 0.0)
        self._disk.insert(pos, self._disk[pos - 1] if pos else 0.0)
        self._bandwidth.insert(pos, self._bandwidth[pos - 1] if pos else 0.0)

    def _remove_boundary(self, time: float) -> None:
        """Drop one reference to ``time``, merging segments at zero."""
        refs = self._boundary_refs
        count = refs[time] - 1
        if count:
            refs[time] = count
            return
        del refs[time]
        pos = bisect_left(self._times, time)
        del self._times[pos]
        del self._cpu[pos]
        del self._memory[pos]
        del self._disk[pos]
        del self._bandwidth[pos]

    def _apply_delta(self, entry: SlotEntry, sign: float) -> None:
        """Add ``sign *`` the entry's demand to every covered segment.

        Each component patches its own column, and all-zero components
        (most bookings carry no disk demand, say) skip their column
        entirely. Accumulation order per segment is unchanged from the
        tuple-based profile, so sums stay bit-identical.
        """
        times = self._times
        lo = bisect_left(times, entry.start)
        hi = bisect_left(times, entry.end)
        demand = entry.demand
        span = range(lo, hi)
        d = sign * demand.cpu
        if d:
            col = self._cpu
            for index in span:
                col[index] += d
        d = sign * demand.memory_mb
        if d:
            col = self._memory
            for index in span:
                col[index] += d
        d = sign * demand.disk_mb
        if d:
            col = self._disk
            for index in span:
                col[index] += d
        d = sign * demand.bandwidth_mbps
        if d:
            col = self._bandwidth
            for index in span:
                col[index] += d

    def _index_entry(self, entry: SlotEntry) -> None:
        self._insert_boundary(entry.start)
        if not math.isinf(entry.end):
            self._insert_boundary(entry.end)
        self._apply_delta(entry, 1.0)

    def _unindex_entry(self, entry: SlotEntry) -> None:
        self._apply_delta(entry, -1.0)
        self._remove_boundary(entry.start)
        if not math.isinf(entry.end):
            self._remove_boundary(entry.end)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        """The pool's total capacity."""
        return self._capacity

    def set_capacity(self, capacity: ResourceVector) -> None:
        """Change the pool capacity (e.g. after a node failure/repair).

        Existing entries are left in place; use
        :meth:`overcommitment_at` to discover windows that no longer
        fit, and let the adaptation layer decide what to squeeze. The
        usage profile is capacity-independent, so this is O(1).
        """
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[SlotEntry]:
        """All booked entries (a copy), ordered by start time."""
        return sorted(self._entries.values(), key=lambda e: (e.start, e.entry_id))

    def entries_at(self, time: float) -> List[SlotEntry]:
        """Entries whose window covers ``time``."""
        return [entry for entry in self.entries() if entry.active_at(time)]

    def usage_at(self, time: float) -> ResourceVector:
        """Total demand booked at an instant (one binary search)."""
        index = bisect_right(self._times, time) - 1
        if index < 0:
            return ResourceVector.zero()
        return ResourceVector(self._cpu[index], self._memory[index],
                              self._disk[index], self._bandwidth[index])

    def usage_profile(self) -> List[Tuple[float, float, ResourceVector]]:
        """The piecewise-constant profile as ``(start, end, usage)``.

        Segments are returned in time order and cover exactly the span
        of the boundary index (usage outside it is zero); the final
        segment's end is :data:`FOREVER`.
        """
        times = self._times
        profile = []
        for index, start in enumerate(times):
            end = times[index + 1] if index + 1 < len(times) else FOREVER
            profile.append((start, end, ResourceVector(
                self._cpu[index], self._memory[index], self._disk[index],
                self._bandwidth[index])))
        return profile

    def peak_usage(self, start: float, end: float) -> ResourceVector:
        """Component-wise maximum booked demand over ``[start, end)``.

        A range-max over the segments the window overlaps: usage only
        rises at reservation starts, so the segment maxima are exactly
        the event-point samples the naive scan takes. Each component is
        a builtin ``max`` over a contiguous slice of its flat column —
        no per-segment Python objects on the probe path. Peaks clamp at
        zero, matching the naive scan's zero-initialized fold.
        """
        times = self._times
        if not times or end <= start:
            # Degenerate window: the naive scan still samples ``start``
            # (clamped at zero, like every peak).
            return ResourceVector.zero().component_max(self.usage_at(start))
        hi = bisect_left(times, end) - 1
        if hi < 0:
            return ResourceVector.zero()
        lo = bisect_right(times, start) - 1
        if lo < 0:
            lo = 0
        hi += 1
        peak0 = max(self._cpu[lo:hi])
        peak1 = max(self._memory[lo:hi])
        peak2 = max(self._disk[lo:hi])
        peak3 = max(self._bandwidth[lo:hi])
        return ResourceVector(peak0 if peak0 > 0.0 else 0.0,
                              peak1 if peak1 > 0.0 else 0.0,
                              peak2 if peak2 > 0.0 else 0.0,
                              peak3 if peak3 > 0.0 else 0.0)

    def available(self, start: float, end: float) -> ResourceVector:
        """Capacity not yet booked anywhere in ``[start, end)``."""
        return self._capacity - self.peak_usage(start, end)

    def available_at(self, time: float) -> ResourceVector:
        """Capacity not booked at an instant (the pinhole fast path).

        Equivalent to ``available(time, time + ε)`` without the
        degenerate window; callers polling "what is free right now"
        (sensors, the broker's optimizer budget, Scenario 1 retries)
        should use this.
        """
        return self._capacity - self.usage_at(time)

    def can_reserve(self, demand: ResourceVector, start: float,
                    end: float) -> bool:
        """Whether ``demand`` fits throughout ``[start, end)``."""
        if end <= start:
            return False
        return demand.fits_within(self.available(start, end))

    def overcommitment_at(self, time: float) -> ResourceVector:
        """Booked demand in excess of capacity at ``time`` (zero if none)."""
        return self.usage_at(time) - self._capacity

    def utilization_at(self, time: float) -> float:
        """CPU-component utilization in ``[0, 1]`` (0 if no CPU capacity)."""
        if self._capacity.cpu <= 0:
            return 0.0
        return min(1.0, self.usage_at(time).cpu / self._capacity.cpu)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, demand: ResourceVector, start: float, end: float, *,
                label: str = "", force: bool = False) -> SlotEntry:
        """Book ``demand`` over ``[start, end)``.

        Args:
            force: Book even when the table lacks headroom. The
                adaptation layer uses this when it has decided to
                overcommit knowingly (it immediately squeezes someone
                else); ordinary admission never forces.

        Raises:
            CapacityError: When the demand does not fit and ``force``
                is false.
        """
        if end <= start:
            raise CapacityError(
                f"empty reservation window [{start}, {end})")
        if not force and not self.can_reserve(demand, start, end):
            free = self.available(start, end)
            raise CapacityError(
                f"demand {demand} exceeds free capacity {free} over "
                f"[{start}, {end})")
        entry = SlotEntry(entry_id=next(self._entry_counter), demand=demand,
                          start=start, end=end, label=label)
        self._entries[entry.entry_id] = entry
        self._index_entry(entry)
        return entry

    def release(self, entry: SlotEntry) -> None:
        """Remove a booked entry.

        Raises:
            ReservationNotFound: When the entry is not in the table.
        """
        stored = self._entries.pop(entry.entry_id, None)
        if stored is None:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        self._unindex_entry(stored)

    def resize(self, entry: SlotEntry, demand: ResourceVector, *,
               force: bool = False) -> SlotEntry:
        """Replace an entry's demand (GARA's *modify* primitive).

        The old booking is removed before the fit test, so shrinking
        always succeeds and growing only needs the delta.

        Raises:
            ReservationNotFound: When the entry is not in the table.
            CapacityError: When the new demand does not fit (the old
                booking is restored).
        """
        self.release(entry)
        try:
            return self.reserve(demand, entry.start, entry.end,
                                label=entry.label, force=force)
        except CapacityError:
            self._entries[entry.entry_id] = entry
            self._index_entry(entry)
            raise

    def truncate(self, entry: SlotEntry, end: float) -> SlotEntry:
        """Shorten an entry's window (early release at ``end``)."""
        stored = self._entries.pop(entry.entry_id, None)
        if stored is None:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        self._unindex_entry(stored)
        if end <= entry.start:
            return entry
        shortened = SlotEntry(entry_id=entry.entry_id, demand=entry.demand,
                              start=entry.start, end=min(entry.end, end),
                              label=entry.label)
        self._entries[shortened.entry_id] = shortened
        self._index_entry(shortened)
        return shortened
