"""Advance-reservation slot table.

Reservations claim a :class:`~repro.qos.vector.ResourceVector` over a
half-open time window ``[start, end)``. The table answers the two
questions admission control needs — "what is free over this window?"
and "does this demand fit?" — by scanning the event points (reservation
starts) inside the window: usage is piecewise constant between event
points, so the component-wise peak over those points is exact.

The table also supports capacity *reduction* (node failures shrink the
pool in the Section 5.6 example) and reports which windows become
overcommitted so the adaptation layer can react.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

from ..errors import CapacityError, ReservationNotFound
from ..qos.vector import ResourceVector

_entry_counter = itertools.count(1)

#: Sentinel end time for open-ended reservations.
FOREVER = float("inf")


@dataclass(frozen=True)
class SlotEntry:
    """One booked window in the table."""

    entry_id: int
    demand: ResourceVector
    start: float
    end: float
    label: str = ""

    def active_at(self, time: float) -> bool:
        """Whether the window covers ``time`` (half-open semantics)."""
        return self.start <= time < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """Whether the window intersects ``[start, end)``."""
        return self.start < end and start < self.end


class SlotTable:
    """Time-indexed capacity accounting for one resource pool."""

    def __init__(self, capacity: ResourceVector) -> None:
        self._capacity = capacity
        self._entries: Dict[int, SlotEntry] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        """The pool's total capacity."""
        return self._capacity

    def set_capacity(self, capacity: ResourceVector) -> None:
        """Change the pool capacity (e.g. after a node failure/repair).

        Existing entries are left in place; use
        :meth:`overcommitment_at` to discover windows that no longer
        fit, and let the adaptation layer decide what to squeeze.
        """
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[SlotEntry]:
        """All booked entries (a copy), ordered by start time."""
        return sorted(self._entries.values(), key=lambda e: (e.start, e.entry_id))

    def entries_at(self, time: float) -> List[SlotEntry]:
        """Entries whose window covers ``time``."""
        return [entry for entry in self.entries() if entry.active_at(time)]

    def usage_at(self, time: float) -> ResourceVector:
        """Total demand booked at an instant."""
        total = ResourceVector.zero()
        for entry in self._entries.values():
            if entry.active_at(time):
                total = total + entry.demand
        return total

    def _event_points(self, start: float, end: float) -> List[float]:
        points = {start}
        for entry in self._entries.values():
            if entry.overlaps(start, end) and entry.start > start:
                points.add(entry.start)
        return sorted(points)

    def peak_usage(self, start: float, end: float) -> ResourceVector:
        """Component-wise maximum booked demand over ``[start, end)``."""
        peak = ResourceVector.zero()
        for point in self._event_points(start, end):
            peak = peak.component_max(self.usage_at(point))
        return peak

    def available(self, start: float, end: float) -> ResourceVector:
        """Capacity not yet booked anywhere in ``[start, end)``."""
        return self._capacity - self.peak_usage(start, end)

    def can_reserve(self, demand: ResourceVector, start: float,
                    end: float) -> bool:
        """Whether ``demand`` fits throughout ``[start, end)``."""
        if end <= start:
            return False
        return demand.fits_within(self.available(start, end))

    def overcommitment_at(self, time: float) -> ResourceVector:
        """Booked demand in excess of capacity at ``time`` (zero if none)."""
        return self.usage_at(time) - self._capacity

    def utilization_at(self, time: float) -> float:
        """CPU-component utilization in ``[0, 1]`` (0 if no CPU capacity)."""
        if self._capacity.cpu <= 0:
            return 0.0
        return min(1.0, self.usage_at(time).cpu / self._capacity.cpu)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, demand: ResourceVector, start: float, end: float, *,
                label: str = "", force: bool = False) -> SlotEntry:
        """Book ``demand`` over ``[start, end)``.

        Args:
            force: Book even when the table lacks headroom. The
                adaptation layer uses this when it has decided to
                overcommit knowingly (it immediately squeezes someone
                else); ordinary admission never forces.

        Raises:
            CapacityError: When the demand does not fit and ``force``
                is false.
        """
        if end <= start:
            raise CapacityError(
                f"empty reservation window [{start}, {end})")
        if not force and not self.can_reserve(demand, start, end):
            free = self.available(start, end)
            raise CapacityError(
                f"demand {demand} exceeds free capacity {free} over "
                f"[{start}, {end})")
        entry = SlotEntry(entry_id=next(_entry_counter), demand=demand,
                          start=start, end=end, label=label)
        self._entries[entry.entry_id] = entry
        return entry

    def release(self, entry: SlotEntry) -> None:
        """Remove a booked entry.

        Raises:
            ReservationNotFound: When the entry is not in the table.
        """
        if entry.entry_id not in self._entries:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        del self._entries[entry.entry_id]

    def resize(self, entry: SlotEntry, demand: ResourceVector, *,
               force: bool = False) -> SlotEntry:
        """Replace an entry's demand (GARA's *modify* primitive).

        The old booking is removed before the fit test, so shrinking
        always succeeds and growing only needs the delta.

        Raises:
            ReservationNotFound: When the entry is not in the table.
            CapacityError: When the new demand does not fit (the old
                booking is restored).
        """
        self.release(entry)
        try:
            return self.reserve(demand, entry.start, entry.end,
                                label=entry.label, force=force)
        except CapacityError:
            self._entries[entry.entry_id] = entry
            raise

    def truncate(self, entry: SlotEntry, end: float) -> SlotEntry:
        """Shorten an entry's window (early release at ``end``)."""
        if entry.entry_id not in self._entries:
            raise ReservationNotFound(
                f"slot entry {entry.entry_id} is not booked")
        del self._entries[entry.entry_id]
        if end <= entry.start:
            return entry
        shortened = SlotEntry(entry_id=entry.entry_id, demand=entry.demand,
                              start=entry.start, end=min(entry.end, end),
                              label=entry.label)
        self._entries[shortened.entry_id] = shortened
        return shortened
