"""GARA — the reservation substrate (reimplemented).

The paper's broker sits on the Globus Architecture for Reservation and
Allocation: reservations are created from RSL strings, return a
*reservation handle*, must be *claimed* by binding a process ID, and
can be cancelled or modified (Table 2). This package reimplements that
contract over an advance-reservation slot table:

* :mod:`repro.gara.slot_table` — time-indexed capacity accounting
  (sweep-line usage-profile index; O(log n) point queries).
* :mod:`repro.gara._reference` — the original event-point-scan table,
  kept as the differential-testing oracle for the index.
* :mod:`repro.gara.reservation` — reservation objects and their state
  machine (temporary → committed → bound → finished).
* :mod:`repro.gara.api` — the ``globus_gara_reservation_*`` primitives.
"""

from .api import GaraApi
from .reservation import Reservation, ReservationHandle, ReservationState
from .slot_table import SlotEntry, SlotTable

__all__ = [
    "GaraApi",
    "Reservation",
    "ReservationHandle",
    "ReservationState",
    "SlotEntry",
    "SlotTable",
]
