"""The GARA API (Table 2 of the paper).

One :class:`GaraApi` instance fronts one resource manager's slot table
and exposes the primitives the paper lists::

    globus_gara_reservation_create(gatekeeper, req_rsl, &reserve_handle)
    globus_gara_reservation_bind(reserve_handle, &bind_param)
    globus_gara_reservation_unbind(reserve_handle)
    globus_gara_reservation_cancel(reserve_handle)

plus ``reservation_modify`` (used by Foster et al.'s adaptive control
and by our Scenario 1/3 adaptation to resize live allocations) and
``reservation_commit`` (the confirmation step of the paper's temporary
reservation protocol). Uncommitted reservations auto-cancel when the
confirmation deadline passes, exactly as Section 3.1 describes.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from ..errors import ReservationNotFound, ReservationStateError
from ..qos.vector import ResourceVector
from ..rsl.builder import vector_from_rsl
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..telemetry import Telemetry
from .reservation import Reservation, ReservationHandle, ReservationState
from .slot_table import SlotTable

#: Default confirmation window for temporary reservations.
DEFAULT_CONFIRM_TIMEOUT = 30.0


class GaraApi:
    """GARA reservation primitives over one slot table.

    Args:
        sim: The simulation engine (drives confirmation timeouts and
            window expiry).
        slot_table: The resource pool this GARA instance manages.
        name: Gatekeeper name, for traces.
        confirm_timeout: How long a temporary reservation survives
            without confirmation.
        trace: Optional activity recorder.
    """

    def __init__(self, sim: Simulator, slot_table: SlotTable, *,
                 name: str = "gara",
                 confirm_timeout: float = DEFAULT_CONFIRM_TIMEOUT,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._table = slot_table
        self.name = name
        self.confirm_timeout = confirm_timeout
        self._trace = trace
        self._reservations: Dict[int, Reservation] = {}
        # Per-gatekeeper handle numbering (like per-table slot-entry
        # ids): two testbeds built in one process assign identical
        # handles, so journal payloads are comparable across runs.
        self._handles = itertools.count(1000)
        #: Optional telemetry hub; ``None`` keeps the reservation hot
        #: path exactly as fast as before (a single attribute check).
        self.telemetry: Optional[Telemetry] = None

    def _observe(self, op: str) -> None:
        """Count one GARA operation and refresh the occupancy gauge."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.metrics.counter("repro_gara_operations_total",
                                  gatekeeper=self.name, op=op).inc()
        telemetry.metrics.gauge(
            "repro_gara_cpu_reserved", gatekeeper=self.name).set(
            self._table.usage_at(self._sim.now).cpu)

    # ------------------------------------------------------------------
    # Table 2 primitives
    # ------------------------------------------------------------------

    def reservation_create(self, req_rsl: str, *,
                           temporary: bool = True) -> ReservationHandle:
        """Create a reservation from an RSL request string.

        Returns the reservation handle on success.

        Raises:
            CapacityError: When the demand does not fit in the window.
            RSLError: When the RSL string is malformed.
        """
        demand, start, end, label = vector_from_rsl(req_rsl)
        entry = self._table.reserve(demand, start, end, label=label or "")
        handle = ReservationHandle(next(self._handles))
        reservation = Reservation(
            handle=handle, entry=entry, rsl=req_rsl,
            created_at=self._sim.now,
            state=(ReservationState.TEMPORARY if temporary
                   else ReservationState.COMMITTED),
        )
        self._reservations[handle.value] = reservation
        if temporary:
            deadline = self._sim.now + self.confirm_timeout
            reservation.confirm_deadline = deadline
            self._sim.schedule_at(
                deadline, lambda: self._confirm_timeout(handle),
                label=f"{self.name}:confirm-timeout:{handle}")
        self._schedule_expiry(reservation)
        self._observe("create")
        self._record(f"reservation_create {handle} demand={demand} "
                     f"window=[{start:g}, {end:g})")
        return handle

    def reservation_commit(self, handle: ReservationHandle) -> None:
        """Confirm a temporary reservation (the broker approved the SLA)."""
        reservation = self._get(handle)
        reservation.commit()
        self._observe("commit")
        self._record(f"reservation_commit {handle}")

    def reservation_bind(self, handle: ReservationHandle, pid: int) -> None:
        """Claim a committed reservation with the launched process ID."""
        reservation = self._get(handle)
        reservation.bind(pid)
        self._observe("bind")
        self._record(f"reservation_bind {handle} pid={pid}")

    def reservation_unbind(self, handle: ReservationHandle) -> None:
        """Detach the bound process from its reservation."""
        reservation = self._get(handle)
        reservation.unbind()
        self._observe("unbind")
        self._record(f"reservation_unbind {handle}")

    def reservation_cancel(self, handle: ReservationHandle) -> None:
        """Cancel a live reservation and free its capacity."""
        reservation = self._get(handle)
        reservation.cancel()
        self._table.release(reservation.entry)
        self._observe("cancel")
        self._record(f"reservation_cancel {handle}")

    def reservation_modify(self, handle: ReservationHandle,
                           demand: ResourceVector, *,
                           force: bool = False) -> None:
        """Resize a live reservation in place (GARA create/modify).

        Raises:
            CapacityError: When the new demand does not fit and
                ``force`` is false; the old booking is preserved.
        """
        reservation = self._get(handle)
        if not reservation.state.is_live:
            raise ReservationStateError(
                f"cannot modify {handle}: state={reservation.state.value}")
        reservation.entry = self._table.resize(reservation.entry, demand,
                                               force=force)
        self._observe("modify")
        self._record(f"reservation_modify {handle} demand={demand}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def reservation_status(self, handle: ReservationHandle) -> Reservation:
        """The live reservation object for a handle."""
        return self._get(handle)

    def live_reservations(self) -> List[Reservation]:
        """All reservations still holding capacity."""
        return [r for r in self._reservations.values() if r.state.is_live]

    @property
    def slot_table(self) -> SlotTable:
        """The managed slot table."""
        return self._table

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _get(self, handle: ReservationHandle) -> Reservation:
        reservation = self._reservations.get(handle.value)
        if reservation is None:
            raise ReservationNotFound(f"unknown reservation handle {handle}")
        return reservation

    def _confirm_timeout(self, handle: ReservationHandle) -> None:
        reservation = self._reservations.get(handle.value)
        if reservation is None or reservation.state is not ReservationState.TEMPORARY:
            return
        reservation.cancel()
        self._table.release(reservation.entry)
        self._observe("confirm_timeout")
        self._record(f"confirmation timeout — cancelled {handle}")

    def _schedule_expiry(self, reservation: Reservation) -> None:
        end = reservation.entry.end
        if math.isinf(end):
            return
        handle = reservation.handle

        def expire() -> None:
            live = self._reservations.get(handle.value)
            if live is None or not live.state.is_live:
                return
            live.expire()
            self._table.release(live.entry)
            self._observe("expire")
            self._record(f"reservation expired {handle}")

        self._sim.schedule_at(end, expire,
                              label=f"{self.name}:expiry:{handle}")

    def _record(self, message: str) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, "gara",
                               f"{self.name}: {message}")
