"""Reservation objects and their lifecycle.

Section 3.1 describes the flow the state machine encodes:

* resources are reserved **temporarily** during discovery;
* if the broker confirms within a deadline the reservation is
  **committed**, otherwise GARA cancels it;
* when the Grid service launches it *claims* the reservation by
  **binding** its process ID;
* unbinding returns it to committed; cancellation or window expiry
  finishes it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import ReservationStateError
from ..qos.vector import ResourceVector
from .slot_table import SlotEntry

_handle_counter = itertools.count(1000)


class ReservationState(Enum):
    """Lifecycle states of a GARA reservation."""

    TEMPORARY = "temporary"
    COMMITTED = "committed"
    BOUND = "bound"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    @property
    def is_live(self) -> bool:
        """Whether the reservation still holds capacity."""
        return self in (ReservationState.TEMPORARY,
                        ReservationState.COMMITTED,
                        ReservationState.BOUND)


@dataclass(frozen=True)
class ReservationHandle:
    """The opaque reference returned by ``reservation_create``."""

    value: int

    @classmethod
    def fresh(cls) -> "ReservationHandle":
        return cls(next(_handle_counter))

    def __str__(self) -> str:
        return f"gara-{self.value}"


@dataclass
class Reservation:
    """A live reservation tracked by a :class:`~repro.gara.api.GaraApi`.

    Attributes:
        handle: The opaque reference.
        entry: The slot-table booking backing this reservation.
        rsl: The RSL string the reservation was created from.
        state: Current lifecycle state.
        created_at: Simulation time of creation.
        confirm_deadline: Time by which a temporary reservation must be
            committed before GARA cancels it.
        bound_pid: Claiming process ID once bound.
    """

    handle: ReservationHandle
    entry: SlotEntry
    rsl: str
    state: ReservationState = ReservationState.TEMPORARY
    created_at: float = 0.0
    confirm_deadline: Optional[float] = None
    bound_pid: Optional[int] = None

    @property
    def demand(self) -> ResourceVector:
        """The booked resource demand."""
        return self.entry.demand

    @property
    def window(self) -> "tuple[float, float]":
        """The booked ``(start, end)`` window."""
        return (self.entry.start, self.entry.end)

    def _require(self, *states: ReservationState) -> None:
        if self.state not in states:
            expected = ", ".join(s.value for s in states)
            raise ReservationStateError(
                f"reservation {self.handle} is {self.state.value}; "
                f"operation needs one of: {expected}")

    def commit(self) -> None:
        """Temporary → committed (broker confirmed the SLA)."""
        self._require(ReservationState.TEMPORARY)
        self.state = ReservationState.COMMITTED

    def bind(self, pid: int) -> None:
        """Committed → bound (the launched process claims it)."""
        self._require(ReservationState.COMMITTED)
        self.state = ReservationState.BOUND
        self.bound_pid = pid

    def unbind(self) -> None:
        """Bound → committed (the process detaches)."""
        self._require(ReservationState.BOUND)
        self.state = ReservationState.COMMITTED
        self.bound_pid = None

    def cancel(self) -> None:
        """Any live state → cancelled."""
        self._require(ReservationState.TEMPORARY,
                      ReservationState.COMMITTED,
                      ReservationState.BOUND)
        self.state = ReservationState.CANCELLED
        self.bound_pid = None

    def expire(self) -> None:
        """Any live state → expired (window ended)."""
        self._require(ReservationState.TEMPORARY,
                      ReservationState.COMMITTED,
                      ReservationState.BOUND)
        self.state = ReservationState.EXPIRED
        self.bound_pid = None
