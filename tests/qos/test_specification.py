"""Tests for QoS specifications (repro.qos.specification)."""

from __future__ import annotations

import pytest

from repro.errors import QoSSpecificationError
from repro.qos.parameters import (
    Dimension,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector


@pytest.fixture
def spec():
    return QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45),
        exact_parameter(Dimension.MEMORY_MB, 64),
    )


class TestConstruction:
    def test_duplicate_dimension_rejected(self):
        with pytest.raises(QoSSpecificationError):
            QoSSpecification.of(exact_parameter(Dimension.CPU, 2),
                                exact_parameter(Dimension.CPU, 4))

    def test_lookup(self, spec):
        assert Dimension.CPU in spec
        assert Dimension.DELAY_MS not in spec
        assert spec.get(Dimension.CPU) is not None
        assert spec.get(Dimension.DELAY_MS) is None

    def test_require_raises_for_missing(self, spec):
        with pytest.raises(QoSSpecificationError):
            spec.require(Dimension.DELAY_MS)

    def test_len_and_iter(self, spec):
        assert len(spec) == 3
        assert len(list(spec)) == 3


class TestOperatingPoints:
    def test_best_point(self, spec):
        best = spec.best_point()
        assert best[Dimension.CPU] == 8
        assert best[Dimension.BANDWIDTH_MBPS] == 45
        assert best[Dimension.MEMORY_MB] == 64

    def test_worst_point(self, spec):
        worst = spec.worst_point()
        assert worst[Dimension.CPU] == 2
        assert worst[Dimension.BANDWIDTH_MBPS] == 10

    def test_admits_best_and_worst(self, spec):
        assert spec.admits(spec.best_point())
        assert spec.admits(spec.worst_point())

    def test_rejects_out_of_range(self, spec):
        point = spec.best_point()
        point[Dimension.CPU] = 100
        assert not spec.admits(point)

    def test_rejects_missing_dimension(self, spec):
        point = spec.best_point()
        del point[Dimension.MEMORY_MB]
        assert not spec.admits(point)

    def test_clamp_point(self, spec):
        clamped = spec.clamp_point({Dimension.CPU: 100,
                                    Dimension.BANDWIDTH_MBPS: 1})
        assert clamped[Dimension.CPU] == 8
        assert clamped[Dimension.BANDWIDTH_MBPS] == 10
        assert clamped[Dimension.MEMORY_MB] == 64
        assert spec.admits(clamped)


class TestQualityLevels:
    def test_levels_worst_to_best(self, spec):
        levels = spec.quality_levels(3)
        assert levels[0] == spec.worst_point()
        assert levels[-1] == spec.best_point()

    def test_all_levels_admissible(self, spec):
        for level in spec.quality_levels(5):
            assert spec.admits(level)

    def test_exact_spec_has_single_level(self):
        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 4))
        assert len(spec.quality_levels(5)) == 1

    def test_mixed_depth_saturates_shorter_parameters(self):
        spec = QoSSpecification.of(
            discrete_parameter(Dimension.CPU, [2, 4]),
            range_parameter(Dimension.BANDWIDTH_MBPS, 10, 40))
        levels = spec.quality_levels(4)
        # CPU saturates at 4 once its two candidates are exhausted.
        assert levels[-1][Dimension.CPU] == 4
        assert levels[-1][Dimension.BANDWIDTH_MBPS] == 40


class TestDomination:
    def test_capability_dominates_request(self):
        capability = QoSSpecification.of(
            range_parameter(Dimension.CPU, 0, 26),
            range_parameter(Dimension.BANDWIDTH_MBPS, 0, 622))
        request = QoSSpecification.of(
            range_parameter(Dimension.CPU, 2, 8),
            range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
        assert capability.dominates(request)

    def test_underpowered_capability_does_not_dominate(self):
        capability = QoSSpecification.of(
            range_parameter(Dimension.CPU, 0, 4),
            range_parameter(Dimension.BANDWIDTH_MBPS, 0, 622))
        request = QoSSpecification.of(
            range_parameter(Dimension.CPU, 8, 16),  # floor above best
            range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
        assert not capability.dominates(request)

    def test_missing_dimension_fails_domination(self):
        capability = QoSSpecification.of(
            range_parameter(Dimension.CPU, 0, 26))
        request = QoSSpecification.of(
            range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
        assert not capability.dominates(request)

    def test_lower_is_better_domination(self):
        capability = QoSSpecification.of(
            range_parameter(Dimension.DELAY_MS, 1, 100))
        request = QoSSpecification.of(
            range_parameter(Dimension.DELAY_MS, 5, 50))
        # Capability can go as low as 1ms, below the request's 50ms floor.
        assert capability.dominates(request)


class TestDemandMapping:
    def test_point_demand_ignores_observed_dimensions(self):
        demand = QoSSpecification.point_demand({
            Dimension.CPU: 4.0,
            Dimension.PACKET_LOSS: 0.1,
            Dimension.DELAY_MS: 10.0,
        })
        assert demand == ResourceVector(cpu=4.0)

    def test_max_and_min_demand(self, spec):
        assert spec.max_demand().cpu == 8
        assert spec.min_demand().cpu == 2
        assert spec.min_demand().fits_within(spec.max_demand())
