"""Tests for resource vectors (repro.qos.vector)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.qos.vector import ResourceVector


def vectors():
    component = st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
    return st.builds(ResourceVector, cpu=component, memory_mb=component,
                     disk_mb=component, bandwidth_mbps=component)


class TestConstruction:
    def test_zero(self):
        assert ResourceVector.zero().is_zero()

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu=-1.0)

    def test_frozen(self):
        vector = ResourceVector(cpu=1.0)
        with pytest.raises(Exception):
            vector.cpu = 2.0  # type: ignore[misc]


class TestArithmetic:
    def test_add(self):
        total = ResourceVector(cpu=2, memory_mb=10) + \
            ResourceVector(cpu=3, bandwidth_mbps=5)
        assert total == ResourceVector(cpu=5, memory_mb=10,
                                       bandwidth_mbps=5)

    def test_subtract_clamps_at_zero(self):
        result = ResourceVector(cpu=2) - ResourceVector(cpu=5)
        assert result == ResourceVector.zero()

    def test_scaled(self):
        assert ResourceVector(cpu=2, memory_mb=4).scaled(2.5) == \
            ResourceVector(cpu=5, memory_mb=10)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu=1).scaled(-1)

    def test_component_min_max(self):
        a = ResourceVector(cpu=2, memory_mb=10)
        b = ResourceVector(cpu=5, memory_mb=3)
        assert a.component_max(b) == ResourceVector(cpu=5, memory_mb=10)
        assert a.component_min(b) == ResourceVector(cpu=2, memory_mb=3)


class TestPartialOrder:
    def test_fits_within(self):
        demand = ResourceVector(cpu=4, memory_mb=64)
        capacity = ResourceVector(cpu=10, memory_mb=128, disk_mb=100)
        assert demand.fits_within(capacity)
        assert not capacity.fits_within(demand)

    def test_dominates_is_inverse_of_fits(self):
        a = ResourceVector(cpu=4)
        b = ResourceVector(cpu=2)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable_vectors(self):
        a = ResourceVector(cpu=4, memory_mb=1)
        b = ResourceVector(cpu=1, memory_mb=4)
        assert not a.fits_within(b)
        assert not b.fits_within(a)


class TestProperties:
    @given(vectors(), vectors())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors(), vectors())
    def test_sum_dominates_terms(self, a, b):
        assert a.fits_within(a + b)
        assert b.fits_within(a + b)

    @given(vectors(), vectors())
    def test_difference_fits_in_minuend_when_dominated(self, a, b):
        if b.fits_within(a):
            assert (a - b).fits_within(a)

    @given(vectors())
    def test_zero_is_identity(self, a):
        assert a + ResourceVector.zero() == a

    @given(vectors())
    def test_every_vector_fits_in_itself(self, a):
        assert a.fits_within(a)

    @given(vectors(), vectors())
    def test_add_then_subtract_restores(self, a, b):
        result = (a + b) - b
        for field_name in ResourceVector._FIELDS:
            assert getattr(result, field_name) == pytest.approx(
                getattr(a, field_name), rel=1e-9, abs=1e-6)


class TestSerialization:
    def test_as_dict(self):
        vector = ResourceVector(cpu=4, memory_mb=64)
        assert vector.as_dict() == {"cpu": 4, "memory_mb": 64,
                                    "disk_mb": 0.0, "bandwidth_mbps": 0.0}

    def test_str_omits_zero_components(self):
        assert "memory" not in str(ResourceVector(cpu=4))

    def test_str_of_zero(self):
        assert "zero" in str(ResourceVector.zero())
