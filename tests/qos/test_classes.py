"""Tests for the service classes (repro.qos.classes)."""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass


class TestClassSemantics:
    def test_sla_holders(self):
        assert ServiceClass.GUARANTEED.has_sla
        assert ServiceClass.CONTROLLED_LOAD.has_sla
        assert not ServiceClass.BEST_EFFORT.has_sla

    def test_monitoring_excludes_best_effort(self):
        # Section 2.1: adaptation only for guaranteed and controlled load.
        assert ServiceClass.GUARANTEED.monitored
        assert ServiceClass.CONTROLLED_LOAD.monitored
        assert not ServiceClass.BEST_EFFORT.monitored

    def test_only_controlled_load_is_adjustable(self):
        assert ServiceClass.CONTROLLED_LOAD.adjustable
        assert not ServiceClass.GUARANTEED.adjustable
        assert not ServiceClass.BEST_EFFORT.adjustable

    def test_promotions_only_for_controlled_load(self):
        # Section 5.2: promotion offers exist only in controlled load.
        assert ServiceClass.CONTROLLED_LOAD.may_receive_promotions
        assert not ServiceClass.GUARANTEED.may_receive_promotions


class TestLabelParsing:
    def test_paper_table4_label(self):
        assert ServiceClass.from_label("Controlled-load") is \
            ServiceClass.CONTROLLED_LOAD

    @pytest.mark.parametrize("label, expected", [
        ("guaranteed", ServiceClass.GUARANTEED),
        ("GUARANTEED", ServiceClass.GUARANTEED),
        ("controlled_load", ServiceClass.CONTROLLED_LOAD),
        ("ControlledLoad", ServiceClass.CONTROLLED_LOAD),
        ("best effort", ServiceClass.BEST_EFFORT),
        ("Best-Effort", ServiceClass.BEST_EFFORT),
        ("besteffort", ServiceClass.BEST_EFFORT),
    ])
    def test_alias_forms(self, label, expected):
        assert ServiceClass.from_label(label) is expected

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            ServiceClass.from_label("platinum")

    def test_round_trip_via_value(self):
        for member in ServiceClass:
            assert ServiceClass.from_label(member.value) is member
