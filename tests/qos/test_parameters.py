"""Tests for QoS parameters (repro.qos.parameters)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import QoSSpecificationError
from repro.qos.parameters import (
    Dimension,
    Direction,
    Form,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)


class TestDimensions:
    def test_capacity_dimensions(self):
        assert Dimension.CPU.consumes_capacity
        assert Dimension.BANDWIDTH_MBPS.consumes_capacity
        assert not Dimension.PACKET_LOSS.consumes_capacity
        assert not Dimension.DELAY_MS.consumes_capacity

    def test_directions(self):
        assert Dimension.CPU.direction is Direction.HIGHER_IS_BETTER
        assert Dimension.PACKET_LOSS.direction is Direction.LOWER_IS_BETTER
        assert Dimension.DELAY_MS.direction is Direction.LOWER_IS_BETTER


class TestExactParameter:
    def test_admissible_only_at_value(self):
        parameter = exact_parameter(Dimension.CPU, 4)
        assert parameter.admissible(4)
        assert not parameter.admissible(5)

    def test_best_equals_worst(self):
        parameter = exact_parameter(Dimension.CPU, 4)
        assert parameter.best() == parameter.worst() == 4

    def test_single_level(self):
        assert exact_parameter(Dimension.CPU, 4).levels(5) == [4.0]

    def test_fractional_cpu_rejected(self):
        with pytest.raises(QoSSpecificationError):
            exact_parameter(Dimension.CPU, 2.5)


class TestRangeParameter:
    def test_admissibility(self):
        parameter = range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45)
        assert parameter.admissible(10)
        assert parameter.admissible(45)
        assert parameter.admissible(30)
        assert not parameter.admissible(9.9)
        assert not parameter.admissible(45.1)

    def test_best_and_worst_follow_direction(self):
        bandwidth = range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45)
        assert bandwidth.best() == 45
        assert bandwidth.worst() == 10
        loss = range_parameter(Dimension.PACKET_LOSS, 0.01, 0.1)
        assert loss.best() == 0.01
        assert loss.worst() == 0.1

    def test_levels_ordered_worst_to_best(self):
        parameter = range_parameter(Dimension.BANDWIDTH_MBPS, 10, 40)
        levels = parameter.levels(4)
        assert levels == [10.0, 20.0, 30.0, 40.0]

    def test_levels_reversed_for_lower_is_better(self):
        parameter = range_parameter(Dimension.DELAY_MS, 5, 20)
        levels = parameter.levels(4)
        assert levels[0] == 20.0  # worst first
        assert levels[-1] == 5.0

    def test_cpu_levels_are_integral(self):
        parameter = range_parameter(Dimension.CPU, 1, 4)
        for level in parameter.levels(7):
            assert level == int(level)

    def test_inverted_range_rejected(self):
        with pytest.raises(QoSSpecificationError):
            range_parameter(Dimension.CPU, 5, 2)

    def test_clamp(self):
        parameter = range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45)
        assert parameter.clamp(5) == 10
        assert parameter.clamp(100) == 45
        assert parameter.clamp(30) == 30


class TestDiscreteParameter:
    def test_admissible_only_listed(self):
        parameter = discrete_parameter(Dimension.CPU, [2, 4, 8])
        assert parameter.admissible(4)
        assert not parameter.admissible(3)

    def test_values_sorted_and_deduplicated(self):
        parameter = discrete_parameter(Dimension.CPU, [8, 2, 4, 2])
        assert parameter.values == (2.0, 4.0, 8.0)

    def test_levels(self):
        parameter = discrete_parameter(Dimension.CPU, [8, 2, 4])
        assert parameter.levels() == [2.0, 4.0, 8.0]

    def test_empty_list_rejected(self):
        with pytest.raises(QoSSpecificationError):
            discrete_parameter(Dimension.CPU, [])

    def test_clamp_picks_nearest(self):
        parameter = discrete_parameter(Dimension.CPU, [2, 4, 8])
        assert parameter.clamp(5) == 4
        assert parameter.clamp(7) == 8


class TestComparison:
    def test_is_better_higher(self):
        parameter = range_parameter(Dimension.CPU, 1, 10)
        assert parameter.is_better(5, 3)
        assert not parameter.is_better(3, 5)

    def test_is_better_lower(self):
        parameter = range_parameter(Dimension.DELAY_MS, 1, 10)
        assert parameter.is_better(3, 5)


class TestValidation:
    def test_negative_value_rejected(self):
        with pytest.raises(QoSSpecificationError):
            exact_parameter(Dimension.MEMORY_MB, -1)

    def test_loss_above_one_rejected(self):
        with pytest.raises(QoSSpecificationError):
            exact_parameter(Dimension.PACKET_LOSS, 1.5)

    def test_describe_mentions_dimension(self):
        assert "bandwidth" in range_parameter(
            Dimension.BANDWIDTH_MBPS, 10, 45).describe()


class TestLevelProperties:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=10))
    def test_levels_always_admissible(self, a, b, count):
        low, high = min(a, b), max(a, b)
        parameter = range_parameter(Dimension.MEMORY_MB, low, high)
        for level in parameter.levels(count):
            assert parameter.admissible(level)

    @given(st.lists(st.integers(min_value=0, max_value=64),
                    min_size=1, max_size=8))
    def test_discrete_best_worst_are_extremes(self, values):
        parameter = discrete_parameter(Dimension.CPU, values)
        assert parameter.best() == max(values)
        assert parameter.worst() == min(values)
