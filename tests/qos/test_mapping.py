"""Tests for QoS mapping (repro.qos.mapping)."""

from __future__ import annotations

import pytest

from repro.errors import QoSSpecificationError
from repro.qos.mapping import (
    COLLABORATIVE_VISUALIZATION,
    DATA_TRANSFER,
    ApplicationProfile,
    MetricRule,
)
from repro.qos.parameters import Dimension


class TestMetricRule:
    def test_affine_translation(self):
        rule = MetricRule(Dimension.BANDWIDTH_MBPS, coefficient=5.0,
                          offset=2.0)
        assert rule.demand(4.0) == 22.0

    def test_cpu_rounds_up_to_whole_nodes(self):
        rule = MetricRule(Dimension.CPU, coefficient=0.25)
        assert rule.demand(5.0) == 2.0   # 1.25 -> 2 nodes
        assert rule.demand(8.0) == 2.0   # exactly 2
        assert rule.demand(9.0) == 3.0

    def test_negative_demand_rejected(self):
        rule = MetricRule(Dimension.MEMORY_MB, coefficient=1.0,
                          offset=-100.0)
        with pytest.raises(QoSSpecificationError):
            rule.demand(10.0)


class TestScalarMapping:
    def test_exact_requirements_yield_exact_parameters(self):
        spec = COLLABORATIVE_VISUALIZATION.map_requirements({
            "participants": 4,
            "frames_per_second": 16,
            "dataset_gb": 15,
        })
        point = spec.best_point()
        assert point[Dimension.BANDWIDTH_MBPS] == 20.0   # 4 × 5
        assert point[Dimension.CPU] == 4.0               # ceil(16/4)
        assert point[Dimension.MEMORY_MB] == 256.0 + 16 * 64  # baseline
        assert point[Dimension.DISK_MB] == 15 * 1024.0
        assert spec.worst_point() == point  # scalar -> exact

    def test_baseline_applies_without_metrics(self):
        spec = COLLABORATIVE_VISUALIZATION.map_requirements({})
        assert spec.best_point()[Dimension.MEMORY_MB] == 256.0


class TestRangedMapping:
    def test_min_desired_yields_controlled_load_ranges(self):
        spec = COLLABORATIVE_VISUALIZATION.map_requirements({
            "frames_per_second": (8, 24),
            "participants": 2,
        })
        cpu = spec.require(Dimension.CPU)
        assert (cpu.low, cpu.high) == (2.0, 6.0)
        # The scalar metric stays exact even in a ranged spec when its
        # own dimension has identical ends.
        bandwidth = spec.require(Dimension.BANDWIDTH_MBPS)
        assert bandwidth.best() == bandwidth.worst() == 10.0

    def test_inverted_range_rejected(self):
        with pytest.raises(QoSSpecificationError):
            COLLABORATIVE_VISUALIZATION.map_requirements({
                "frames_per_second": (24, 8)})


class TestValidation:
    def test_unknown_metric_rejected_with_known_list(self):
        with pytest.raises(QoSSpecificationError) as info:
            DATA_TRANSFER.map_requirements({"frames_per_second": 30})
        assert "throughput_mbps" in str(info.value)

    def test_metrics_listing(self):
        assert COLLABORATIVE_VISUALIZATION.metrics() == (
            "dataset_gb", "frames_per_second", "participants")


class TestEndToEnd:
    def test_mapped_spec_negotiates_through_the_broker(self, testbed):
        """The mapped specification is directly negotiable — the full
        QoS Mapping -> Negotiation pipeline of Figure 3."""
        from repro.qos.classes import ServiceClass
        from repro.sla.negotiation import ServiceRequest

        spec = COLLABORATIVE_VISUALIZATION.map_requirements({
            "frames_per_second": (8, 24),
            "dataset_gb": 10,
        })
        outcome = testbed.broker.request_service(ServiceRequest(
            client="viz-team", service_name="visualization-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=spec, start=0.0, end=50.0))
        assert outcome.accepted, outcome.reason
        assert outcome.sla.delivered_point[Dimension.CPU] == 6.0

    def test_custom_profile(self):
        profile = ApplicationProfile(
            name="batch", rules={
                "tasks": (MetricRule(Dimension.CPU, coefficient=1.0),),
            })
        spec = profile.map_requirements({"tasks": (2, 10)})
        cpu = spec.require(Dimension.CPU)
        assert (cpu.low, cpu.high) == (2.0, 10.0)
