"""Tests for the pricing model (repro.qos.cost)."""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.cost import (
    DEFAULT_CLASS_MULTIPLIERS,
    PricingPolicy,
    service_cost,
)
from repro.qos.parameters import Dimension


class TestLinearForm:
    def test_cost_is_q_times_w(self):
        policy = PricingPolicy(weights={Dimension.CPU: 2.0})
        assert policy.parameter_cost(Dimension.CPU, 5.0) == 10.0

    def test_missing_dimension_earns_zero(self):
        policy = PricingPolicy(weights={})
        assert policy.parameter_cost(Dimension.CPU, 5.0) == 0.0

    def test_point_rate_sums_parameters(self):
        policy = PricingPolicy(
            weights={Dimension.CPU: 1.0, Dimension.BANDWIDTH_MBPS: 0.1},
            class_multipliers={ServiceClass.CONTROLLED_LOAD: 1.0})
        rate = policy.point_rate(
            {Dimension.CPU: 4.0, Dimension.BANDWIDTH_MBPS: 10.0},
            ServiceClass.CONTROLLED_LOAD)
        assert rate == pytest.approx(4.0 + 1.0)

    def test_observed_dimensions_free_by_default(self):
        policy = PricingPolicy()
        rate = policy.point_rate({Dimension.PACKET_LOSS: 0.1,
                                  Dimension.DELAY_MS: 10.0},
                                 ServiceClass.GUARANTEED)
        assert rate == 0.0


class TestClassMultipliers:
    def test_guaranteed_costs_more_than_controlled(self):
        policy = PricingPolicy()
        point = {Dimension.CPU: 4.0}
        assert policy.point_rate(point, ServiceClass.GUARANTEED) > \
            policy.point_rate(point, ServiceClass.CONTROLLED_LOAD) > \
            policy.point_rate(point, ServiceClass.BEST_EFFORT)

    def test_default_multipliers_ordered(self):
        assert DEFAULT_CLASS_MULTIPLIERS[ServiceClass.GUARANTEED] > \
            DEFAULT_CLASS_MULTIPLIERS[ServiceClass.CONTROLLED_LOAD] > \
            DEFAULT_CLASS_MULTIPLIERS[ServiceClass.BEST_EFFORT]


class TestMonotonicity:
    def test_more_quality_never_cheaper(self):
        policy = PricingPolicy()
        low = {Dimension.CPU: 2.0, Dimension.BANDWIDTH_MBPS: 10.0}
        high = {Dimension.CPU: 8.0, Dimension.BANDWIDTH_MBPS: 45.0}
        assert policy.point_rate(high, ServiceClass.CONTROLLED_LOAD) > \
            policy.point_rate(low, ServiceClass.CONTROLLED_LOAD)


class TestConvenienceWrapper:
    def test_service_cost_default_policy(self):
        assert service_cost({Dimension.CPU: 4.0},
                            ServiceClass.CONTROLLED_LOAD) == \
            pytest.approx(4.0)

    def test_service_cost_custom_policy(self):
        policy = PricingPolicy(weights={Dimension.CPU: 10.0})
        assert service_cost({Dimension.CPU: 4.0},
                            ServiceClass.CONTROLLED_LOAD,
                            policy) == pytest.approx(40.0)
