"""Tests for the write-ahead journal (repro.recovery.journal)."""

from __future__ import annotations

import struct

import pytest

from repro.errors import RecoveryError
from repro.recovery.journal import (
    CONFIRM,
    RECORD_TYPES,
    SLA_SAVED,
    FileJournalStore,
    Journal,
    JournalRecord,
    MemoryJournalStore,
    decode_record,
    encode_record,
)


class TestRecordCodec:
    def test_roundtrip(self):
        record = JournalRecord(lsn=7, time=12.5, type=CONFIRM,
                               payload={"sla_id": 1000})
        assert decode_record(encode_record(record)) == record

    def test_encoding_is_deterministic(self):
        a = JournalRecord(lsn=1, time=0.0, type=SLA_SAVED,
                          payload={"b": 2, "a": 1})
        b = JournalRecord(lsn=1, time=0.0, type=SLA_SAVED,
                          payload={"a": 1, "b": 2})
        assert encode_record(a) == encode_record(b)

    def test_garbage_rejected(self):
        with pytest.raises(RecoveryError):
            decode_record(b"not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(RecoveryError):
            decode_record(b'{"lsn": 1}')


class TestJournal:
    def test_lsns_are_monotonic_and_timed(self):
        clock = {"now": 3.0}
        journal = Journal(now=lambda: clock["now"])
        first = journal.append(CONFIRM, sla_id=1)
        clock["now"] = 5.0
        second = journal.append(CONFIRM, sla_id=2)
        assert (first.lsn, second.lsn) == (1, 2)
        assert (first.time, second.time) == (3.0, 5.0)
        assert journal.last_lsn == 2
        assert len(journal) == 2

    def test_unknown_record_type_rejected(self):
        with pytest.raises(RecoveryError):
            Journal().append("made_up_type")
        assert CONFIRM in RECORD_TYPES

    def test_resumes_after_store_tail(self):
        store = MemoryJournalStore()
        Journal(store).append(CONFIRM, sla_id=1)
        resumed = Journal(store)
        assert resumed.last_lsn == 1
        assert resumed.append(CONFIRM, sla_id=2).lsn == 2

    def test_failed_append_does_not_advance_lsn(self):
        class ExplodingStore(MemoryJournalStore):
            def append_record(self, record) -> None:
                raise RuntimeError("disk gone")

        journal = Journal(ExplodingStore())
        with pytest.raises(RuntimeError):
            journal.append(CONFIRM, sla_id=1)
        assert journal.last_lsn == 0

    def test_resync_recovers_from_torn_counter(self):
        # A crash *after* the bytes land but *before* the counter
        # update leaves the in-memory LSN behind the store; resync
        # must realign so later appends keep LSNs unique.
        store = MemoryJournalStore()
        journal = Journal(store)
        journal.append(CONFIRM, sla_id=1)
        store.append(encode_record(JournalRecord(
            lsn=2, time=0.0, type=CONFIRM, payload={"sla_id": 2})))
        assert journal.last_lsn == 1
        assert journal.resync() == 2
        assert journal.append(CONFIRM, sla_id=3).lsn == 3


class TestMemoryStoreDeferredEncoding:
    def test_reads_back_the_eager_encoding(self):
        # The memory store keeps record objects and encodes on read;
        # the bytes must match what a durable store would have written
        # at append time.
        store = MemoryJournalStore()
        record = Journal(store).append(CONFIRM, sla_id=1)
        assert list(store.records()) == [encode_record(record)]

    def test_byte_and_typed_appends_interleave(self):
        store = MemoryJournalStore()
        first = JournalRecord(lsn=1, time=0.0, type=CONFIRM,
                              payload={"sla_id": 1})
        store.append(encode_record(first))
        second = Journal(store).append(CONFIRM, sla_id=2)
        assert [r.lsn for r in Journal(store).records()] == [1, 2]
        assert list(store.records())[1] == encode_record(second)

    def test_unencodable_payload_surfaces_on_read(self):
        # Deferral trades the eager type check for a read-time one;
        # the sweep and every recovery force a read, so a write point
        # with a non-JSON-safe payload still cannot hide.
        store = MemoryJournalStore()
        Journal(store).append(CONFIRM, handle=object())
        with pytest.raises(TypeError):
            list(store.records())


class TestFileJournalStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.journal"
        journal = Journal(FileJournalStore(path))
        journal.append(SLA_SAVED, sla_id=1000, status="active")
        journal.append(CONFIRM, sla_id=1000)
        replayed = Journal(FileJournalStore(path)).records()
        assert [r.type for r in replayed] == [SLA_SAVED, CONFIRM]
        assert replayed[0].payload == {"sla_id": 1000, "status": "active"}

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.journal"
        store = FileJournalStore(path)
        intact = encode_record(JournalRecord(
            lsn=1, time=0.0, type=CONFIRM, payload={"sla_id": 1}))
        store.append(intact)
        torn = encode_record(JournalRecord(
            lsn=2, time=0.0, type=CONFIRM, payload={"sla_id": 2}))
        with open(path, "ab") as handle:
            # Length prefix promises the full record; the crash cut
            # the body short.
            handle.write(struct.pack(">I", len(torn)))
            handle.write(torn[:len(torn) - 3])
        survivors = list(FileJournalStore(path).records())
        assert len(survivors) == 1
        assert decode_record(survivors[0]).lsn == 1
        # A journal over the torn store resumes cleanly after LSN 1.
        assert Journal(FileJournalStore(path)).last_lsn == 1

    def test_missing_file_reads_empty(self, tmp_path):
        store = FileJournalStore(tmp_path / "absent.journal")
        assert list(store.records()) == []
