"""Crash-at-every-write-point recovery tests (repro.recovery)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecoveryError
from repro.recovery.crashpoints import (
    CrashingJournalStore,
    count_write_points,
    run_episode,
    sweep_crash_points,
    verify_recovered,
)
from repro.recovery.recover import recover


class TestCrashingStore:
    def test_rejects_bad_mode(self):
        with pytest.raises(RecoveryError):
            CrashingJournalStore(crash_lsn=1, mode="sideways")

    def test_rejects_negative_crash_point(self):
        with pytest.raises(RecoveryError):
            CrashingJournalStore(crash_lsn=-1)

    def test_before_mode_loses_the_record(self):
        store = CrashingJournalStore(crash_lsn=1, mode="before")
        with pytest.raises(Exception):
            store.append(b"doomed")
        assert list(store.records()) == []

    def test_after_mode_keeps_the_record(self):
        store = CrashingJournalStore(crash_lsn=1, mode="after")
        with pytest.raises(Exception):
            store.append(b"durable")
        assert list(store.records()) == [b"durable"]

    def test_disarms_after_firing(self):
        store = CrashingJournalStore(crash_lsn=1, mode="before")
        with pytest.raises(Exception):
            store.append(b"one")
        store.append(b"two")
        assert list(store.records()) == [b"two"]


class TestEpisode:
    def test_no_crash_episode_exercises_every_record_family(self):
        result = run_episode()
        assert not result.crashed
        assert result.report is None
        types = {record.type for record in result.journal.records()}
        # The episode must hit every write point family the broker
        # journals, or the sweep's coverage claim is hollow.
        assert {"sla_saved", "reserve_begin", "compute_booked",
                "network_booked", "reserve_end", "confirm", "cancel",
                "modify", "capacity_rebalanced", "violation",
                "restoration", "best_effort_set"} <= types
        assert verify_recovered(result.testbed) == []

    def test_write_point_count_is_stable(self):
        total = count_write_points()
        assert total == len(run_episode().journal.records())
        assert total > 30

    def test_recover_without_journal_rejected(self, testbed):
        with pytest.raises(RecoveryError):
            recover(testbed)


class TestCrashSweep:
    def test_every_write_point_recovers(self):
        # The tentpole property: kill the broker at EVERY journal
        # write point, in both crash modes, and require the recovered
        # system to satisfy the no-crash oracle's invariants.
        sweep_crash_points(seed=0)

    def test_every_write_point_recovers_with_snapshots(self):
        # Same property through the snapshot + tail-replay path.
        sweep_crash_points(seed=0, snapshot_interval=20.0)

    def test_corrupted_state_is_caught_by_the_verifier(self):
        # The oracle is only credible if it can fail; corrupt a
        # recovered run and require a violation.
        from repro.recovery.journal import CONFIRM, JournalRecord, \
            encode_record
        result = run_episode(crash_lsn=5, mode="before")
        assert result.crashed
        result.testbed.journal.store.append(encode_record(JournalRecord(
            lsn=1, time=0.0, type=CONFIRM, payload={})))
        problems = verify_recovered(result.testbed)
        assert any("LSN" in problem for problem in problems)


class TestRecoveryDeterminism:
    def test_same_crash_point_same_outcome(self):
        first = run_episode(crash_lsn=9, mode="before")
        second = run_episode(crash_lsn=9, mode="before")
        assert first.report is not None and second.report is not None
        assert first.report.render() == second.report.render()
        outcome = lambda r: [(s.sla_id, s.status)  # noqa: E731
                             for s in r.testbed.broker.repository.all()]
        assert outcome(first) == outcome(second)

    def test_cli_reports_are_byte_identical(self, tmp_path):
        # The acceptance criterion: same seed + crash point must give
        # byte-identical recovered reports across two CLI processes.
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "quickstart",
                 "--crash", "7"],
                capture_output=True, text=True,
                env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
            assert proc.returncode == 0, proc.stderr
            runs.append(proc.stdout)
        assert runs[0] == runs[1]
        assert "recovery report" in runs[0]


@given(crash_seed=st.integers(min_value=0, max_value=10_000),
       snapshot_interval=st.sampled_from([0.0, 7.5, 20.0]))
@settings(max_examples=20, deadline=None)
def test_random_crash_points_recover_clean(crash_seed, snapshot_interval):
    """Property: any crash point, either mode, with or without
    snapshots, recovers to an invariant-clean state."""
    total = count_write_points(snapshot_interval=snapshot_interval)
    crash_lsn = (crash_seed % total) + 1
    mode = "after" if crash_seed % 2 else "before"
    result = run_episode(crash_lsn=crash_lsn, mode=mode,
                         snapshot_interval=snapshot_interval)
    assert result.crashed
    assert verify_recovered(result.testbed) == []
