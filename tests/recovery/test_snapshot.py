"""Tests for checkpointing (repro.recovery.snapshot)."""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.errors import RecoveryError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.recover import install_journal
from repro.recovery.snapshot import (
    Snapshot,
    decode_snapshot,
    encode_snapshot,
    start_snapshots,
    take_snapshot,
)
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest
from repro.sla.repository import SLARepository


def _request(client="user1", cpu=4, start=1.0, end=50.0, network=True):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 64))
    demand = NetworkDemand("135.200.50.101", "192.200.168.33",
                           10.0) if network else None
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=start, end=end,
                          network=demand)


@pytest.fixture
def journaled_testbed():
    testbed = build_testbed()
    install_journal(testbed)
    return testbed


class TestTakeSnapshot:
    def test_requires_a_journal(self, testbed):
        with pytest.raises(RecoveryError):
            take_snapshot(testbed.broker)

    def test_captures_repository_partition_and_composites(
            self, journaled_testbed):
        testbed = journaled_testbed
        outcome = testbed.broker.request_service(_request())
        assert outcome.accepted
        testbed.sim.run(until=5.0)
        snapshot = take_snapshot(testbed.broker)
        assert snapshot.lsn == testbed.journal.last_lsn
        assert snapshot.time == 5.0
        restored = SLARepository.from_xml(snapshot.repository_xml)
        assert [sla.sla_id for sla in restored.all()] == [1000]
        assert snapshot.partition["cg"] == 15
        (composite,) = snapshot.composites
        assert composite["sla_id"] == 1000
        assert composite["confirmed"] is True
        assert composite["handle"] is not None
        assert len(composite["flows"]) == 1

    def test_roundtrips_through_the_codec(self, journaled_testbed):
        testbed = journaled_testbed
        testbed.broker.request_service(_request())
        testbed.sim.run(until=5.0)
        snapshot = take_snapshot(testbed.broker)
        assert decode_snapshot(encode_snapshot(snapshot)) == snapshot

    def test_encoding_is_deterministic(self):
        snapshot = Snapshot(time=1.0, lsn=3, repository_xml="<x/>",
                            partition={"b": 2, "a": 1})
        assert encode_snapshot(snapshot) == encode_snapshot(snapshot)

    def test_garbage_rejected(self):
        with pytest.raises(RecoveryError):
            decode_snapshot("not json")
        with pytest.raises(RecoveryError):
            decode_snapshot('{"time": 1.0}')


class TestPeriodicSnapshots:
    def test_requires_install_journal_first(self, testbed):
        with pytest.raises(RecoveryError):
            start_snapshots(testbed, 10.0)

    def test_rejects_non_positive_interval(self, journaled_testbed):
        with pytest.raises(RecoveryError):
            start_snapshots(journaled_testbed, 0.0)

    def test_checkpoints_on_a_timer(self, journaled_testbed):
        testbed = journaled_testbed
        keeper = start_snapshots(testbed, 10.0)
        testbed.broker.request_service(_request())
        testbed.sim.run(until=35.0)
        assert keeper.taken == 3
        assert testbed.snapshots is keeper
        assert keeper.latest is not None
        assert keeper.latest.time == 30.0
        assert keeper.latest.lsn <= testbed.journal.last_lsn
