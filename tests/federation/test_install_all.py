"""``install_all``: one call wires every cross-cutting layer.

The federation stands up N domains in a loop; a forgotten installer on
one of them would make that domain silently asymmetric (no journal —
nothing to recover; no decision log — unexplainable reroutes). The
helper therefore composes all the layers and must be idempotent so
wiring code can call it defensively.
"""

from __future__ import annotations

from repro.core.testbed import build_testbed, install_all
from repro.recovery.journal import MemoryJournalStore
from repro.xmlmsg.bus import MessageBus


class TestComposition:
    def test_installs_every_layer(self):
        testbed = install_all(build_testbed(seed=0))
        assert testbed.telemetry is not None
        assert testbed.bus is not None
        assert testbed.gateway is not None
        assert testbed.registry_endpoint is not None
        assert testbed.journal is not None
        assert testbed.decisions is not None
        assert testbed.slo is not None
        # Chaos stays off unless a seed is passed.
        assert testbed.faults is None

    def test_chaos_seed_arms_fault_injection(self):
        testbed = install_all(build_testbed(seed=0), chaos_seed=7,
                              chaos_options={"drop": 0.5})
        assert testbed.faults is not None

    def test_journal_store_is_honored(self):
        store = MemoryJournalStore()
        testbed = install_all(build_testbed(seed=0), journal_store=store)
        assert testbed.journal is not None
        assert testbed.journal.store is store

    def test_idempotent(self):
        testbed = build_testbed(seed=0)
        install_all(testbed)
        telemetry = testbed.telemetry
        bus = testbed.bus
        gateway = testbed.gateway
        journal = testbed.journal
        decisions = testbed.decisions
        slo = testbed.slo
        install_all(testbed)
        assert testbed.telemetry is telemetry
        assert testbed.bus is bus
        assert testbed.gateway is gateway
        assert testbed.journal is journal
        assert testbed.decisions is decisions
        assert testbed.slo is slo

    def test_shared_bus_with_per_domain_endpoints(self):
        sim_bed = build_testbed(seed=0)
        install_all(sim_bed, gateway_name="aqos:d1",
                    registry_name="uddie:d1",
                    relay_name="notification-hub:d1",
                    discovery_name="aqos-discovery:d1")
        bus = sim_bed.bus
        assert isinstance(bus, MessageBus)
        peer = build_testbed(seed=1, sim=sim_bed.sim,
                             trace=sim_bed.trace)
        install_all(peer, bus=bus, gateway_name="aqos:d2",
                    registry_name="uddie:d2",
                    relay_name="notification-hub:d2",
                    discovery_name="aqos-discovery:d2")
        assert peer.bus is bus
        assert sim_bed.gateway is not None
        assert peer.gateway is not None
        assert sim_bed.gateway.endpoint_name == "aqos:d1"
        assert peer.gateway.endpoint_name == "aqos:d2"
