"""Shared helpers for the federation suite.

Every test here drives a real multi-domain control plane: N fully
wired testbeds on one bus, the superscheduling protocol between them,
and (in the crash tests) the PR-5 journal machinery underneath. The
shared fixture shapes one deliberately lopsided federation — ``d1``
under-provisioned so big guaranteed requests *must* delegate — because
the cross-domain paths are what this suite exists to exercise.
"""

from __future__ import annotations

import pytest

from repro.federation.plane import FederatedControlPlane
from repro.federation.sweep import SMALL_DOMAIN
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest


def guaranteed_request(client: str, cpu: int, start: float = 0.0,
                       duration: float = 60.0) -> ServiceRequest:
    """A guaranteed-class request sized by ``cpu``."""
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 1024))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=start, end=start + duration)


@pytest.fixture
def plane() -> FederatedControlPlane:
    """Three domains; ``d1`` too small to hold a cpu>=4 request."""
    return FederatedControlPlane(
        domains=3, seed=0, capacity={"d1": dict(SMALL_DOMAIN)})
