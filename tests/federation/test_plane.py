"""The federated control plane: admission, delegation, rerouting,
heartbeats, partitions and broker rejoin."""

from __future__ import annotations

import pytest

from repro.errors import FederationError
from repro.federation.plane import FederatedControlPlane
from repro.federation.recovery import (federation_invariants,
                                       scan_delegations)
from repro.federation.sweep import SMALL_DOMAIN

from .conftest import guaranteed_request


class TestLocalAdmission:
    def test_fitting_request_stays_home(self, plane):
        outcome = plane.request_service(
            guaranteed_request("c1", 2), home="d1")
        assert outcome.accepted
        assert outcome.domain == "d1"
        assert not outcome.delegated
        assert outcome.rerouted == ()
        assert plane.stats["local"] == 1

    def test_home_defaults_to_the_first_domain(self, plane):
        outcome = plane.request_service(guaranteed_request("c1", 2))
        assert outcome.home == "d1"

    def test_unknown_home_raises(self, plane):
        with pytest.raises(FederationError):
            plane.request_service(guaranteed_request("c1", 2),
                                  home="d9")

    def test_sla_id_ranges_are_per_domain(self, plane):
        first = plane.request_service(guaranteed_request("c1", 2),
                                      home="d1")
        second = plane.request_service(guaranteed_request("c2", 2),
                                       home="d2")
        assert first.sla_id is not None and first.sla_id < 2000
        assert second.sla_id is not None and second.sla_id >= 2000


class TestDelegation:
    def test_oversized_request_delegates_to_a_peer(self, plane):
        outcome = plane.request_service(
            guaranteed_request("big", 8), home="d1")
        assert outcome.accepted
        assert outcome.delegated
        assert outcome.home == "d1"
        assert outcome.domain in ("d2", "d3")
        assert outcome.sla_id is not None
        assert plane.stats["delegated"] == 1

    def test_both_sides_journal_the_delegation(self, plane):
        outcome = plane.request_service(
            guaranteed_request("big", 8), home="d1")
        home_states = scan_delegations(
            plane.domains["d1"].testbed.journal)
        peer_states = scan_delegations(
            plane.domains[outcome.domain].testbed.journal)
        home = home_states[outcome.delegation_id]
        peer = peer_states[outcome.delegation_id]
        assert home.role == "home" and home.confirmed
        assert home.counterpart == outcome.domain
        assert peer.role == "peer" and peer.confirmed
        assert peer.sla_id == outcome.sla_id

    def test_landing_domain_tracks_the_booking(self, plane):
        outcome = plane.request_service(
            guaranteed_request("big", 8), home="d1")
        landing = plane.domains[outcome.domain]
        assert outcome.delegation_id in landing.incoming
        assert outcome.delegation_id in landing.confirmed
        assert landing.incoming[outcome.delegation_id].sla_id \
            == outcome.sla_id

    def test_decision_provenance_for_the_delegation(self, plane):
        plane.request_service(guaranteed_request("big", 8), home="d1")
        records = plane.domains["d1"].testbed.decisions.for_subject("big")
        outcomes = [record.outcome for record in records
                    if record.action == "federation"]
        assert "bids" in outcomes
        assert "delegate" in outcomes

    def test_nothing_fits_anywhere_rejects(self):
        tiny = FederatedControlPlane(
            domains=2, seed=0,
            testbed_defaults=dict(SMALL_DOMAIN))
        outcome = tiny.request_service(
            guaranteed_request("huge", 20), home="d1")
        assert not outcome.accepted
        assert outcome.domain is None
        assert tiny.stats["rejected"] == 1
        records = tiny.domains["d1"].testbed.decisions.for_subject("huge")
        assert any(record.outcome == "reject" for record in records)

    def test_invariants_hold_after_delegations(self, plane):
        for index in range(4):
            plane.request_service(
                guaranteed_request(f"c{index}", 6), home="d1")
        assert federation_invariants(plane) == []


class TestRerouting:
    def test_crashed_home_reroutes_to_a_survivor(self, plane):
        plane.crash_broker("d2")
        outcome = plane.request_service(
            guaranteed_request("c1", 4), home="d2")
        assert outcome.accepted
        assert outcome.home == "d2"
        assert outcome.domain != "d2"
        assert outcome.rerouted == ("d2",)
        assert plane.stats["rerouted"] == 1
        assert plane.reroutes and plane.reroutes[0][1] == "c1"

    def test_reroute_leaves_a_decision_record(self, plane):
        plane.crash_broker("d2")
        plane.request_service(guaranteed_request("c1", 2), home="d2")
        explained = False
        for name in plane.names:
            decisions = plane.domains[name].testbed.decisions
            if decisions is None:
                continue
            for record in decisions.for_subject("c1"):
                if record.action == "federation" \
                        and record.outcome == "reroute":
                    assert "d2" in (record.constraint or "")
                    explained = True
        assert explained

    def test_every_domain_down_rejects(self, plane):
        for name in plane.names:
            plane.crash_broker(name)
        outcome = plane.request_service(
            guaranteed_request("c1", 2), home="d1")
        assert not outcome.accepted
        assert outcome.reason == "every domain is down"


class TestHeartbeats:
    def test_heartbeats_mark_a_crashed_peer_down(self):
        plane = FederatedControlPlane(domains=3, seed=0,
                                      heartbeat_interval=5.0)
        plane.crash_broker("d2", at=1.0)
        plane.start_heartbeats(until=12.0)
        plane.sim.run(until=12.0)
        assert not plane.health.alive("d1", "d2")
        assert plane.health.alive("d1", "d3")
        assert plane.stats["heartbeat_rounds"] >= 2

    def test_rejoined_peer_reads_alive_again(self):
        plane = FederatedControlPlane(domains=3, seed=0,
                                      heartbeat_interval=5.0)
        plane.crash_broker("d2", at=1.0)
        plane.recover_broker("d2", at=11.0)
        # Detection latency after a rejoin includes the heartbeat
        # circuit's cooldown (20s): probes are refused until the
        # breaker half-opens again.
        plane.start_heartbeats(until=45.0)
        plane.sim.run(until=45.0)
        assert plane.health.alive("d1", "d2")


class TestPartition:
    def test_partitioned_home_cannot_delegate_inside_the_window(self):
        plane = FederatedControlPlane(
            domains=3, seed=0, capacity={"d1": dict(SMALL_DOMAIN)})
        plane.partition(["d1"], 5.0, 30.0)
        outcomes = []

        def admit(client, at):
            plane.sim.schedule_at(
                at, lambda: outcomes.append(plane.request_service(
                    guaranteed_request(client, 8, start=plane.sim.now),
                    home="d1")), label=f"admit:{client}")

        admit("inside", 10.0)
        # Well after the window: heartbeats must re-mark the peers
        # alive and the bid circuits must finish their cooldown.
        admit("after", 60.0)
        plane.start_heartbeats(until=80.0)
        plane.sim.run(until=80.0)
        inside, after = outcomes
        assert not inside.accepted
        assert after.accepted and after.delegated

    def test_unpartitioned_pair_keeps_talking(self):
        plane = FederatedControlPlane(
            domains=3, seed=0, capacity={"d2": dict(SMALL_DOMAIN)})
        plane.partition(["d1"], 0.0, 100.0)
        outcomes = []
        plane.sim.schedule_at(
            10.0, lambda: outcomes.append(plane.request_service(
                guaranteed_request("c1", 8, start=plane.sim.now),
                home="d2")), label="admit:c1")
        plane.sim.run(until=20.0)
        outcome, = outcomes
        # d2 cannot hold cpu=8 and cannot see d1 — but d3 is reachable.
        assert outcome.accepted
        assert outcome.domain == "d3"

    def test_unknown_member_raises(self, plane):
        with pytest.raises(FederationError):
            plane.partition(["dX"], 0.0, 10.0)


class TestRejoin:
    def test_confirmed_delegation_survives_the_peer_rejoin(self, plane):
        outcome = plane.request_service(
            guaranteed_request("big", 8, duration=500.0), home="d1")
        landing = outcome.domain
        plane.crash_broker(landing)
        assert plane.domains[landing].incoming == {}
        report = plane.recover_broker(landing)
        assert report is not None
        assert report.federation.restored == 1
        assert report.federation.cancelled_incoming == 0
        landing_domain = plane.domains[landing]
        assert outcome.delegation_id in landing_domain.incoming
        assert outcome.delegation_id in landing_domain.confirmed
        live = {sla.sla_id
                for sla in landing_domain.testbed.repository.live()}
        assert outcome.sla_id in live
        assert federation_invariants(plane) == []

    def test_sla_ids_resume_above_the_domain_floor(self, plane):
        plane.crash_broker("d2")
        plane.recover_broker("d2")
        outcome = plane.request_service(
            guaranteed_request("c1", 2), home="d2")
        assert outcome.sla_id is not None
        assert outcome.sla_id >= 2000

    def test_recover_of_live_domain_is_a_noop(self, plane):
        assert plane.recover_broker("d1") is None


class TestBatch:
    def test_batch_groups_by_home(self, plane):
        requests = [guaranteed_request(f"c{index}", 2)
                    for index in range(4)]
        homes = ["d1", "d2", "d1", "d3"]
        outcomes = plane.request_services(requests, homes=homes)
        assert len(outcomes) == 4
        assert all(outcome.accepted for outcome in outcomes)
        assert [outcome.home for outcome in outcomes] == homes
        assert plane.stats["requests"] == 4

    def test_batch_rejects_fall_through_to_delegation(self, plane):
        requests = [guaranteed_request("small", 2),
                    guaranteed_request("big", 8)]
        outcomes = plane.request_services(requests, homes=["d1", "d1"])
        assert outcomes[0].accepted and not outcomes[0].delegated
        assert outcomes[1].accepted and outcomes[1].delegated

    def test_mismatched_homes_raise(self, plane):
        with pytest.raises(FederationError):
            plane.request_services([guaranteed_request("c1", 2)],
                                   homes=["d1", "d2"])
