"""Domain-level fault injection: crashes, partitions, the bus contract."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import FederationError, ValidationError
from repro.federation.faults import DomainChaos, PartitionWindow
from repro.xmlmsg.envelope import Envelope
from repro.xmlmsg.faults import FaultDecision


def make_chaos(now=lambda: 0.0, inner=None) -> DomainChaos:
    def domain_of(endpoint: str):
        if ":" in endpoint:
            return endpoint.rsplit(":", 1)[1]
        return None
    return DomainChaos(now, domain_of=domain_of, inner=inner)


def envelope(sender: str, recipient: str) -> Envelope:
    return Envelope(sender=sender, recipient=recipient,
                    action="fed_heartbeat", body=ET.Element("Ping"))


class TestCrashSchedule:
    def test_crash_and_restore(self):
        chaos = make_chaos()
        chaos.crash("d2")
        assert chaos.is_crashed("d2")
        assert chaos.crashed == ["d2"]
        chaos.restore("d2")
        assert not chaos.is_crashed("d2")
        assert chaos.crashed == []

    def test_double_crash_raises(self):
        chaos = make_chaos()
        chaos.crash("d2")
        with pytest.raises(FederationError):
            chaos.crash("d2")

    def test_restore_of_live_domain_raises(self):
        with pytest.raises(FederationError):
            make_chaos().restore("d1")

    def test_crashed_is_name_ordered(self):
        chaos = make_chaos()
        chaos.crash("d3")
        chaos.crash("d1")
        assert chaos.crashed == ["d1", "d3"]


class TestPartitionWindow:
    def test_severs_only_across_the_boundary_inside_the_window(self):
        window = PartitionWindow(frozenset({"d1"}), 10.0, 20.0)
        assert window.severs("d1", "d2", 10.0)
        assert window.severs("d2", "d1", 15.0)
        assert not window.severs("d2", "d3", 15.0)   # both outside
        assert not window.severs("d1", "d1", 15.0)   # same side
        assert not window.severs("d1", "d2", 9.9)    # before
        assert not window.severs("d1", "d2", 20.0)   # half-open end

    def test_backwards_window_raises(self):
        with pytest.raises(FederationError):
            make_chaos().partition({"d1"}, 20.0, 10.0)


class TestBusContract:
    def test_crashed_domain_drops_both_directions(self):
        chaos = make_chaos()
        chaos.crash("d2")
        assert chaos.decide(envelope("fed:d1", "fed:d2"), "request").drop
        assert chaos.decide(envelope("fed:d2", "fed:d1"), "request").drop
        assert not chaos.decide(envelope("fed:d1", "fed:d3"),
                                "request").drop

    def test_partition_drops_cross_group_traffic_in_window(self):
        clock = [0.0]
        chaos = make_chaos(now=lambda: clock[0])
        chaos.partition({"d1"}, 10.0, 20.0)
        assert not chaos.decide(envelope("fed:d1", "fed:d2"),
                                "request").drop
        clock[0] = 15.0
        assert chaos.decide(envelope("fed:d1", "fed:d2"), "request").drop
        assert not chaos.decide(envelope("fed:d2", "fed:d3"),
                                "request").drop
        clock[0] = 25.0
        assert not chaos.decide(envelope("fed:d1", "fed:d2"),
                                "request").drop

    def test_client_endpoints_are_outside_every_domain(self):
        chaos = make_chaos()
        chaos.crash("d1")
        # An endpoint with no domain suffix never matches a crash.
        assert not chaos.decide(envelope("client", "uddie"),
                                "request").drop

    def test_stats_count_decisions_and_drops(self):
        chaos = make_chaos()
        chaos.crash("d2")
        chaos.decide(envelope("fed:d1", "fed:d2"), "request")
        chaos.decide(envelope("fed:d1", "fed:d3"), "request")
        assert chaos.stats.decisions == 2
        assert chaos.stats.dropped == 1

    def test_inner_plan_consulted_for_clean_deliveries(self):
        class Inner:
            def __init__(self):
                self.seen = 0

            def decide(self, envelope, leg):
                self.seen += 1
                return FaultDecision(drop=True)

        inner = Inner()
        chaos = make_chaos(inner=inner)
        chaos.crash("d2")
        # Dropped at the domain layer: inner never sees it.
        chaos.decide(envelope("fed:d1", "fed:d2"), "request")
        assert inner.seen == 0
        # Clean at the domain layer: inner keeps biting.
        assert chaos.decide(envelope("fed:d1", "fed:d3"), "request").drop
        assert inner.seen == 1

    def test_unknown_leg_raises(self):
        with pytest.raises(ValidationError):
            make_chaos().decide(envelope("fed:d1", "fed:d2"), "sideways")
