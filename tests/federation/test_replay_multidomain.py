"""Multi-domain atlas replay regression (satellite scenario).

``rack_failure_cascade`` and ``multi_tenant_mix`` replayed across
three failure domains with ``d2`` crashed mid-run and rejoined later.
The pinned profiles are golden values at the atlas seed — a diff means
the federation's routing, the delegation protocol or the recovery
path changed behaviorally and must be reviewed, never absorbed
silently. The guaranteed-class availability read from each surviving
domain's SLO engine must not fall below the single-domain baseline:
carving the same capacity into failure domains may not cost the
guaranteed class its availability even with a broker down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import pytest

from repro.federation.replay import replay_federated
from repro.workloads import DEFAULT_SEED, get_scenario, replay_scenario


@dataclass(frozen=True)
class FederatedProfile:
    """Pinned headline numbers for one (scenario, DEFAULT_SEED,
    3 domains, d2 crashed) federated replay."""

    sessions: int
    delegated: int
    rerouted: int
    rejected: int
    report_sha256: str


#: Golden values at seed 2003 — reviewed, not regenerated blindly.
FEDERATED_PROFILES = {
    "rack_failure_cascade": FederatedProfile(
        sessions=47,
        delegated=4,
        rerouted=4,
        rejected=1,
        report_sha256="c2c03dae704b283ee0ee714ab6459ca4147e9fad"
                      "3383630443dbbec0ce644ed7"),
    "multi_tenant_mix": FederatedProfile(
        sessions=108,
        delegated=3,
        rerouted=11,
        rejected=8,
        report_sha256="8243c4395fc379654e7db2a3d24ec75476a56363"
                      "aa1aa525984a763ccdcd1830"),
}


@pytest.fixture(scope="module", params=sorted(FEDERATED_PROFILES))
def federated(request):
    """One federated replay per pinned scenario (module-cached)."""
    result = replay_federated(request.param, domains=3,
                              seed=DEFAULT_SEED, crash_domain="d2")
    return request.param, result


class TestPinnedProfiles:
    def test_headline_numbers_match(self, federated):
        name, result = federated
        profile = FEDERATED_PROFILES[name]
        federation = result.report["federation"]
        assert result.report["sessions"] == profile.sessions
        assert federation["delegated"] == profile.delegated
        assert federation["rerouted"] == profile.rerouted
        assert federation["rejected"] == profile.rejected

    def test_report_bytes_are_pinned(self, federated):
        name, result = federated
        digest = hashlib.sha256(
            result.report_json().encode("utf-8")).hexdigest()
        assert digest == FEDERATED_PROFILES[name].report_sha256

    def test_replay_is_byte_deterministic(self, federated):
        name, result = federated
        again = replay_federated(name, domains=3, seed=DEFAULT_SEED,
                                 crash_domain="d2")
        assert again.report_json() == result.report_json()


class TestCrashSchedule:
    def test_crash_and_rejoin_happened(self, federated):
        _, result = federated
        assert result.report["crash"]["domain"] == "d2"
        assert result.report["crash_events"] == 1
        # The broker rejoined: nothing is still down at the end.
        assert result.report["crashed_at_end"] == []

    def test_workload_matches_the_single_domain_replay(self, federated):
        # Same seed, same compiled workload: the federation changes
        # where sessions land, never what arrives.
        name, result = federated
        baseline = replay_scenario(get_scenario(name), seed=DEFAULT_SEED)
        assert result.report["workload_fingerprint"] \
            == baseline.report["workload_fingerprint"]


class TestGuaranteedAvailability:
    def test_surviving_domains_hold_the_single_domain_bar(self, federated):
        name, result = federated
        baseline = replay_scenario(get_scenario(name), seed=DEFAULT_SEED)
        single = float(baseline.report["slo"]["classes"]
                       ["Guaranteed"]["availability"])
        assert result.surviving_guaranteed_availability() >= single

    def test_guaranteed_class_rides_through_the_crash(self, federated):
        _, result = federated
        assert result.surviving_guaranteed_availability() == 1.0
