"""Broker crash mid cross-domain delegation (satellite scenario).

The window under test is the delegation protocol's most dangerous:
the peer has journaled ``delegation_accepted`` (the bid was accepted
and a booking committed) but the home's confirm has not landed. Crash
the peer exactly there and the federation must (a) reroute the request
to a survivor at the home side, and (b) roll the half-delegated
booking back when the peer rejoins — one admission total, capacity
conserved, nothing orphaned.
"""

from __future__ import annotations

import pytest

from repro.federation.recovery import scan_delegations
from repro.federation.sweep import run_delegation_episode
from repro.recovery.journal import DELEGATION_ACCEPTED, DELEGATION_CANCELLED


def accepted_lsn_in_clean_episode(domain: str = "d2") -> int:
    """The LSN of the domain's first ``delegation_accepted`` write in
    an unperturbed run of the scripted episode."""
    clean = run_delegation_episode(seed=0)
    journal = clean.plane.domains[domain].testbed.journal
    assert journal is not None
    records = [record for record in journal.records()
               if record.type == DELEGATION_ACCEPTED]
    assert records, "the clean episode never delegated to d2"
    return records[0].lsn


@pytest.fixture(scope="module")
def episode():
    """The episode with d2 crashed right after its ``accepted`` write
    (so: after the bid was taken, before the home's confirm)."""
    return run_delegation_episode(
        crash_domain="d2", crash_lsn=accepted_lsn_in_clean_episode("d2"),
        mode="after", seed=0)


class TestCrashAfterAcceptBeforeConfirm:
    def test_the_crash_fired_mid_delegation(self, episode):
        assert episode.crashed == ["d2"]
        states = scan_delegations(
            episode.plane.domains["d2"].testbed.journal)
        half = [state for state in states.values()
                if state.role == "peer" and state.sla_id is not None]
        assert half, "d2 never reached the accepted-but-unconfirmed state"
        assert all(not state.confirmed for state in half)

    def test_home_rerouted_to_a_survivor(self, episode):
        outcome = next(o for o in episode.outcomes
                       if o.request.client == "fed-big-1")
        assert outcome.accepted
        assert outcome.domain == "d3"
        assert "d2" in outcome.rerouted
        assert episode.plane.stats["rerouted"] >= 1

    def test_home_journal_disowns_the_abandoned_delegation(self, episode):
        journal = episode.plane.domains["d1"].testbed.journal
        cancelled = [record for record in journal.records()
                     if record.type == DELEGATION_CANCELLED
                     and record.payload.get("role") == "home"
                     and record.payload.get("peer") == "d2"]
        assert cancelled

    def test_rejoin_rolls_the_half_delegated_booking_back(self, episode):
        assert episode.plane.stats["reconciled_cancellations"] >= 1
        states = scan_delegations(
            episode.plane.domains["d2"].testbed.journal)
        half = [state for state in states.values()
                if state.role == "peer" and not state.confirmed]
        assert half and all(state.cancelled for state in half)

    def test_no_double_admission(self, episode):
        # The rerouted client holds at most one live SLA federation-wide
        # (zero once the session naturally completes before the horizon).
        live_domains = [
            name for name in episode.plane.names
            for sla in episode.plane.domains[name].testbed
                                                  .repository.live()
            if sla.client == "fed-big-1"]
        assert len(live_domains) <= 1
        accepted = [o for o in episode.outcomes
                    if o.request.client == "fed-big-1" and o.accepted]
        assert len(accepted) == 1

    def test_conservation_and_invariants(self, episode):
        assert episode.problems == []
        assert episode.ok
