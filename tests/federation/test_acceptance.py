"""The PR's acceptance episode, as a test.

A seeded 3-domain federation with one broker crashed at t=30 and
rejoined at t=60 must complete with zero guaranteed-SLA violations in
the surviving domains, every rerouted admission explained by decision
provenance (the ``repro obs why`` join), and the federation invariants
intact — plus the ``repro federate`` CLI wrapping of the same episode.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.federation.demo import CRASH_AT, RECOVER_AT, run_federate_demo


@pytest.fixture(scope="module")
def demo():
    return run_federate_demo(domains=3, crash_seed=7)


class TestAcceptanceEpisode:
    def test_crash_and_rejoin_are_on_schedule(self, demo):
        crashes = demo.plane.crashes
        recoveries = demo.plane.recoveries
        assert [(time, name) for time, name, _ in crashes] \
            == [(CRASH_AT, demo.crash_domain)]
        assert recoveries == [(RECOVER_AT, demo.crash_domain)]

    def test_zero_guaranteed_violations_in_surviving_domains(self, demo):
        assert demo.surviving_guaranteed_violations == 0

    def test_every_reroute_is_explained(self, demo):
        rerouted = [o for o in demo.outcomes if o.rerouted]
        assert rerouted, "the episode must exercise rerouting"
        assert demo.unexplained_reroutes == []
        for outcome in rerouted:
            assert outcome.request.client in demo.text

    def test_federation_invariants_hold(self, demo):
        assert demo.problems == []

    def test_workload_actually_crossed_domains(self, demo):
        stats = demo.plane.stats
        assert stats["requests"] >= 20
        assert stats["rerouted"] >= 1
        accepted = sum(1 for o in demo.outcomes if o.accepted)
        assert accepted >= stats["requests"] // 2

    def test_report_text_is_deterministic(self, demo):
        again = run_federate_demo(domains=3, crash_seed=7)
        assert again.text == demo.text
        assert again.crash_domain == demo.crash_domain


class TestFederateCli:
    def test_exit_zero_and_report(self, capsys):
        assert main(["federate", "--domains", "3", "--crash", "7"]) == 0
        output = capsys.readouterr().out
        assert "# repro federate — 3 domains" in output
        assert "## verdict" in output
        assert "federation invariants: OK" in output
        assert "guaranteed violations in surviving domains: 0" in output

    def test_cli_report_is_deterministic(self, capsys):
        main(["federate", "--crash", "7"])
        first = capsys.readouterr().out
        main(["federate", "--crash", "7"])
        assert capsys.readouterr().out == first
