"""The delegation crash-point sweep: every write point, both sides.

PR-5 proved single-broker recovery by crashing at every journal write;
here the same harness is swept across the *delegation protocol*: the
under-provisioned home's journal (intents, cancellations, confirms)
and the landing peer's (begin, admission commit, accepted link). Every
cell must end with the federation invariants intact after the crashed
broker rejoins and reconciles.
"""

from __future__ import annotations

from repro.federation.sweep import (EPISODE_WORKLOAD,
                                    count_delegation_write_points,
                                    run_delegation_episode,
                                    sweep_delegation_crash_points)


class TestCleanEpisode:
    def test_the_script_exercises_delegation(self):
        episode = run_delegation_episode(seed=0)
        assert episode.ok
        delegated = [o for o in episode.outcomes if o.delegated]
        assert len(delegated) >= 2, \
            "the scripted workload must force cross-domain delegation"
        assert len(episode.outcomes) == len(EPISODE_WORKLOAD)

    def test_both_swept_journals_have_write_points(self):
        assert count_delegation_write_points("d1", seed=0) >= 5
        assert count_delegation_write_points("d2", seed=0) >= 5


class TestFullSweep:
    def test_every_write_point_survives(self):
        result = sweep_delegation_crash_points(
            domains=("d1", "d2"), modes=("before", "after"), seed=0)
        assert result.cells, "empty sweep"
        # Every armed store must actually fire (the lsn grid comes
        # from a clean run of the same seed)...
        unfired = [cell for cell in result.cells if not cell.fired]
        assert unfired == []
        # ...and every cell must end with the invariants intact.
        assert result.failures == ()
        assert result.ok
