"""Tests for the baseline policies (repro.baselines).

All four policies (the paper's adaptive scheme plus three baselines)
share the interface; the parametrized tests pin the common contract,
and per-policy tests pin the distinguishing behaviours.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    AdaptivePolicy,
    FcfsPolicy,
    ProportionalSharePolicy,
    StaticPartitionPolicy,
)

ALL_POLICIES = [AdaptivePolicy, StaticPartitionPolicy, FcfsPolicy,
                ProportionalSharePolicy]


def make(policy_class):
    return policy_class(15, 6, 5, best_effort_min=2)


@pytest.mark.parametrize("policy_class", ALL_POLICIES)
class TestCommonContract:
    def test_total_capacity_is_26(self, policy_class):
        assert make(policy_class).total_capacity() == 26

    def test_served_unknown_user_is_zero(self, policy_class):
        assert make(policy_class).served("ghost") == 0.0

    def test_admit_set_remove_cycle(self, policy_class):
        policy = make(policy_class)
        assert policy.admit_guaranteed("u", 5)
        report = policy.set_guaranteed_demand("u", 5)
        assert report.guarantees_honored
        assert policy.served("u") == pytest.approx(5.0)
        policy.remove_guaranteed("u")
        assert policy.served("u") == 0.0

    def test_best_effort_cycle(self, policy_class):
        policy = make(policy_class)
        policy.set_best_effort_demand("b", 3)
        assert policy.served("b") == pytest.approx(3.0)
        policy.set_best_effort_demand("b", 0)
        assert policy.served("b") == 0.0

    def test_utilization_bounded(self, policy_class):
        policy = make(policy_class)
        policy.set_best_effort_demand("b", 100)
        assert 0.0 <= policy.utilization() <= 1.0

    def test_failure_repair_round_trip(self, policy_class):
        policy = make(policy_class)
        policy.admit_guaranteed("u", 5)
        policy.set_guaranteed_demand("u", 5)
        policy.apply_failure(10)
        report = policy.apply_repair()
        assert report.guarantees_honored

    def test_duplicate_admission_raises(self, policy_class):
        from repro.errors import AdmissionError
        policy = make(policy_class)
        policy.admit_guaranteed("u", 5)
        with pytest.raises(AdmissionError):
            policy.admit_guaranteed("u", 5)


class TestAdaptiveDistinctives:
    def test_guarantees_survive_failure_via_reserve(self):
        policy = make(AdaptivePolicy)
        policy.admit_guaranteed("u", 14)
        policy.set_guaranteed_demand("u", 14)
        report = policy.apply_failure(3)
        assert report.guarantees_honored

    def test_best_effort_borrows_idle(self):
        policy = make(AdaptivePolicy)
        policy.set_best_effort_demand("b", 26)
        assert policy.served("b") == pytest.approx(26.0)


class TestStaticDistinctives:
    def test_no_borrowing_for_best_effort(self):
        policy = make(StaticPartitionPolicy)
        policy.set_best_effort_demand("b", 26)
        assert policy.served("b") == pytest.approx(5.0)  # Cb only

    def test_failure_violates_guarantees_immediately(self):
        policy = make(StaticPartitionPolicy)
        policy.admit_guaranteed("u", 20)  # Cg folded = 21
        policy.set_guaranteed_demand("u", 20)
        report = policy.apply_failure(3)  # eff 18 < 20
        assert not report.guarantees_honored
        assert report.shortfalls["u"] == pytest.approx(2.0)

    def test_admission_against_folded_cg(self):
        policy = make(StaticPartitionPolicy)
        assert policy.admit_guaranteed("u", 21)
        assert not policy.admit_guaranteed("v", 1)

    def test_unfolded_variant_wastes_adaptive(self):
        policy = StaticPartitionPolicy(15, 6, 5, fold_adaptive=False)
        assert not policy.admit_guaranteed("u", 16)
        assert policy.total_capacity() == 26


class TestFcfsDistinctives:
    def test_no_admission_control(self):
        policy = make(FcfsPolicy)
        for index in range(10):
            assert policy.admit_guaranteed(f"u{index}", 10)

    def test_arrival_order_wins(self):
        policy = make(FcfsPolicy)
        policy.set_best_effort_demand("early", 20)
        policy.admit_guaranteed("late", 20)
        report = policy.set_guaranteed_demand("late", 20)
        # The early best-effort user keeps its 20; the late guaranteed
        # user is starved — FCFS has no classes.
        assert policy.served("early") == pytest.approx(20.0)
        assert policy.served("late") == pytest.approx(6.0)
        assert not report.guarantees_honored


class TestProportionalDistinctives:
    def test_overload_scales_everyone(self):
        policy = make(ProportionalSharePolicy)
        policy.admit_guaranteed("g", 20)
        policy.set_guaranteed_demand("g", 20)
        policy.set_best_effort_demand("b", 32)
        # total demand 52 vs capacity 26: everyone at 50%.
        assert policy.served("g") == pytest.approx(10.0)
        assert policy.served("b") == pytest.approx(16.0)

    def test_underload_serves_fully(self):
        policy = make(ProportionalSharePolicy)
        policy.admit_guaranteed("g", 10)
        report = policy.set_guaranteed_demand("g", 10)
        assert report.guarantees_honored
