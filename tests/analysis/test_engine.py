"""Engine behaviour: suppressions, baseline, reporters, file walking."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    analyze_source,
    fingerprint_findings,
    iter_python_files,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)
from repro.analysis.baseline import VERSION
from repro.errors import AnalysisError

BAD_PRINT = "def f():\n    print('x')\n"


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_line_suppression_silences_one_rule(self):
        source = "def f():\n    print('x')  # qlint: disable=QLNT111\n"
        assert analyze_source(source, "src/repro/m.py") == []

    def test_line_suppression_is_rule_specific(self):
        source = ("def f():\n"
                  "    print('x')  # qlint: disable=QLNT102\n")
        findings = analyze_source(source, "src/repro/m.py")
        assert [f.rule_id for f in findings] == ["QLNT111"]

    def test_line_suppression_takes_a_list(self):
        source = ("def f(start, end):\n"
                  "    print(start == end)"
                  "  # qlint: disable=QLNT111,QLNT102\n")
        assert analyze_source(source, "src/repro/m.py") == []

    def test_line_suppression_all_keyword(self):
        source = "def f():\n    print('x')  # qlint: disable=all\n"
        assert analyze_source(source, "src/repro/m.py") == []

    def test_line_suppression_only_covers_its_line(self):
        source = ("def f():\n"
                  "    print('a')  # qlint: disable=QLNT111\n"
                  "    print('b')\n")
        findings = analyze_source(source, "src/repro/m.py")
        assert len(findings) == 1 and findings[0].line == 3

    def test_file_suppression_covers_the_module(self):
        source = ("# qlint: disable-file=QLNT111\n"
                  "def f():\n"
                  "    print('a')\n"
                  "    print('b')\n")
        assert analyze_source(source, "src/repro/m.py") == []

    def test_trailing_prose_after_dashes_is_ignored(self):
        source = ("def f():\n"
                  "    print('x')  # qlint: disable=QLNT111 -- CLI shim\n")
        assert analyze_source(source, "src/repro/m.py") == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def _findings(self, source):
        return fingerprint_findings(
            analyze_source(source, "src/repro/m.py"))

    def test_fingerprints_survive_unrelated_line_shifts(self):
        original = self._findings(BAD_PRINT)
        shifted = self._findings("# a new leading comment\n" + BAD_PRINT)
        assert [f.fingerprint for f in original] == \
            [f.fingerprint for f in shifted]
        assert original[0].line != shifted[0].line

    def test_identical_lines_fingerprint_independently(self):
        twice = self._findings("def f():\n    print('x')\n    print('x')\n")
        assert len(twice) == 2
        assert twice[0].fingerprint != twice[1].fingerprint

    def test_editing_the_offending_line_invalidates(self):
        original = self._findings(BAD_PRINT)
        edited = self._findings("def f():\n    print('y')\n")
        assert original[0].fingerprint != edited[0].fingerprint

    def test_baseline_subtracts_known_findings(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(BAD_PRINT)
        first = analyze_paths([module], root=tmp_path)
        assert first.new_findings
        baseline = Baseline.from_findings(first.findings)
        second = analyze_paths([module], baseline=baseline, root=tmp_path)
        assert second.new_findings == []
        assert second.findings  # still reported, just not "new"
        assert second.stale_baseline == []

    def test_stale_entries_are_detected(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(BAD_PRINT)
        baseline = Baseline.from_findings(
            analyze_paths([module], root=tmp_path).findings)
        module.write_text("def f():\n    return 1\n")
        result = analyze_paths([module], baseline=baseline, root=tmp_path)
        assert result.new_findings == []
        assert len(result.stale_baseline) == 1

    def test_round_trip_through_disk(self, tmp_path):
        baseline = Baseline.from_findings(self._findings(BAD_PRINT))
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline)
        loaded = load_baseline(path)
        assert set(loaded.entries) == set(baseline.entries)
        payload = json.loads(path.read_text())
        assert payload["version"] == VERSION

    def test_unknown_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(AnalysisError):
            load_baseline(path)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------

class TestReporters:
    def _result(self, tmp_path, source=BAD_PRINT):
        module = tmp_path / "m.py"
        module.write_text(source)
        return analyze_paths([module], root=tmp_path)

    def test_text_report_is_grep_friendly(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "m.py:2:" in text
        assert "QLNT111" in text
        assert "1 new finding(s)" in text

    def test_json_schema_is_stable(self, tmp_path):
        """The documented schema: tooling depends on these exact keys."""
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["version"] == 1
        assert payload["tool"] == "repro.analysis"
        assert set(payload) == {"version", "tool", "summary", "findings",
                                "stale_baseline", "parse_errors"}
        assert set(payload["summary"]) == {
            "modules", "findings", "new", "new_errors", "new_warnings",
            "baselined", "stale_baseline", "parse_errors"}
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "column", "message", "source",
                                "fingerprint", "baselined"}
        assert finding["rule"] == "QLNT111"
        assert finding["baselined"] is False

    def test_clean_run_renders_zero_summary(self, tmp_path):
        result = self._result(tmp_path, "def f():\n    return 1\n")
        assert "0 new finding(s)" in render_text(result)
        assert json.loads(render_json(result))["findings"] == []


# ----------------------------------------------------------------------
# File walking / parse errors
# ----------------------------------------------------------------------

class TestWalking:
    def test_iter_python_files_is_sorted_and_recursive(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_is_an_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            iter_python_files([tmp_path / "nope"])

    def test_syntax_error_does_not_hide_other_modules(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "bad.py").write_text(BAD_PRINT)
        result = analyze_paths([tmp_path], root=tmp_path)
        assert len(result.parse_errors) == 1
        assert result.parse_errors[0][0] == "broken.py"
        assert [f.rule_id for f in result.new_findings] == ["QLNT111"]
