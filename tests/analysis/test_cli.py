"""CLI contract: exit codes, formats, baseline flags, fixture tree.

The fixture tree written here contains exactly one violation per
shipped rule; the analyzer must exit nonzero on it and name every
rule id in the report (the acceptance criterion for the engine).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import all_rules
from repro.analysis.cli import main

#: One minimal violation per rule id.
VIOLATIONS = {
    "QLNT101": ("clock.py", "import time\n\nSTAMP = time.time()\n"),
    "QLNT102": ("compare.py",
                "def same(start, end):\n    return start == end\n"),
    "QLNT103": ("quantity.py", "LIMIT = '64MB'\n"),
    "QLNT104": ("swallow.py",
                "def f():\n    try:\n        work()\n"
                "    except Exception:\n        pass\n"),
    "QLNT105": ("foreign.py",
                "def f():\n    raise ValueError('nope')\n"),
    "QLNT106": ("pkg/__init__.py", "CONSTANT = 1\n"),
    "QLNT107": ("machine.py",
                "class Reservation:\n"
                "    def commit(self):\n"
                "        self.state = ReservationState.BOUND\n"),
    "QLNT108": ("defaults.py", "def f(x=[]):\n    return x\n"),
    "QLNT109": ("ordering.py",
                "RESULT = [x for x in {'a', 'b'}]\n"),
    "QLNT110": ("unused.py", "import itertools\n\nVALUE = 1\n"),
    "QLNT111": ("printer.py", "def f():\n    print('debug')\n"),
    "QLNT112": ("repro/core/client.py",
                "def f(bus, envelope):\n    return bus.request(envelope)\n"),
    "QLNT113": ("repro/core/stats_counter.py",
                "class Cache:\n"
                "    def hit(self):\n"
                "        self.stale_hits += 1\n"),
    "QLNT114": ("repro/core/flag_flip.py",
                "class Helper:\n"
                "    def tidy(self, composite):\n"
                "        composite.confirmed = True\n"),
    "QLNT117": ("repro/federation/raw_send.py",
                "def f(bus, envelope):\n"
                "    return bus.send_async(envelope)\n"),
}


@pytest.fixture
def fixture_tree(tmp_path):
    """A tree with one violation per shipped rule."""
    for _rule, (name, source) in sorted(VIOLATIONS.items()):
        target = tmp_path / "tree" / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path / "tree"


@pytest.fixture
def clean_tree(tmp_path):
    target = tmp_path / "clean" / "module.py"
    target.parent.mkdir(parents=True)
    target.write_text("def double(x):\n    return 2 * x\n")
    return tmp_path / "clean"


def test_fixture_tree_fails_with_every_rule(fixture_tree, capsys):
    assert main([str(fixture_tree), "--no-baseline"]) == 1
    output = capsys.readouterr().out
    for rule_id in VIOLATIONS:
        assert rule_id in output, rule_id


def test_fixture_tree_fails_via_python_dash_m(fixture_tree):
    """The documented invocation: ``python -m repro.analysis``."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(fixture_tree),
         "--no-baseline"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 1
    for rule_id in VIOLATIONS:
        assert rule_id in proc.stdout, rule_id


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert main([str(clean_tree), "--no-baseline"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_each_violation_trips_only_expected_rules(tmp_path):
    """Each bad fixture must trip its own rule — and the good/clean
    fixtures never produce spurious extra rule ids."""
    from repro.analysis import analyze_paths
    for rule_id, (name, source) in sorted(VIOLATIONS.items()):
        target = tmp_path / rule_id / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        result = analyze_paths([tmp_path / rule_id], root=tmp_path)
        assert rule_id in {f.rule_id for f in result.new_findings}, rule_id


def test_json_format(fixture_tree, capsys):
    assert main([str(fixture_tree), "--no-baseline",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    reported = {f["rule"] for f in payload["findings"]}
    assert set(VIOLATIONS) <= reported


def test_write_baseline_then_clean(fixture_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(fixture_tree), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert baseline.exists()
    assert main([str(fixture_tree), "--baseline", str(baseline)]) == 0
    assert main([str(fixture_tree), "--no-baseline"]) == 1
    capsys.readouterr()


def test_warning_only_tree_needs_strict(tmp_path, capsys):
    """QLNT103 is the advisory tier: nonzero only under --strict."""
    target = tmp_path / "warn" / "quantity.py"
    target.parent.mkdir(parents=True)
    target.write_text("LIMIT = '64MB'\n")
    assert main([str(target.parent), "--no-baseline"]) == 0
    assert main([str(target.parent), "--no-baseline", "--strict"]) == 1
    capsys.readouterr()


def test_stale_baseline_fails_only_under_strict(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("def f():\n    print('x')\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    bad.write_text("def f():\n    return 1\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    assert main([str(bad), "--baseline", str(baseline), "--strict"]) == 1
    capsys.readouterr()


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in output


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "missing"), "--no-baseline"]) == 2
    assert "error" in capsys.readouterr().err


def test_syntax_error_exits_two(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main([str(tmp_path), "--no-baseline"]) == 2
    assert "PARSE" in capsys.readouterr().out
