"""Positive (bad) and negative (good) fixtures for every shipped rule.

Each rule gets at least one snippet that must flag and one that must
stay silent, per the engine's acceptance contract.
"""

from __future__ import annotations

import pytest

from repro.analysis import all_rules
from repro.analysis.rules.states import STATE_MACHINES


# ----------------------------------------------------------------------
# QLNT101 — determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("snippet", [
        "import random\n",
        "import time\n",
        "import datetime\n",
        "from random import choice\n",
        "from datetime import datetime\n",
        "from time import monotonic\n",
    ])
    def test_banned_imports_flag(self, run, snippet):
        assert run(snippet, rule_id="QLNT101")

    def test_wall_clock_attribute_flags(self, run):
        # `time` smuggled in through a helper module still reads the
        # wall clock at the attribute site.
        findings = run("def f(time):\n    return time.monotonic()\n",
                       rule_id="QLNT101")
        assert findings and "monotonic" in findings[0].message

    def test_seeded_source_is_clean(self, run):
        snippet = ("from repro.sim.random import RandomSource\n"
                   "r = RandomSource(7)\n"
                   "x = r.uniform(0.0, 1.0)\n")
        assert run(snippet, rule_id="QLNT101") == []

    def test_sim_random_module_is_exempt(self, run):
        assert run("import random\n",
                   relpath="src/repro/sim/random.py",
                   rule_id="QLNT101") == []

    def test_benchmarks_are_exempt(self, run):
        assert run("import time\n",
                   relpath="benchmarks/bench_thing.py",
                   rule_id="QLNT101") == []


# ----------------------------------------------------------------------
# QLNT102 — float equality on capacity/time
# ----------------------------------------------------------------------

class TestFloatComparison:
    @pytest.mark.parametrize("snippet", [
        "def f(start, end):\n    return start == end\n",
        "def f(demand):\n    return demand != 0.0\n",
        "def f(x):\n    return x == 1.5\n",
        "def f(entry):\n    return entry.bandwidth_mbps == 10\n",
    ])
    def test_exact_comparison_flags(self, run, snippet):
        findings = run(snippet, rule_id="QLNT102")
        assert findings and "isclose" in findings[0].message

    @pytest.mark.parametrize("snippet", [
        "def f(start, end):\n    return start <= end\n",
        "def f(value):\n    return value == int(value)\n",
        "def f(count):\n    return count == 1\n",
        "def f(name):\n    return name == 'other'\n",
    ])
    def test_ordering_and_exact_casts_are_clean(self, run, snippet):
        assert run(snippet, rule_id="QLNT102") == []


# ----------------------------------------------------------------------
# QLNT103 — raw quantity literals
# ----------------------------------------------------------------------

class TestQuantityLiterals:
    @pytest.mark.parametrize("snippet", [
        "LIMIT = '64MB'\n",
        "def f():\n    return compare('10 Mbps')\n",
        "BOUNDS = {'loss': '10%'}\n",
    ])
    def test_raw_literal_flags(self, run, snippet):
        assert run(snippet, rule_id="QLNT103")

    @pytest.mark.parametrize("snippet", [
        "x = parse_memory_mb('64MB')\n",
        "y = parse_bandwidth_mbps('10 Mbps')\n",
        '"""Parses strings such as ``64MB``."""\n',
        "def f():\n    '10 Mbps'\n",  # standalone string: prose
        "label = 'memory'\n",
    ])
    def test_units_constructors_and_prose_are_clean(self, run, snippet):
        assert run(snippet, rule_id="QLNT103") == []

    def test_units_module_is_exempt(self, run):
        assert run("CANON = '1MB'\n",
                   relpath="src/repro/units.py",
                   rule_id="QLNT103") == []


# ----------------------------------------------------------------------
# QLNT104 — broad except
# ----------------------------------------------------------------------

class TestBroadExcept:
    def test_swallowing_broad_except_flags(self, run):
        snippet = ("def f():\n"
                   "    try:\n"
                   "        work()\n"
                   "    except Exception:\n"
                   "        pass\n")
        assert run(snippet, rule_id="QLNT104")

    def test_bare_except_always_flags(self, run):
        snippet = ("def f():\n"
                   "    try:\n"
                   "        work()\n"
                   "    except:\n"
                   "        raise\n")
        assert run(snippet, rule_id="QLNT104")

    def test_reraise_is_clean(self, run):
        snippet = ("def f():\n"
                   "    try:\n"
                   "        work()\n"
                   "    except Exception:\n"
                   "        raise\n")
        assert run(snippet, rule_id="QLNT104") == []

    def test_logging_is_clean(self, run):
        snippet = ("def f(self):\n"
                   "    try:\n"
                   "        work()\n"
                   "    except Exception as exc:\n"
                   "        self._record(f'failed: {exc}')\n")
        assert run(snippet, rule_id="QLNT104") == []

    def test_narrow_except_is_clean(self, run):
        snippet = ("def f():\n"
                   "    try:\n"
                   "        work()\n"
                   "    except AdmissionError:\n"
                   "        pass\n")
        assert run(snippet, rule_id="QLNT104") == []


# ----------------------------------------------------------------------
# QLNT105 — foreign exceptions
# ----------------------------------------------------------------------

class TestForeignExceptions:
    @pytest.mark.parametrize("snippet", [
        "def f():\n    raise ValueError('bad')\n",
        "def f():\n    raise KeyError('missing')\n",
        "def f():\n    raise RuntimeError('boom')\n",
    ])
    def test_stdlib_raise_flags(self, run, snippet):
        findings = run(snippet, rule_id="QLNT105")
        assert findings and "GQoSMError" in findings[0].message

    @pytest.mark.parametrize("snippet", [
        "def f():\n    raise UnitError('bad')\n",
        "def f():\n    raise ValidationError('bad')\n",
        "def f():\n    raise NotImplementedError\n",
        "def f():\n    raise\n",
        "def f(exc):\n    raise exc\n",
    ])
    def test_domain_and_protocol_raises_are_clean(self, run, snippet):
        assert run(snippet, rule_id="QLNT105") == []


# ----------------------------------------------------------------------
# QLNT106 — __all__ drift
# ----------------------------------------------------------------------

class TestExports:
    def test_public_init_without_all_flags(self, run):
        findings = run("from .engine import Simulator\n",
                       relpath="src/repro/somepkg/__init__.py",
                       rule_id="QLNT106")
        assert findings and "__all__" in findings[0].message

    def test_phantom_export_flags(self, run):
        snippet = ("def real():\n    pass\n"
                   "__all__ = ['real', 'phantom']\n")
        findings = run(snippet, rule_id="QLNT106")
        assert findings and "phantom" in findings[0].message

    def test_duplicate_export_flags(self, run):
        snippet = "x = 1\n__all__ = ['x', 'x']\n"
        assert run(snippet, rule_id="QLNT106")

    def test_consistent_init_is_clean(self, run):
        snippet = ("from .engine import Simulator\n"
                   "__all__ = ['Simulator']\n")
        assert run(snippet,
                   relpath="src/repro/somepkg/__init__.py",
                   rule_id="QLNT106") == []

    def test_plain_module_without_all_is_clean(self, run):
        assert run("def helper():\n    pass\n",
                   rule_id="QLNT106") == []


# ----------------------------------------------------------------------
# QLNT107 — state-machine transitions
# ----------------------------------------------------------------------

class TestStateTransitions:
    def test_undeclared_transition_flags(self, run):
        snippet = ("class Reservation:\n"
                   "    def commit(self):\n"
                   "        self.state = ReservationState.BOUND\n")
        findings = run(snippet, rule_id="QLNT107")
        assert findings and "undeclared transition" in findings[0].message

    def test_unregistered_machine_flags(self, run):
        snippet = ("class Widget:\n"
                   "    def flip(self):\n"
                   "        self.state = WidgetState.ON\n")
        findings = run(snippet, rule_id="QLNT107")
        assert findings and "not registered" in findings[0].message

    def test_computed_state_value_flags(self, run):
        snippet = ("class Reservation:\n"
                   "    def restore(self, saved):\n"
                   "        self.state = saved\n")
        findings = run(snippet, rule_id="QLNT107")
        assert findings and "computed" in findings[0].message

    def test_declared_transition_is_clean(self, run):
        snippet = ("class Reservation:\n"
                   "    def commit(self):\n"
                   "        self.state = ReservationState.COMMITTED\n")
        assert run(snippet, rule_id="QLNT107") == []

    def test_non_state_assignment_is_clean(self, run):
        snippet = ("class Reservation:\n"
                   "    def label(self):\n"
                   "        self.name = 'res'\n")
        assert run(snippet, rule_id="QLNT107") == []

    def test_table_matches_the_real_enums(self):
        """Every member the table references must exist on the enum."""
        from repro.gara.reservation import ReservationState
        from repro.resources.compute import JobState
        from repro.resources.machine import NodeState
        from repro.sla.lifecycle import Phase
        from repro.sla.negotiation import NegotiationState
        enums = {"ReservationState": ReservationState, "Phase": Phase,
                 "NegotiationState": NegotiationState,
                 "JobState": JobState, "NodeState": NodeState}
        assert set(STATE_MACHINES) == set(enums)
        for name, spec in STATE_MACHINES.items():
            members = {member.name for member in enums[name]}
            for method, allowed in spec.transitions.items():
                assert allowed <= members, (name, method)


# ----------------------------------------------------------------------
# QLNT108 — mutable defaults
# ----------------------------------------------------------------------

class TestMutableDefaults:
    @pytest.mark.parametrize("snippet", [
        "def f(x=[]):\n    pass\n",
        "def f(x={}):\n    pass\n",
        "def f(*, x=set()):\n    pass\n",
        "def f(x=dict()):\n    pass\n",
    ])
    def test_mutable_default_flags(self, run, snippet):
        assert run(snippet, rule_id="QLNT108")

    @pytest.mark.parametrize("snippet", [
        "def f(x=None):\n    pass\n",
        "def f(x=()):\n    pass\n",
        "def f(x=0):\n    pass\n",
    ])
    def test_immutable_default_is_clean(self, run, snippet):
        assert run(snippet, rule_id="QLNT108") == []


# ----------------------------------------------------------------------
# QLNT109 — unordered iteration
# ----------------------------------------------------------------------

class TestUnorderedIteration:
    @pytest.mark.parametrize("snippet", [
        "for item in {'a', 'b'}:\n    use(item)\n",
        "xs = [x for x in set(items)]\n",
        "def f(registry):\n"
        "    for name, svc in registry.items():\n"
        "        use(name, svc)\n",
    ])
    def test_unordered_iteration_flags(self, run, snippet):
        assert run(snippet, rule_id="QLNT109")

    @pytest.mark.parametrize("snippet", [
        "for item in sorted({'a', 'b'}):\n    use(item)\n",
        "for item in ['a', 'b']:\n    use(item)\n",
        "def f(mapping):\n"
        "    for key, value in mapping.items():\n"
        "        use(key, value)\n",
    ])
    def test_ordered_iteration_is_clean(self, run, snippet):
        assert run(snippet, rule_id="QLNT109") == []


# ----------------------------------------------------------------------
# QLNT110 — unused imports
# ----------------------------------------------------------------------

class TestUnusedImports:
    def test_unused_import_flags(self, run):
        findings = run("import itertools\n\nx = 1\n", rule_id="QLNT110")
        assert findings and "itertools" in findings[0].message

    def test_used_import_is_clean(self, run):
        assert run("import itertools\n\nc = itertools.count()\n",
                   rule_id="QLNT110") == []

    def test_reexport_via_all_counts_as_use(self, run):
        snippet = ("from .engine import Simulator\n"
                   "__all__ = ['Simulator']\n")
        assert run(snippet, rule_id="QLNT110") == []

    def test_future_annotations_is_exempt(self, run):
        assert run("from __future__ import annotations\nx = 1\n",
                   rule_id="QLNT110") == []


# ----------------------------------------------------------------------
# QLNT111 — debug prints
# ----------------------------------------------------------------------

class TestDebugPrints:
    def test_print_in_library_flags(self, run):
        assert run("def f():\n    print('debug')\n", rule_id="QLNT111")

    def test_cli_module_is_exempt(self, run):
        assert run("def main():\n    print('report')\n",
                   relpath="src/repro/cli.py",
                   rule_id="QLNT111") == []

    def test_experiments_are_exempt(self, run):
        assert run("def render():\n    print('table')\n",
                   relpath="src/repro/experiments/reporting.py",
                   rule_id="QLNT111") == []


# ----------------------------------------------------------------------
# QLNT112 — raw bus.request() outside the transport layer
# ----------------------------------------------------------------------

class TestRawBusRequest:
    @pytest.mark.parametrize("snippet", [
        "def f(bus, envelope):\n    return bus.request(envelope)\n",
        ("class Stub:\n"
         "    def call(self, envelope):\n"
         "        return self._bus.request(envelope)\n"),
        "def f(testbed, envelope):\n    return testbed.bus.request(envelope)\n",
    ])
    def test_raw_request_in_core_flags(self, run, snippet):
        findings = run(snippet, relpath="src/repro/core/gateway.py",
                       rule_id="QLNT112")
        assert findings and "ResilientCaller" in findings[0].message

    def test_raw_request_in_sla_flags(self, run):
        assert run("def f(bus, e):\n    return bus.request(e)\n",
                   relpath="src/repro/sla/negotiation.py",
                   rule_id="QLNT112")

    def test_resilient_caller_is_clean(self, run):
        snippet = ("def f(caller, envelope):\n"
                   "    return caller.call(envelope)\n")
        assert run(snippet, relpath="src/repro/core/gateway.py",
                   rule_id="QLNT112") == []

    def test_transport_layer_is_exempt(self, run):
        assert run("def f(bus, e):\n    return bus.request(e)\n",
                   relpath="src/repro/xmlmsg/resilient.py",
                   rule_id="QLNT112") == []

    def test_unrelated_request_receivers_are_clean(self, run):
        # requests to non-bus objects (an HTTP session, a queue) are
        # out of scope for the rule.
        assert run("def f(session, e):\n    return session.request(e)\n",
                   relpath="src/repro/core/broker.py",
                   rule_id="QLNT112") == []


# ----------------------------------------------------------------------
# QLNT113 — private mutable counters for cross-cutting statistics
# ----------------------------------------------------------------------

class TestPrivateCounter:
    @pytest.mark.parametrize("snippet", [
        ("class Cache:\n"
         "    def lookup(self):\n"
         "        self.stale_hits += 1\n"),
        ("class Verifier:\n"
         "    def poll(self):\n"
         "        self.tests_run += 1\n"),
        ("class Bus:\n"
         "    def deliver(self):\n"
         "        self._messages_seen += 1\n"),
        ("class Registry:\n"
         "    def add(self):\n"
         "        self.registrations_total += 2\n"),
    ])
    def test_counter_augassign_in_core_flags(self, run, snippet):
        findings = run(snippet, relpath="src/repro/core/module.py",
                       rule_id="QLNT113")
        assert findings and "MetricsRegistry" in findings[0].message

    def test_all_instrumented_layers_are_in_scope(self, run):
        snippet = ("class C:\n"
                   "    def f(self):\n"
                   "        self.hits += 1\n")
        for layer in ("core", "monitoring", "network", "xmlmsg",
                      "registry"):
            assert run(snippet, relpath=f"src/repro/{layer}/module.py",
                       rule_id="QLNT113")

    def test_stats_dataclass_bundle_is_clean(self, run):
        # A dedicated stats object is a deliberate local bundle, not a
        # shadow registry.
        snippet = ("class Broker:\n"
                   "    def f(self):\n"
                   "        self.stats.cache_hits += 1\n")
        assert run(snippet, relpath="src/repro/core/broker.py",
                   rule_id="QLNT113") == []

    def test_non_counter_attributes_are_clean(self, run):
        snippet = ("class Clock:\n"
                   "    def tick(self):\n"
                   "        self.elapsed += 1.0\n")
        assert run(snippet, relpath="src/repro/core/broker.py",
                   rule_id="QLNT113") == []

    def test_experiments_layer_is_exempt(self, run):
        snippet = ("class Harness:\n"
                   "    def f(self):\n"
                   "        self.hits += 1\n")
        assert run(snippet, relpath="src/repro/experiments/harness.py",
                   rule_id="QLNT113") == []


# ----------------------------------------------------------------------
# QLNT114 — journaled state mutated outside the journal API
# ----------------------------------------------------------------------

class TestJournaledState:
    @pytest.mark.parametrize("snippet,field", [
        (("class Helper:\n"
          "    def tidy(self, composite):\n"
          "        composite.confirmed = True\n"), "confirmed"),
        (("class Helper:\n"
          "    def drop(self, composite):\n"
          "        composite.cancelled = True\n"), "cancelled"),
        (("class Helper:\n"
          "    def push(self, booking):\n"
          "        booking.committed = True\n"), "committed"),
        (("class Partition:\n"
          "    def shrink(self):\n"
          "        self._failed += 4.0\n"), "_failed"),
    ])
    def test_mutation_outside_transition_method_flags(self, run, snippet,
                                                      field):
        findings = run(snippet, relpath="src/repro/core/module.py",
                       rule_id="QLNT114")
        assert findings and field in findings[0].message

    @pytest.mark.parametrize("snippet", [
        ("class Composite:\n"
         "    def confirm(self):\n"
         "        self.confirmed = True\n"),
        ("class Composite:\n"
         "    def cancel(self):\n"
         "        self.cancelled = True\n"),
        ("class Booking:\n"
         "    def commit(self):\n"
         "        self.committed = True\n"),
        ("class Booking:\n"
         "    def __init__(self):\n"
         "        self.committed = False\n"),
        ("class Partition:\n"
         "    def apply_failure(self, lost):\n"
         "        self._failed += lost\n"),
    ])
    def test_declared_transition_methods_are_clean(self, run, snippet):
        assert run(snippet, relpath="src/repro/core/module.py",
                   rule_id="QLNT114") == []

    def test_dataclass_field_default_is_clean(self, run):
        # A class-level annotated default declares the field; it does
        # not mutate journaled state.
        snippet = ("class CompositeReservation:\n"
                   "    confirmed: bool = False\n"
                   "    cancelled: bool = False\n")
        assert run(snippet, relpath="src/repro/core/module.py",
                   rule_id="QLNT114") == []

    def test_all_journaling_layers_are_in_scope(self, run):
        snippet = ("class C:\n"
                   "    def f(self):\n"
                   "        self.confirmed = True\n")
        for layer in ("core", "network", "gara", "sla"):
            assert run(snippet, relpath=f"src/repro/{layer}/module.py",
                       rule_id="QLNT114")

    def test_recovery_layer_is_exempt(self, run):
        # Replay legitimately rebuilds the flags it folds from records.
        snippet = ("class View:\n"
                   "    def fold(self, composite):\n"
                   "        composite.confirmed = True\n")
        assert run(snippet, relpath="src/repro/recovery/recover.py",
                   rule_id="QLNT114") == []

    def test_unrelated_fields_are_clean(self, run):
        snippet = ("class C:\n"
                   "    def f(self):\n"
                   "        self.started = True\n")
        assert run(snippet, relpath="src/repro/core/module.py",
                   rule_id="QLNT114") == []


# ----------------------------------------------------------------------
# QLNT115 — object allocation in the DES/slot-table hot loop
# ----------------------------------------------------------------------

class TestHotPathAllocation:
    EVENTS = "src/repro/sim/events.py"
    TABLE = "src/repro/gara/slot_table.py"

    def test_lambda_in_hot_loop_flags(self, run):
        snippet = ("class EventQueue:\n"
                   "    def pop(self):\n"
                   "        key = lambda item: item[0]\n"
                   "        return min(self._heap, key=key)\n")
        findings = run(snippet, relpath=self.EVENTS, rule_id="QLNT115")
        assert findings and "closure" in findings[0].message

    def test_nested_def_in_hot_loop_flags(self, run):
        snippet = ("class EventQueue:\n"
                   "    def peek_time(self):\n"
                   "        def head():\n"
                   "            return self._heap[0]\n"
                   "        return head()\n")
        findings = run(snippet, relpath=self.EVENTS, rule_id="QLNT115")
        assert findings and "head()" in findings[0].message

    def test_constructor_in_probe_path_flags(self, run):
        snippet = ("class SlotTable:\n"
                   "    def usage_at(self, time):\n"
                   "        probe = Segment(time, time)\n"
                   "        return probe\n")
        findings = run(snippet, relpath=self.TABLE, rule_id="QLNT115")
        assert findings and "Segment" in findings[0].message

    def test_resource_vector_result_is_allowed(self, run):
        # The probes return one aggregate vector per call by contract.
        snippet = ("class SlotTable:\n"
                   "    def usage_at(self, time):\n"
                   "        return ResourceVector(cpu=self._cpu[0])\n")
        assert run(snippet, relpath=self.TABLE, rule_id="QLNT115") == []

    def test_raised_exception_is_allowed(self, run):
        # Error paths are cold; constructing the exception is fine.
        snippet = ("class EventQueue:\n"
                   "    def pop(self):\n"
                   "        raise SimulationError('empty queue')\n")
        assert run(snippet, relpath=self.EVENTS, rule_id="QLNT115") == []

    def test_cold_functions_in_hot_modules_are_clean(self, run):
        # push() is not in the declared hot path; allocation is fine.
        snippet = ("class EventQueue:\n"
                   "    def push(self, time, action):\n"
                   "        return Event(time, 0, 0, action)\n")
        assert run(snippet, relpath=self.EVENTS, rule_id="QLNT115") == []

    def test_other_modules_are_out_of_scope(self, run):
        snippet = ("class Broker:\n"
                   "    def pop(self):\n"
                   "        return lambda: None\n")
        assert run(snippet, relpath="src/repro/core/broker.py",
                   rule_id="QLNT115") == []


# ----------------------------------------------------------------------
# QLNT116 — reject/degrade path without a decision record
# ----------------------------------------------------------------------

class TestDecisionProvenance:
    BROKER = "src/repro/core/broker.py"
    OPTIMIZER = "src/repro/core/optimizer.py"

    def test_silent_reject_counter_flags(self, run):
        snippet = ("class Broker:\n"
                   "    def _negotiate(self, request):\n"
                   "        self.stats.rejected_capacity += 1\n"
                   "        return None\n")
        findings = run(snippet, relpath=self.BROKER, rule_id="QLNT116")
        assert findings and "rejected_capacity" in findings[0].message
        assert "_decide" in findings[0].message

    def test_reject_with_decide_is_clean(self, run):
        snippet = ("class Broker:\n"
                   "    def _negotiate(self, request):\n"
                   "        self.stats.rejected_capacity += 1\n"
                   "        self._decide('admission', 'reject')\n"
                   "        return None\n")
        assert run(snippet, relpath=self.BROKER,
                   rule_id="QLNT116") == []

    def test_degrade_counter_flags(self, run):
        snippet = ("class Adapter:\n"
                   "    def on_degradation(self, sla):\n"
                   "        self.stats.squeezes += 1\n")
        findings = run(snippet, relpath="src/repro/core/scenarios.py",
                       rule_id="QLNT116")
        assert findings and "squeezes" in findings[0].message

    def test_decisions_decide_satisfies(self, run):
        snippet = ("class Adapter:\n"
                   "    def on_degradation(self, sla):\n"
                   "        self.stats.squeezes += 1\n"
                   "        broker.decisions.decide('adaptation',\n"
                   "                                'squeeze')\n")
        assert run(snippet, relpath="src/repro/core/scenarios.py",
                   rule_id="QLNT116") == []

    def test_solver_result_without_hook_flags(self, run):
        snippet = ("def greedy_optimize(services, capacity):\n"
                   "    return OptimizationResult(True, {}, 0.0, {})\n")
        findings = run(snippet, relpath=self.OPTIMIZER,
                       rule_id="QLNT116")
        assert findings and "OptimizationResult" in findings[0].message

    def test_solver_result_with_hook_is_clean(self, run):
        snippet = ("def greedy_optimize(services, capacity, *,\n"
                   "                    on_decision=None):\n"
                   "    result = OptimizationResult(True, {}, 0.0, {})\n"
                   "    if on_decision is not None:\n"
                   "        on_decision(result)\n"
                   "    return result\n")
        assert run(snippet, relpath=self.OPTIMIZER,
                   rule_id="QLNT116") == []

    def test_solver_result_outside_optimizer_ignored(self, run):
        # Constructing a result object is only a verdict in the solver.
        snippet = ("class Broker:\n"
                   "    def summarize(self):\n"
                   "        return OptimizationResult(True, {}, 0.0, {})\n")
        assert run(snippet, relpath=self.BROKER,
                   rule_id="QLNT116") == []

    def test_counter_increment_at_module_level_ignored(self, run):
        snippet = ("stats.rejected_capacity += 1\n")
        assert run(snippet, relpath=self.BROKER,
                   rule_id="QLNT116") == []

    def test_other_modules_are_out_of_scope(self, run):
        snippet = ("class Verifier:\n"
                   "    def check(self):\n"
                   "        self.stats.rejected_capacity += 1\n")
        assert run(snippet, relpath="src/repro/monitoring/verifier.py",
                   rule_id="QLNT116") == []


# ----------------------------------------------------------------------
# QLNT117 — raw bus send inside repro.federation
# ----------------------------------------------------------------------

class TestRawFederationSend:
    PLANE = "src/repro/federation/plane.py"

    @pytest.mark.parametrize("snippet", [
        "def f(bus, envelope):\n    return bus.request(envelope)\n",
        "def f(bus, envelope):\n    bus.send_async(envelope)\n",
        ("class Endpoint:\n"
         "    def ping(self, envelope):\n"
         "        return self._bus.request(envelope)\n"),
        ("def f(plane, envelope):\n"
         "    return plane.bus.request(envelope)\n"),
    ])
    def test_raw_send_in_federation_flags(self, run, snippet):
        findings = run(snippet, relpath=self.PLANE, rule_id="QLNT117")
        assert findings and "ResilientCaller" in findings[0].message

    def test_resilient_caller_is_clean(self, run):
        snippet = ("def f(caller, envelope):\n"
                   "    return caller.call(envelope)\n")
        assert run(snippet, relpath=self.PLANE, rule_id="QLNT117") == []

    def test_handler_registration_is_clean(self, run):
        # Registering a handler on the bus is receive-side wiring, not
        # a send; only the send primitives are constrained.
        snippet = ("def wire(bus, endpoint):\n"
                   "    bus.register('fed:d1', endpoint.handle)\n")
        assert run(snippet, relpath=self.PLANE, rule_id="QLNT117") == []

    def test_outside_federation_is_exempt(self, run):
        assert run("def f(bus, e):\n    return bus.request(e)\n",
                   relpath="src/repro/xmlmsg/resilient.py",
                   rule_id="QLNT117") == []

    def test_non_bus_receiver_is_clean(self, run):
        assert run("def f(session, e):\n    return session.request(e)\n",
                   relpath=self.PLANE, rule_id="QLNT117") == []


# ----------------------------------------------------------------------
# Catalogue invariants
# ----------------------------------------------------------------------

def test_rule_catalogue_is_stable():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    assert len(ids) >= 8
    assert all(rule.title for rule in rules)
    expected = {f"QLNT1{n:02d}" for n in range(1, 18)}
    assert set(ids) == expected
