"""Shared helpers for the static-analysis engine tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source

#: Default module path used for snippets: a library module, so no
#: path-based rule exemption applies.
LIB_PATH = "src/repro/somepkg/module.py"


@pytest.fixture
def run():
    """Analyse a dedented snippet; returns the findings list."""

    def _run(source: str, relpath: str = LIB_PATH, rule_id: str = None):
        findings = analyze_source(textwrap.dedent(source), relpath)
        if rule_id is not None:
            findings = [f for f in findings if f.rule_id == rule_id]
        return findings

    return _run
