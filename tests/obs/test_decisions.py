"""Decision provenance: guard discipline, record content, stamps."""

from __future__ import annotations

from repro.core.testbed import build_testbed, install_observability
from repro.obs import DecisionLog, DecisionRecord, point_payload
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.recover import install_journal
from repro.sla.negotiation import ServiceRequest
from repro.telemetry.events import EventStream


def _request(client: str = "user1", cpu: int = 4,
             service_class: ServiceClass = ServiceClass.GUARANTEED
             ) -> ServiceRequest:
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 256))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=service_class, specification=spec,
        start=0.0, end=100.0)


class TestGuardDiscipline:
    def test_provenance_is_off_by_default(self):
        testbed = build_testbed()
        assert testbed.broker.decisions is None
        assert testbed.broker.slo is None
        assert testbed.broker.verifier.decisions is None
        assert testbed.broker.verifier.slo is None
        assert testbed.partition.decisions is None
        assert testbed.decisions is None and testbed.slo is None

    def test_admissions_work_without_provenance(self):
        testbed = build_testbed()
        outcome = testbed.broker.request_service(_request())
        assert outcome.accepted
        assert testbed.broker.decisions is None

    def test_install_is_idempotent(self):
        testbed = build_testbed()
        first = install_observability(testbed)
        second = install_observability(testbed)
        assert first == second
        assert testbed.decisions is first[0]
        assert testbed.slo is first[1]
        assert testbed.broker.decisions is first[0]


class TestDecisionLog:
    def test_records_are_stamped_and_sequenced(self):
        log = DecisionLog(now=lambda: 5.0)
        first = log.decide("admission", "accept", subject="sla-1",
                           sla_id=1)
        second = log.decide("admission", "reject", subject="user2",
                            constraint="capacity", reason="full")
        assert isinstance(first, DecisionRecord)
        assert (first.decision_id, second.decision_id) == (1, 2)
        assert first.time == 5.0 and second.outcome == "reject"
        assert len(log) == 2
        assert [record.decision_id for record in log.records] == [1, 2]

    def test_stream_emit_carries_the_record(self):
        stream = EventStream()
        log = DecisionLog(now=lambda: 1.0, stream=stream)
        log.decide("admission", "reject", subject="user1",
                   constraint="discovery", reason="no service")
        events = [event for event in stream.events
                  if event.category == "decision"]
        assert len(events) == 1
        assert events[0].details["constraint"] == "discovery"
        assert events[0].details["outcome"] == "reject"
        assert "time" not in events[0].details  # positional on the event

    def test_query_helpers(self):
        log = DecisionLog(now=lambda: 0.0)
        log.decide("admission", "reject", subject="user1")
        log.decide("admission", "accept", subject="sla-7", sla_id=7)
        log.decide("violation", "detected", sla_id=7)
        assert [r.outcome for r in log.for_sla(7)] == ["accept",
                                                       "detected"]
        assert [r.action for r in log.for_subject("user1")] == \
            ["admission"]
        assert len(log.by_action("admission")) == 2

    def test_point_payload_rekeys_dimensions(self):
        payload = point_payload({Dimension.MEMORY_MB: 256.0,
                                 Dimension.CPU: 4.0})
        assert list(payload) == sorted(payload)
        assert payload[Dimension.CPU.value] == 4.0

    def test_candidates_are_jsonified(self):
        log = DecisionLog(now=lambda: 0.0)
        record = log.decide(
            "admission", "accept",
            candidates=[{"point": {Dimension.CPU: 4.0}, "rate": 1.5}],
            chosen={"point": {Dimension.CPU: 4.0}})
        assert record.candidates[0]["point"] == {Dimension.CPU.value: 4.0}
        assert record.chosen["point"] == {Dimension.CPU.value: 4.0}


class TestBrokerEmitSites:
    def test_accept_records_chosen_point_and_revenue(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        outcome = testbed.broker.request_service(_request())
        assert outcome.accepted
        accepts = [record for record in decisions.records
                   if record.action == "admission"
                   and record.outcome == "accept"]
        assert len(accepts) == 1
        record = accepts[0]
        assert record.sla_id == outcome.sla.sla_id
        assert record.chosen is not None
        assert record.chosen["revenue_rate"] == outcome.sla.price_rate
        assert record.candidates, "accept must list the offered levels"
        assert record.headroom["eff_g"] > 0.0

    def test_capacity_reject_names_the_constraint(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        outcome = testbed.broker.request_service(
            _request(client="greedy", cpu=20))
        assert not outcome.accepted
        rejects = [record for record in decisions.records
                   if record.outcome == "reject"]
        assert len(rejects) == 1
        assert rejects[0].constraint == "capacity"
        assert rejects[0].subject == "greedy"
        assert "insufficient resources" in rejects[0].reason

    def test_discovery_reject_names_the_constraint(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        request = _request(client="lost")
        outcome = testbed.broker.request_service(
            ServiceRequest(
                client="lost", service_name="no-such-service",
                service_class=request.service_class,
                specification=request.specification,
                start=0.0, end=100.0))
        assert not outcome.accepted
        assert decisions.records[-1].constraint == "discovery"

    def test_best_effort_grant_is_recorded(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        granted = testbed.broker.request_best_effort("be-user", 2.0)
        assert granted is True
        grants = decisions.by_action("best_effort")
        assert len(grants) == 1
        assert grants[0].outcome == "grant"
        assert grants[0].chosen["requested"] == 2.0

    def test_batched_records_are_stamped_with_spans(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        install_journal(testbed)
        outcomes = testbed.broker.request_services(
            [_request(), _request(client="user2")])
        assert all(outcome.accepted for outcome in outcomes)
        accepts = [record for record in decisions.records
                   if record.outcome == "accept"]
        assert len(accepts) == 2
        assert all(r.trace_id and r.span_id for r in accepts)
        # Mid-group-commit the stamp is the newest *durable* LSN: the
        # first batch has none yet, and a later batch sees the first
        # batch's flushed records.
        assert all(r.lsn == 0 for r in accepts)
        outcomes = testbed.broker.request_services(
            [_request(client="user3")])
        assert outcomes[0].accepted
        assert decisions.records[-1].lsn > 0

    def test_journal_installed_after_observability_still_stamps(self):
        testbed = build_testbed()
        decisions, _slo = install_observability(testbed)
        install_journal(testbed)  # after — journal_getter is late-bound
        outcome = testbed.broker.request_service(_request())
        assert outcome.accepted
        assert decisions.records[-1].lsn > 0
