"""Flight recorder acceptance: every verdict explained, byte-stable."""

from __future__ import annotations

import pytest

from repro.obs import FlightRecorder
from repro.workloads.atlas import DEFAULT_SEED
from repro.workloads.replay import replay_scenario

SCENARIO = "diurnal_day"


@pytest.fixture(scope="module")
def replayed():
    return replay_scenario(SCENARIO, seed=DEFAULT_SEED,
                           with_journal=True)


@pytest.fixture(scope="module")
def recorder(replayed):
    testbed = replayed.testbed
    return FlightRecorder(
        decisions=testbed.decisions,
        tracer=testbed.telemetry.tracer,
        journal=testbed.journal,
        slo=testbed.slo)


class TestCompleteness:
    def test_every_sla_class_request_has_a_terminal_verdict(
            self, replayed):
        report = replayed.report
        decisions = replayed.testbed.decisions
        admissions = decisions.by_action("admission")
        assert len(admissions) == (report["guaranteed_requests"]
                                   + report["controlled_requests"])
        accepts = [r for r in admissions if r.outcome == "accept"]
        assert len(accepts) == (report["guaranteed_accepted"]
                                + report["controlled_accepted"])

    def test_every_best_effort_request_has_a_verdict(self, replayed):
        decisions = replayed.testbed.decisions
        assert len(decisions.by_action("best_effort")) == \
            replayed.report["best_effort_requests"]

    def test_why_all_explains_every_admission_outcome(
            self, replayed, recorder):
        decisions = replayed.testbed.decisions
        text = recorder.why("all")
        terminal = [r for r in decisions.records
                    if r.action in ("admission", "best_effort",
                                    "activation")]
        assert text.count("== ") == len(terminal)
        for record in terminal:
            if record.outcome == "reject":
                assert record.constraint, (
                    f"reject without constraint: {record}")
        # Accepts cite the revenue of the chosen point; rejects name
        # the failing constraint.
        assert "revenue_rate=" in text
        assert "constraint: " in text

    def test_why_single_sla_filters_to_that_episode(
            self, replayed, recorder):
        decisions = replayed.testbed.decisions
        accept = [r for r in decisions.by_action("admission")
                  if r.outcome == "accept"][0]
        text = recorder.why(accept.sla_id)
        assert f"# why: sla-{accept.sla_id}" in text
        assert "admission accept" in text

    def test_unknown_subject_reports_empty(self, recorder):
        text = recorder.why("nobody-ever")
        assert "0 decision(s)" in text
        assert "(no decisions recorded)" in text


class TestStamps:
    def test_decisions_carry_span_and_lsn_stamps(self, replayed):
        decisions = replayed.testbed.decisions
        accepts = [r for r in decisions.by_action("admission")
                   if r.outcome == "accept"]
        assert accepts
        assert all(r.trace_id and r.span_id for r in accepts), \
            "accepts inside request_services must carry the span stamp"
        assert any(r.lsn > 0 for r in accepts), \
            "journaled replay must stamp durable LSNs"

    def test_timeline_joins_all_three_sources(self, replayed, recorder):
        decisions = replayed.testbed.decisions
        accept = [r for r in decisions.by_action("admission")
                  if r.outcome == "accept"][0]
        text = recorder.timeline(accept.sla_id)
        assert f"# timeline: sla-{accept.sla_id}" in text
        assert "journal  lsn=" in text
        assert "decision admission accept" in text
        assert "span     " in text


class TestSloReport:
    def test_report_carries_slo_and_rejection_sections(self, replayed):
        report = replayed.report
        assert report["slo"] is not None
        classes = report["slo"]["classes"]
        assert "Guaranteed" in classes
        assert "burn_rate" in classes["Guaranteed"]
        assert isinstance(report["rejection_reasons"], list)
        for label, count in report["rejection_reasons"]:
            assert ": " in label and count >= 1

    def test_slo_report_renders_budgets_and_alerts(self, recorder,
                                                   replayed):
        text = recorder.slo_report(replayed.testbed.sim.now)
        assert text.startswith("# slo")
        assert "class Guaranteed:" in text
        assert "budget: 0.001" in text
        assert "alerts: " in text


class TestDeterminism:
    def test_double_replay_is_byte_identical(self, replayed, recorder):
        again = replay_scenario(SCENARIO, seed=DEFAULT_SEED,
                                with_journal=True)
        testbed = again.testbed
        recorder_b = FlightRecorder(
            decisions=testbed.decisions,
            tracer=testbed.telemetry.tracer,
            journal=testbed.journal,
            slo=testbed.slo)
        assert recorder.why("all") == recorder_b.why("all")
        assert replayed.report_json() == again.report_json()
