"""SLO engine: interval math, burn rates, alert transitions."""

from __future__ import annotations

from repro.obs import DEFAULT_SLOS, SloEngine, SloSpec
from repro.telemetry.events import EventStream


class _Clock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _engine(clock, **kwargs) -> SloEngine:
    return SloEngine(now=clock, **kwargs)


class TestSpecs:
    def test_budget_is_the_availability_complement(self):
        spec = SloSpec(service_class="Guaranteed", availability=0.999)
        assert abs(spec.budget - 0.001) < 1e-12

    def test_defaults_cover_both_monitored_classes(self):
        classes = {spec.service_class for spec in DEFAULT_SLOS}
        assert classes == {"Guaranteed", "Controlled-load"}


class TestIntervalMath:
    def test_availability_from_violation_intervals(self):
        clock = _Clock()
        engine = _engine(clock)
        engine.session_started(1, "Guaranteed", 0.0)
        engine.on_violation(1, 10.0)
        engine.on_restoration(1, 20.0)
        clock.now = 30.0
        engine.session_ended(1, 30.0)
        entry = engine.snapshot(30.0)["Guaranteed"]
        assert entry["sessions"] == 1
        assert entry["active_time"] == 30.0
        assert entry["bad_time"] == 10.0
        assert abs(entry["availability"] - 2.0 / 3.0) < 1e-9

    def test_open_violation_accrues_to_now(self):
        clock = _Clock()
        engine = _engine(clock)
        engine.session_started(1, "Guaranteed", 0.0)
        engine.on_violation(1, 5.0)
        clock.now = 15.0
        entry = engine.snapshot()["Guaranteed"]
        assert entry["bad_time"] == 10.0

    def test_session_end_closes_open_violation(self):
        clock = _Clock()
        engine = _engine(clock)
        engine.session_started(1, "Controlled-load", 0.0)
        engine.on_violation(1, 2.0)
        engine.session_ended(1, 8.0)
        clock.now = 100.0
        entry = engine.snapshot()["Controlled-load"]
        assert entry["active_time"] == 8.0
        assert entry["bad_time"] == 6.0

    def test_duplicate_violation_signals_are_idempotent(self):
        clock = _Clock()
        engine = _engine(clock)
        engine.session_started(1, "Guaranteed", 0.0)
        engine.on_violation(1, 5.0)
        engine.on_violation(1, 7.0)  # still in the same bad interval
        engine.on_restoration(1, 10.0)
        engine.on_restoration(1, 12.0)  # no open interval: no-op
        clock.now = 20.0
        assert engine.snapshot()["Guaranteed"]["bad_time"] == 5.0

    def test_unknown_sla_signals_are_ignored(self):
        engine = _engine(_Clock())
        engine.on_violation(99, 1.0)
        engine.session_ended(99, 2.0)
        assert engine.snapshot(5.0) == {}


class TestBurnRate:
    SPEC = SloSpec(service_class="Guaranteed", availability=0.9,
                   windows=(10.0,), burn_threshold=2.0)

    def test_burn_rate_is_window_clipped(self):
        clock = _Clock()
        engine = _engine(clock, specs=(self.SPEC,))
        engine.session_started(1, "Guaranteed", 0.0)
        # Violating over [90, 95]; window [90, 100] sees 5 bad of 10
        # active -> bad fraction 0.5, budget 0.1 -> burn 5.0.
        engine.on_violation(1, 90.0)
        engine.on_restoration(1, 95.0)
        clock.now = 100.0
        burn = engine.snapshot()["Guaranteed"]["burn_rate"]["10s"]
        assert abs(burn - 5.0) < 1e-9

    def test_quiet_window_burns_zero(self):
        clock = _Clock()
        engine = _engine(clock, specs=(self.SPEC,))
        engine.session_started(1, "Guaranteed", 0.0)
        engine.on_violation(1, 10.0)
        engine.on_restoration(1, 20.0)
        clock.now = 100.0  # violation long out of the 10s window
        burn = engine.snapshot()["Guaranteed"]["burn_rate"]["10s"]
        assert burn == 0.0


class TestAlerts:
    SPEC = SloSpec(service_class="Guaranteed", availability=0.9,
                   windows=(10.0,), burn_threshold=2.0)

    def _burning_engine(self, clock, stream=None):
        engine = _engine(clock, specs=(self.SPEC,), stream=stream)
        engine.session_started(1, "Guaranteed", 0.0)
        engine.on_violation(1, 90.0)  # open-ended: burn 10x budget
        return engine

    def test_alert_fires_once_per_transition(self):
        clock = _Clock()
        stream = EventStream()
        engine = self._burning_engine(clock, stream)
        clock.now = 100.0
        first = engine.evaluate()
        second = engine.evaluate()  # sustained burn: no re-alert
        assert len(first) == 1 and second == []
        assert engine.alerts == first
        alert = first[0]
        assert alert.service_class == "Guaranteed"
        assert alert.window == 10.0
        assert alert.burn_rate >= alert.threshold
        assert [event.category for event in stream.events] == ["slo"]

    def test_alert_refires_after_recovery(self):
        clock = _Clock()
        engine = self._burning_engine(clock)
        clock.now = 100.0
        assert len(engine.evaluate()) == 1
        engine.on_restoration(1, 100.0)
        clock.now = 150.0  # bad interval left the window: recovered
        assert engine.evaluate() == []
        engine.on_violation(1, 150.0)
        clock.now = 160.0
        assert len(engine.evaluate()) == 1
        assert len(engine.alerts) == 2

    def test_class_without_spec_never_alerts(self):
        clock = _Clock()
        engine = _engine(clock, specs=(self.SPEC,))
        engine.session_started(1, "Best-effort", 0.0)
        engine.on_violation(1, 0.0)
        clock.now = 10.0
        assert engine.evaluate() == []
        entry = engine.snapshot()["Best-effort"]
        assert "burn_rate" not in entry and "objective" not in entry


class TestOccupancy:
    def test_snapshot_folds_in_the_occupancy_context(self):
        engine = _engine(_Clock(),
                         occupancy=lambda: {"utilization_mean": 0.75})
        snapshot = engine.snapshot(0.0)
        assert snapshot["_occupancy"] == {"utilization_mean": 0.75}
