"""The Section 5.6 worked example driven over a lossy control plane.

The paper's timeline (a 10-node compute sub-SLA, a second 4-node
guaranteed user, a 3-node failure at ``t3`` repaired at ``t4``) is
replayed as a *live* gateway session instead of a pure partition
recast: SLAs are negotiated over XML envelopes under fault injection,
the node failure is injected mid-run, and the paper's anchors must
survive the chaos — guarantees honored through the failure, capacity
conserved at every instant, everything released at the end.
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.sla.document import SlaStatus

from .conftest import (
    assert_all_invariants,
    assert_capacity_conserved,
    assert_no_double_booking,
    guaranteed_request,
    make_chaos_testbed,
)

#: Sim times mirroring the t1..t5 instants.
T_FAIL, T_REPAIR, T_END = 30.0, 60.0, 100.0


def drive_example56(testbed):
    """Establish SLA3 (10 nodes) and the 4-node co-tenant, inject the
    3-node failure/repair, and sample invariants at each instant.
    Returns the established SLA ids (sla3, other)."""
    sim = testbed.sim
    sim.schedule_at(T_FAIL, lambda: testbed.machine.fail_nodes(3),
                    label="inject:t3-failure")
    sim.schedule_at(T_REPAIR, lambda: testbed.machine.repair_nodes(),
                    label="inject:t4-repair")

    checkpoints = []

    def sample(instant):
        def check():
            assert_capacity_conserved(testbed)
            assert_no_double_booking(testbed)
            checkpoints.append((instant, sim.now))
        return check

    for instant, time in (("t2", 20.0), ("t3", 45.0), ("t4", 75.0),
                          ("t5", 110.0)):
        sim.schedule_at(time, sample(instant), label=f"sample:{instant}")

    ids = []
    for client_name, cpu in (("sla3-client", 10), ("other-client", 4)):
        client = testbed.client(client_name)
        try:
            negotiation_id, offers, _reason = client.request_service(
                guaranteed_request(client=client_name, cpu=cpu,
                                   end=T_END, with_network=False))
            if negotiation_id is None or not offers:
                ids.append(None)
                continue
            sla, _failure = client.accept_offer(negotiation_id)
            ids.append(sla.sla_id if sla is not None else None)
        except CircuitOpenError:
            ids.append(None)
    sim.run(until=130.0)
    assert len(checkpoints) == 4, "an invariant sample never fired"
    return ids


@pytest.mark.parametrize("chaos_seed", [2, 13, 37])
def test_example56_anchors_survive_chaos(chaos_seed):
    testbed = make_chaos_testbed(chaos_seed, drop=0.1, duplicate=0.1,
                                 delay=0.1, error=0.05, reorder=0.05)
    sla3_id, other_id = drive_example56(testbed)
    assert_all_invariants(testbed)
    # Both sessions fit Cg=15 (10 + 4); whichever established must
    # have completed its validity period despite the t3 failure.
    for sla_id in (sla3_id, other_id):
        if sla_id is not None:
            assert testbed.repository.get(sla_id).status \
                is SlaStatus.COMPLETED
    # t5: all capacity released.
    assert testbed.partition.committed_total() == pytest.approx(0.0)
    assert len(testbed.compute_rm.slot_table) == 0
    assert testbed.partition.failed == pytest.approx(0.0)


def test_example56_chaos_is_replayable():
    """Same chaos seed → same establishment outcome and fault counts."""
    runs = []
    for _ in range(2):
        testbed = make_chaos_testbed(13, drop=0.1, duplicate=0.1,
                                     delay=0.1, error=0.05, reorder=0.05)
        ids = drive_example56(testbed)
        runs.append((tuple(sla_id is not None for sla_id in ids),
                     testbed.faults.stats.as_dict(),
                     len(testbed.bus.dead_letters)))
    assert runs[0] == runs[1]


def test_example56_perfect_transport_matches_direct_flow():
    """With the control plane attached but no faults, the bus adds no
    behaviour: both sessions establish and complete, guarantees are
    never shorted."""
    testbed = make_chaos_testbed(0, drop=0.0)  # plan exists, all-zero
    sla3_id, other_id = drive_example56(testbed)
    assert sla3_id is not None and other_id is not None
    assert testbed.faults.stats.dropped == 0
    for sla_id in (sla3_id, other_id):
        assert testbed.repository.get(sla_id).status is SlaStatus.COMPLETED
