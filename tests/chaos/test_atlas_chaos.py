"""Atlas-under-chaos: every scenario family survives a faulty bus.

One scenario per family is replayed with PR-3 fault injection armed on
the control plane, across a drop/delay sweep. Whatever the transport
does — dropped admissions, delayed replies — the run must end with:

* the PR-3 capacity invariants intact (conservation, no
  double-booking, no wedged protocol state);
* no stranded guaranteed SLA: every guaranteed session settled, and
  any still-active one served its full entitlement;
* the atlas's own replay invariants (consent-confined degradation,
  nobody below floor, no terminal shortfall).

Scenarios are time-compressed 2x so the sweep stays inside the tier-1
budget; the fault rates, not the traffic volume, are what this suite
varies.
"""

import pytest

from repro.qos.classes import ServiceClass
from repro.workloads import (check_invariants, replay_scenario,
                             scenarios_by_family)
from repro.workloads.scenarios import FAMILIES

from .conftest import (SETTLED, assert_capacity_conserved,
                       assert_no_double_booking, assert_protocol_settled)

#: The (drop, delay) fault sweep each family is replayed under.
FAULT_SWEEP = ((0.05, 0.0), (0.15, 0.25))


def family_scenario(family: str):
    """The family's first registered scenario, time-compressed 2x."""
    spec = scenarios_by_family(family)[0]
    return spec.scaled(time_factor=0.5, load_factor=1.0)


def assert_no_stranded_guaranteed_sla(testbed) -> None:
    """Every guaranteed SLA settled; active ones fully served."""
    for sla in testbed.repository.all():
        if sla.service_class is not ServiceClass.GUARANTEED:
            continue
        assert sla.status in SETTLED, \
            f"guaranteed SLA {sla.sla_id} stranded in {sla.status}"
        holding = testbed.broker.partition_holding(sla.sla_id)
        if holding is not None:
            assert holding.shortfall <= 1e-9, \
                f"guaranteed SLA {sla.sla_id} ends short by " \
                f"{holding.shortfall}"


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("drop,delay", FAULT_SWEEP)
def test_family_survives_chaos(family, drop, delay):
    result = replay_scenario(family_scenario(family), seed=23,
                             chaos_seed=101, drop=drop, delay=delay)
    testbed = result.testbed
    assert_capacity_conserved(testbed)
    assert_no_double_booking(testbed)
    assert_protocol_settled(testbed)
    assert_no_stranded_guaranteed_sla(testbed)
    assert check_invariants(result) == [], \
        f"{family} broke replay invariants under chaos " \
        f"(drop={drop}, delay={delay})"


def test_chaos_runs_are_seed_deterministic():
    """Same workload seed + same chaos seed → byte-identical report."""
    spec = family_scenario("flash_crowd")
    first = replay_scenario(spec, seed=23, chaos_seed=7,
                            drop=0.1, delay=0.1).report_json()
    second = replay_scenario(spec, seed=23, chaos_seed=7,
                             drop=0.1, delay=0.1).report_json()
    assert first == second
