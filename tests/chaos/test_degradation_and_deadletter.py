"""Graceful degradation of the control plane's weak dependencies.

Three failure stories the chaos layer must turn into degraded service
rather than outages:

* the UDDIe registry becomes unreachable — discovery serves the last
  good answer with an explicit ``degraded`` marker (and fails loudly
  only when it has never seen one);
* a degradation notice is lost in flight — it lands in the bus
  dead-letter log and the verifier's periodic polling re-detects the
  condition, so adaptation is delayed, never deadlocked;
* an asynchronous handler raises — the scheduled-delivery path turns
  the error into a dead letter instead of unwinding ``Simulator.run``
  (regression: this used to kill every event after the failure).
"""

from __future__ import annotations

import pytest

from repro.core.testbed import attach_control_plane, build_testbed
from repro.errors import MonitoringError, RegistryError
from repro.registry.query import ServiceQuery
from repro.sim.engine import Simulator
from repro.sim.random import RandomSource
from repro.xmlmsg.bus import MessageBus
from repro.xmlmsg.document import element
from repro.xmlmsg.envelope import Envelope
from repro.xmlmsg.faults import FaultPlan, FaultRule

from .conftest import guaranteed_request


def targeted_plan(seed: int, **rule_fields) -> FaultPlan:
    """A plan faulting only the messages matching one rule; everything
    else is exempt (no rule matches → clean, no RNG draw)."""
    return FaultPlan(RandomSource(seed).stream("faults"),
                     [FaultRule(**rule_fields)])


class TestDegradedDiscovery:
    def test_stale_cache_serves_when_registry_unreachable(self):
        testbed = attach_control_plane(build_testbed())
        broker = testbed.broker
        first = broker.request_service(
            guaranteed_request(client="user1", cpu=4, with_network=False))
        assert first.accepted
        # Registry goes dark: every message to it is lost.
        testbed.bus.install_faults(
            targeted_plan(1, recipient="uddie", drop=1.0))
        second = broker.request_service(
            guaranteed_request(client="user2", cpu=4, with_network=False))
        # The request still succeeds — on stale registry data, and the
        # degradation is observable everywhere it should be.
        assert second.accepted
        assert broker.metrics.counter_value(
            "repro_discovery_degraded_total") == 1
        assert broker.discovery.stale_hits == 1
        degraded = testbed.trace.filter(category="discovery")
        assert degraded and "degraded" in degraded[0].message

    def test_no_cache_fails_loudly(self):
        """Without a prior good answer there is nothing to degrade to."""
        testbed = attach_control_plane(build_testbed())
        testbed.bus.install_faults(
            targeted_plan(2, recipient="uddie", drop=1.0))
        with pytest.raises(RegistryError):
            testbed.broker.discovery.find(
                ServiceQuery(name_pattern="simulation-service"))

    def test_cache_is_per_query(self):
        """A stale answer is only served for the *same* query."""
        testbed = attach_control_plane(build_testbed())
        discovery = testbed.broker.discovery
        cached = discovery.find(ServiceQuery(
            name_pattern="simulation-service"))
        assert cached.records and not cached.degraded
        testbed.bus.install_faults(
            targeted_plan(3, recipient="uddie", drop=1.0))
        stale = discovery.find(ServiceQuery(
            name_pattern="simulation-service"))
        assert stale.degraded
        assert [r.name for r in stale.records] == \
            [r.name for r in cached.records]
        with pytest.raises(RegistryError):
            discovery.find(ServiceQuery(name_pattern="visualization-*"))


class TestNotificationLoss:
    def test_lost_notice_dead_letters_and_polling_redetects(self):
        testbed = attach_control_plane(build_testbed())
        broker = testbed.broker
        received = []
        broker.hub.subscribe(received.append)
        broker.verifier.start_polling(5.0)
        outcome = broker.request_service(
            guaranteed_request(client="user1", cpu=15, end=200.0,
                               with_network=False))
        assert outcome.accepted
        # Every degradation notice is lost in flight.
        testbed.bus.install_faults(
            targeted_plan(4, action="degradation_notice", drop=1.0))
        testbed.sim.schedule_at(10.0,
                               lambda: testbed.machine.fail_nodes(15),
                               label="inject:outage")
        testbed.sim.run(until=30.0)
        # The shortfall was published and lost — visibly.
        lost = [letter for letter in testbed.bus.dead_letters
                if letter.action == "degradation_notice"]
        assert lost and lost[0].reason == "dropped"
        assert received == []  # no subscriber ever saw a notice
        # But detection never stopped: polling kept finding the
        # violation and re-publishing (source-side log grows).
        assert broker.verifier.tests_run >= 3
        assert len(broker.hub.log()) >= 2
        # Transport heals -> the very next poll's notice gets through.
        testbed.bus.install_faults(None)
        testbed.sim.run(until=40.0)
        assert received
        assert received[0].sla_id == outcome.sla.sla_id


class TestDeadLetterRegression:
    def test_failing_async_handler_does_not_unwind_the_sim(self):
        """A scheduled delivery whose handler raises must become a
        dead letter; events after it must still run."""
        sim = Simulator()
        bus = MessageBus(sim)

        def explode(envelope):
            raise MonitoringError("sensor exploded")

        bus.endpoint("fragile").on("poke", explode)
        bus.send_async(Envelope(sender="test", recipient="fragile",
                                action="poke", body=element("Poke")),
                       latency=1.0)
        later = []
        sim.schedule_at(5.0, lambda: later.append(sim.now),
                        label="after-the-crash")
        sim.run(until=10.0)
        assert later == [5.0]
        assert len(bus.dead_letters) == 1
        letter = bus.dead_letters[0]
        assert letter.reason == "handler-error"
        assert "sensor exploded" in letter.detail
        assert letter.action == "poke"

    def test_unknown_async_recipient_is_dead_lettered(self):
        sim = Simulator()
        bus = MessageBus(sim)
        bus.send_async(Envelope(sender="test", recipient="nobody",
                                action="poke", body=element("Poke")))
        sim.run(until=1.0)
        assert [letter.reason for letter in bus.dead_letters] == \
            ["handler-error"]
