"""Byte-level determinism of the chaos CLI across fresh processes.

The in-process tests mask process-global counters; these tests prove
the stronger property the issue demands: two separate interpreter
invocations of ``python -m repro quickstart --chaos SEED`` produce
*byte-identical* output, and the faults-off quickstart is unaffected
by the chaos layer's existence.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def run_cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO, env={"PYTHONPATH": str(SRC), "PATH": ""},
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_chaos_quickstart_is_byte_identical_across_processes():
    first = run_cli("quickstart", "--chaos", "7")
    second = run_cli("quickstart", "--chaos", "7")
    assert first == second
    # The report carries the chaos evidence.
    assert "chaos accounting" in first
    assert "capacity_conserved (Cg+Ca+Cb == C): True" in first


def test_different_chaos_seeds_change_the_schedule():
    assert run_cli("quickstart", "--chaos", "7") != \
        run_cli("quickstart", "--chaos", "42")


def test_faults_off_quickstart_never_mentions_chaos():
    output = run_cli("quickstart")
    assert "chaos" not in output.lower()
    assert "dead letter" not in output.lower()
