"""Span causality survives the lossy control plane.

The envelope's TraceID/SpanID headers must stitch every leg of an
admission episode — including retries, duplicates and dead legs — into
a single connected span tree per client call, and a fixed pair of
seeds must render byte-for-byte the same trees.
"""

from __future__ import annotations

from repro.core.testbed import install_telemetry
from repro.errors import CircuitOpenError

from .conftest import (assert_all_invariants, guaranteed_request,
                       make_chaos_testbed, normalize_trace)

#: Fault mix aggressive enough to force retries and duplicates but
#: below the circuit-breaker cliff for the fixed seed below.
FAULTS = dict(drop=0.15, duplicate=0.1, delay=0.1, error=0.05)

SEED = 11


def run_episode(testbed):
    """One full admission episode over the faulty transport."""
    telemetry = install_telemetry(testbed)
    client = testbed.client("user1")
    try:
        negotiation_id, _offers, _reason = client.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        if negotiation_id is not None:
            client.accept_offer(negotiation_id)
    except CircuitOpenError:
        pass
    testbed.sim.run(until=50.0)
    return telemetry


class TestConnectedness:
    def test_each_episode_is_one_connected_tree(self):
        testbed = make_chaos_testbed(SEED, **FAULTS)
        telemetry = run_episode(testbed)
        spans = telemetry.tracer.spans
        assert spans, "chaos run produced no spans"
        by_id = {span.span_id: span for span in spans}
        roots_by_trace = {}
        for span in spans:
            parent = by_id.get(span.parent_id)
            if parent is None:
                # A root: either a genuine episode start or a handler
                # whose request leg was dropped before recording —
                # never a dangling reference into another trace.
                roots_by_trace.setdefault(span.trace_id, []).append(span)
            else:
                assert parent.trace_id == span.trace_id, \
                    f"span {span.span_id} crosses traces"
        # The client-side call spans root their episodes: one root per
        # client-visible operation, not one per retry.
        client_traces = {span.trace_id for span in spans
                         if span.name.startswith("call:")}
        for trace_id in client_traces:
            assert len(roots_by_trace.get(trace_id, [])) == 1, \
                f"trace {trace_id} fractured into multiple roots"
        assert_all_invariants(testbed)

    def test_retries_are_sibling_legs_under_one_call(self):
        testbed = make_chaos_testbed(SEED, **FAULTS)
        telemetry = run_episode(testbed)
        spans = telemetry.tracer.spans
        calls = {span.span_id: span for span in spans
                 if span.name.startswith("call:")}
        retried = [span for span in calls.values()
                   if span.attributes.get("attempts", 1) > 1]
        assert retried, "seed produced no retries; pick another seed"
        for call in retried:
            legs = [span for span in spans
                    if span.parent_id == call.span_id
                    and span.name.startswith("request:")]
            assert len(legs) == call.attributes["attempts"]
            assert {leg.trace_id for leg in legs} == {call.trace_id}
            # The failed legs stay visible with their failure mode.
            assert any(leg.status.startswith("error:") or leg.end is None
                       for leg in legs[:-1]) or len(legs) == 1

    def test_handler_spans_carry_the_remote_parent(self):
        testbed = make_chaos_testbed(SEED, **FAULTS)
        telemetry = run_episode(testbed)
        spans = telemetry.tracer.spans
        by_id = {span.span_id: span for span in spans}
        handled = [span for span in spans
                   if span.name.startswith("handle:")
                   and span.parent_id in by_id]
        assert handled, "no delivered handler spans recorded"
        for span in handled:
            parent = by_id[span.parent_id]
            assert parent.name.startswith(("request:", "call:")) or \
                parent.name.startswith("handle:") or \
                parent.component != span.component


class TestDeterminism:
    def test_same_seeds_render_identical_span_trees(self):
        def render() -> str:
            testbed = make_chaos_testbed(SEED, **FAULTS)
            telemetry = run_episode(testbed)
            return normalize_trace(telemetry.tracer.render_tree())

        first, second = render(), render()
        assert first == second

    def test_different_chaos_seeds_differ(self):
        # Sanity: the normalization is not erasing the signal.
        def render(chaos_seed: int) -> str:
            testbed = make_chaos_testbed(chaos_seed, **FAULTS)
            telemetry = run_episode(testbed)
            return normalize_trace(telemetry.tracer.render_tree())

        outputs = {render(chaos_seed) for chaos_seed in (11, 12, 13)}
        assert len(outputs) > 1
