"""The Figure 2 sequence under seeded fault injection.

Each test replays the request → offer → accept → verify → complete
sequence over a bus whose transport drops, duplicates, delays,
reorders or error-replies messages — then asserts the safety
invariants (capacity conservation, no double-booking, no wedged
protocol state) and, where the plan is survivable, liveness (the
guaranteed SLA completes).
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.sla.document import SlaStatus

from .conftest import (
    assert_all_invariants,
    assert_capacity_conserved,
    assert_no_double_booking,
    guaranteed_request,
    make_chaos_testbed,
    normalize_trace,
)

#: One plan per fault family, plus an everything-at-once plan.
PLANS = {
    "drop": {"drop": 0.15},
    "duplicate": {"duplicate": 0.3},
    "delay": {"delay": 0.4},
    "reorder": {"reorder": 0.3},
    "error": {"error": 0.15},
    "mixed": {"drop": 0.1, "duplicate": 0.1, "delay": 0.1,
              "error": 0.05, "reorder": 0.1},
}


def drive_session(testbed, *, client_name: str = "client1",
                  cpu: int = 10):
    """Negotiate and accept one Figure 2 session (no final sim run);
    returns the SLA id, or None when the transport defeated the
    client (retries advance the clock a little either way)."""
    client = testbed.client(client_name)
    try:
        negotiation_id, offers, _reason = client.request_service(
            guaranteed_request(client=client_name, cpu=cpu))
        if negotiation_id is not None and offers:
            sla, _failure = client.accept_offer(negotiation_id)
            if sla is not None:
                client.verify_sla(sla.sla_id)
                return sla.sla_id
    except CircuitOpenError:
        # Retries exhausted: the session is abandoned client-side;
        # invariants must still hold server-side.
        pass
    return None


def run_session(testbed, *, client_name: str = "client1", cpu: int = 10):
    """Drive one full session and run the world to completion."""
    sla_id = drive_session(testbed, client_name=client_name, cpu=cpu)
    testbed.sim.run(until=150.0)
    return sla_id


class TestFaultFamilies:
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    @pytest.mark.parametrize("chaos_seed", [3, 11, 29])
    def test_invariants_hold_under_every_plan(self, plan_name, chaos_seed):
        testbed = make_chaos_testbed(chaos_seed, **PLANS[plan_name])
        sla_id = run_session(testbed)
        assert_all_invariants(testbed)
        if sla_id is not None:
            assert testbed.repository.get(sla_id).status \
                is SlaStatus.COMPLETED

    @pytest.mark.parametrize("chaos_seed", [5, 17])
    def test_duplicates_never_double_reserve(self, chaos_seed):
        """A duplicated accept_offer must not book capacity twice."""
        testbed = make_chaos_testbed(chaos_seed, duplicate=0.5)
        sla_id = run_session(testbed, cpu=10)
        assert sla_id is not None  # duplication alone never loses data
        # Exactly one holding of exactly 10 CPUs was admitted.
        testbed.sim.run(until=150.0)
        assert_no_double_booking(testbed)
        slas = [sla for sla in testbed.repository.all()
                if sla.client == "client1"]
        assert len(slas) == 1
        # Partition fully released after the session completed.
        assert testbed.partition.committed_total() == pytest.approx(0.0)
        assert len(testbed.compute_rm.slot_table) == 0

    def test_two_clients_under_mixed_chaos(self):
        testbed = make_chaos_testbed(23, **PLANS["mixed"])
        first = drive_session(testbed, client_name="client1", cpu=8)
        second = drive_session(testbed, client_name="client2", cpu=5)
        testbed.sim.run(until=150.0)
        assert_all_invariants(testbed)
        for sla_id in (first, second):
            if sla_id is not None:
                assert testbed.repository.get(sla_id).status \
                    in {SlaStatus.COMPLETED, SlaStatus.ACTIVE,
                        SlaStatus.TERMINATED}


class TestDeterminism:
    @pytest.mark.parametrize("plan_name", ["drop", "mixed"])
    def test_same_seed_same_normalized_trace(self, plan_name):
        """Two in-process runs at one seed agree event-for-event once
        process-global counters (msg ids, GARA handles) are masked;
        the CLI test proves byte-identity across fresh processes."""
        outcomes = []
        for _ in range(2):
            testbed = make_chaos_testbed(41, **PLANS[plan_name])
            sla_id = run_session(testbed)
            outcomes.append((
                sla_id is not None,
                testbed.faults.stats.as_dict(),
                len(testbed.bus.dead_letters),
                normalize_trace(testbed.trace.render()),
            ))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_diverge(self):
        """Sanity: the chaos seed actually matters (a constant fault
        schedule would trivially pass the determinism test)."""
        stats = []
        for chaos_seed in (1, 2, 3, 4, 5):
            testbed = make_chaos_testbed(chaos_seed, **PLANS["mixed"])
            run_session(testbed)
            stats.append(tuple(sorted(
                testbed.faults.stats.as_dict().items())))
        assert len(set(stats)) > 1


class TestDropSweep:
    @pytest.mark.parametrize("drop", [0.05, 0.1, 0.15, 0.2])
    def test_guaranteed_slas_survive_drop_sweep(self, drop):
        """Acceptance criterion: up to 20% drop probability, every
        established guaranteed SLA completes with zero conservation
        or double-booking violations."""
        completed = 0
        established = 0
        for chaos_seed in (7, 19, 31):
            testbed = make_chaos_testbed(chaos_seed, drop=drop)
            sla_id = run_session(testbed)
            assert_capacity_conserved(testbed)
            assert_no_double_booking(testbed)
            if sla_id is not None:
                established += 1
                assert testbed.repository.get(sla_id).status \
                    is SlaStatus.COMPLETED
                completed += 1
        assert completed == established
        # With 4 attempts per call a 20% drop rate should essentially
        # never defeat the whole ladder at these seeds.
        assert established >= 2
