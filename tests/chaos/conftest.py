"""Shared helpers for the chaos suite.

Every chaos test drives a real control-plane session over the message
bus with seeded fault injection, then asserts the *invariants* that
must hold no matter what the transport did:

* capacity conservation — the partition's effective pool sizes always
  sum to the surviving capacity (``Cg + Ca + Cb == C - failed``);
* no double-booking — committed guaranteed capacity never exceeds
  ``Cg``, and the slot table is never overcommitted at any event point;
* no wedged protocol state — after a final sweep the gateway holds no
  pending negotiation, and every SLA that was established reached a
  terminal-or-active status.
"""

from __future__ import annotations

import re

import pytest

from repro.core.testbed import Testbed, attach_control_plane, build_testbed, \
    install_chaos
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, SlaStatus
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound

#: Statuses an established SLA may legitimately end a run in.
SETTLED = {SlaStatus.ACTIVE, SlaStatus.COMPLETED, SlaStatus.TERMINATED,
           SlaStatus.EXPIRED}

#: Volatile identifiers that differ between in-process runs because
#: they come from module-global counters (message ids, GARA handles,
#: negotiation ids, job/flow ids). Normalized away before comparing
#: two same-seed runs executed in one interpreter; a fresh process
#: (the CLI determinism test) needs no normalization at all.
_VOLATILE = [
    (re.compile(r"\bmsg-\d+\b"), "msg-N"),
    (re.compile(r"\bgara-\d+\b"), "gara-N"),
    (re.compile(r"\bnegotiation \d+\b"), "negotiation N"),
    (re.compile(r"\bpid \d+\b"), "pid N"),
    (re.compile(r"\bpid=\d+\b"), "pid=N"),
    (re.compile(r"\bjob \d+\b"), "job N"),
    (re.compile(r"\bflow \d+\b"), "flow N"),
]


def normalize_trace(text: str) -> str:
    """Strip process-global counter values from a rendered trace."""
    for pattern, replacement in _VOLATILE:
        text = pattern.sub(replacement, text)
    return text


def guaranteed_request(client: str = "client1", cpu: int = 10,
                       end: float = 100.0,
                       with_network: bool = True) -> ServiceRequest:
    """The Figure 2 guaranteed request the suite replays."""
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 2048))
    network = None
    if with_network:
        network = NetworkDemand("135.200.50.101", "192.200.168.33",
                                100.0, parse_bound("LessThan 10%"))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=end, network=network)


def make_chaos_testbed(chaos_seed: int, *, drop: float = 0.0,
                       duplicate: float = 0.0, delay: float = 0.0,
                       error: float = 0.0, reorder: float = 0.0,
                       seed: int = 0) -> Testbed:
    """A testbed with the control plane on the bus and faults armed."""
    testbed = build_testbed(seed=seed)
    install_chaos(testbed, chaos_seed, drop=drop, duplicate=duplicate,
                  delay=delay, error=error, reorder=reorder)
    return testbed


def assert_capacity_conserved(testbed: Testbed) -> None:
    """``Cg + Ca + Cb`` (effective) must equal surviving capacity."""
    partition = testbed.partition
    effective_g, effective_a, effective_b = partition.effective_sizes()
    assert effective_g + effective_a + effective_b == pytest.approx(
        partition.total - partition.failed), \
        "capacity partition leaked or invented capacity"


def assert_no_double_booking(testbed: Testbed) -> None:
    """Committed guarantees stay within Cg; slot table never
    overcommits at any of its event points."""
    partition = testbed.partition
    assert partition.committed_total() <= partition.cg + 1e-9, \
        "guaranteed commitments exceed Cg (double-booking)"
    table = testbed.compute_rm.slot_table
    for entry in table.entries():
        probes = [entry.start]
        if entry.end != float("inf"):
            probes.append((entry.start + entry.end) / 2)
        for probe in probes:
            over = table.overcommitment_at(probe)
            assert over.is_zero(), \
                f"slot table overcommitted at t={probe}: {over}"


def assert_protocol_settled(testbed: Testbed) -> None:
    """No wedged negotiation; every established SLA is settled."""
    assert testbed.gateway is not None
    testbed.gateway.sweep_stale(0.0)
    assert testbed.gateway.pending_negotiations == ()
    for sla in testbed.repository.all():
        assert sla.status in SETTLED, \
            f"SLA {sla.sla_id} wedged in {sla.status}"


def assert_all_invariants(testbed: Testbed) -> None:
    """The full post-run invariant bundle."""
    assert_capacity_conserved(testbed)
    assert_no_double_booking(testbed)
    assert_protocol_settled(testbed)


@pytest.fixture
def control_plane_testbed() -> Testbed:
    """A bus-wired testbed with NO faults (perfect transport)."""
    return attach_control_plane(build_testbed())
