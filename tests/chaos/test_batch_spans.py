"""The ``batch_admission`` span roots every per-request tree.

``request_services`` defers rebalances and group-commits the journal,
so the per-request spans (negotiate / establish / activate-session) no
longer stand alone: they must hang off one enclosing
``batch_admission`` span per call, keeping each batch one connected
trace — with and without fault injection armed on the bus.
"""

from __future__ import annotations

from repro.core.testbed import build_testbed, install_chaos, \
    install_telemetry

from .conftest import guaranteed_request


def _admit_batch(testbed, count: int):
    telemetry = install_telemetry(testbed)
    requests = [guaranteed_request(client=f"user{i}", cpu=2,
                                   with_network=False)
                for i in range(count)]
    outcomes = testbed.broker.request_services(requests)
    return telemetry, outcomes


def _assert_one_connected_batch_trace(spans, batch_size: int):
    roots = [span for span in spans if span.name == "batch_admission"]
    assert len(roots) == 1, "one batch call must open one batch span"
    root = roots[0]
    assert root.attributes["batch_size"] == batch_size
    by_id = {span.span_id: span for span in spans}
    in_trace = [span for span in spans
                if span.trace_id == root.trace_id]
    # Every per-request admission span reaches the batch root.
    names = {span.name for span in in_trace}
    assert {"negotiate", "establish"} <= names
    for span in in_trace:
        node = span
        hops = 0
        while node.span_id != root.span_id:
            parent = by_id.get(node.parent_id)
            assert parent is not None, (
                f"span {node.name}/{node.span_id} is disconnected "
                f"from the batch_admission root")
            assert parent.trace_id == node.trace_id
            node = parent
            hops += 1
            assert hops < 100, "span parent chain did not terminate"


class TestBatchSpanEnclosure:
    def test_batch_forms_one_connected_tree(self):
        testbed = build_testbed()
        telemetry, outcomes = _admit_batch(testbed, 3)
        assert all(outcome.accepted for outcome in outcomes)
        _assert_one_connected_batch_trace(telemetry.tracer.spans, 3)

    def test_batch_with_rejects_stays_connected(self):
        testbed = build_testbed()
        telemetry = install_telemetry(testbed)
        requests = [
            guaranteed_request(client="fits", cpu=2,
                               with_network=False),
            guaranteed_request(client="too-big", cpu=20,
                               with_network=False),
        ]
        outcomes = testbed.broker.request_services(requests)
        assert outcomes[0].accepted and not outcomes[1].accepted
        _assert_one_connected_batch_trace(telemetry.tracer.spans, 2)

    def test_batch_under_chaos_stays_connected(self):
        testbed = build_testbed()
        install_chaos(testbed, seed=11, drop=0.15, duplicate=0.1,
                      delay=0.1, error=0.05)
        telemetry, outcomes = _admit_batch(testbed, 3)
        assert outcomes, "batch call returned no outcomes"
        testbed.sim.run(until=50.0)
        _assert_one_connected_batch_trace(telemetry.tracer.spans, 3)

    def test_sequential_admissions_do_not_open_batch_spans(self):
        testbed = build_testbed()
        telemetry = install_telemetry(testbed)
        outcome = testbed.broker.request_service(
            guaranteed_request(client="solo", cpu=2,
                               with_network=False))
        assert outcome.accepted
        names = {span.name for span in telemetry.tracer.spans}
        assert "batch_admission" not in names
