"""Per-scenario QoS regression suite over the workload atlas.

One test per registered scenario replays it end to end through the
full testbed (batched admission, telemetry, verifier polling) at the
atlas seed and asserts:

* the family's QoS invariants (:func:`repro.workloads.check_invariants`):
  capacity conservation at every checkpoint, no slot-table overcommit,
  degradation confined to consenting sessions, nobody below floor,
  zero guaranteed-class violations absent injected failures, no
  stranded shortfall at the end;
* the pinned :class:`RegressionProfile` — session count, workload
  fingerprint, per-class acceptance and §5.3 revenue. These are golden
  values: a diff means the generators, the admission pipeline or the
  adaptation changed behaviorally, and the change must be reviewed
  (then re-pinned), never absorbed silently;
* byte-determinism of the full canonical metric report (two in-process
  replays; the cross-process leg lives in ``test_properties``).

The meta-test (``test_meta.py``) fails when a registered scenario has
no profile here, so the suite cannot drift behind the registry.
"""

from dataclasses import dataclass

import pytest

from repro.workloads import (DEFAULT_SEED, check_invariants, get_scenario,
                             replay_scenario, scenario_names)


@dataclass(frozen=True)
class RegressionProfile:
    """Pinned headline numbers for one (scenario, DEFAULT_SEED) replay."""

    sessions: int
    fingerprint: str
    guaranteed_accepted: int
    controlled_accepted: int
    best_effort_granted: int
    revenue: float


#: Golden values at seed 2003 — reviewed, not regenerated blindly.
REGRESSION_PROFILES = {
    "diurnal_day": RegressionProfile(
        sessions=82,
        fingerprint="26f9b7189bbe1a2991655da1af347105ddce0567"
                    "a75697cbce00033616cc6898",
        guaranteed_accepted=13,
        controlled_accepted=32,
        best_effort_granted=21,
        revenue=6705.611847032),
    "flash_crowd_release": RegressionProfile(
        sessions=54,
        fingerprint="22f336d87ef4af491c0e4d2cdf89af3482c22fb0"
                    "db8eed55d0fa7854f18ebd0c",
        guaranteed_accepted=8,
        controlled_accepted=22,
        best_effort_granted=10,
        revenue=4075.28081441),
    "heavy_tailed_sessions": RegressionProfile(
        sessions=140,
        fingerprint="48f5b0a18bc9e404b87851e8131beadcd71a00d7"
                    "2ac8b3ce70c8ed0819a4af41",
        guaranteed_accepted=29,
        controlled_accepted=41,
        best_effort_granted=32,
        revenue=7004.213436517),
    "multi_tenant_mix": RegressionProfile(
        sessions=108,
        fingerprint="577e5afb93b71e6c0b1d8306cd9cd6be16809c78"
                    "0471ab02dfc6045158b5b042",
        guaranteed_accepted=12,
        controlled_accepted=33,
        best_effort_granted=25,
        revenue=7222.893798614),
    "rack_failure_cascade": RegressionProfile(
        sessions=47,
        fingerprint="e30c6b180d1f86d054af88e8ae8e9b884399abb9"
                    "b99487c04bf67bc5a8a323f9",
        guaranteed_accepted=14,
        controlled_accepted=18,
        best_effort_granted=5,
        revenue=6584.316333699),
    "best_effort_flood": RegressionProfile(
        sessions=200,
        fingerprint="797641c3f027a0e6ca220b781deea4738c8e3e43"
                    "4fc803abc11caa7cce9a01f2",
        guaranteed_accepted=8,
        controlled_accepted=3,
        best_effort_granted=59,
        revenue=3643.960923295),
}


@pytest.fixture(scope="module")
def replays():
    """Each scenario replayed once at the atlas seed (shared across
    the per-scenario asserts — replays are pure functions of the
    seed, so sharing loses nothing)."""
    return {name: replay_scenario(name, seed=DEFAULT_SEED)
            for name in scenario_names()}


@pytest.mark.parametrize("name", sorted(REGRESSION_PROFILES))
def test_scenario_holds_qos_invariants(name, replays):
    assert check_invariants(replays[name]) == [], \
        f"{name} broke its QoS invariants"


@pytest.mark.parametrize("name", sorted(REGRESSION_PROFILES))
def test_scenario_matches_pinned_profile(name, replays):
    report = replays[name].report
    profile = REGRESSION_PROFILES[name]
    assert report["sessions"] == profile.sessions
    assert report["workload_fingerprint"] == profile.fingerprint
    assert report["guaranteed_accepted"] == profile.guaranteed_accepted
    assert report["controlled_accepted"] == profile.controlled_accepted
    assert report["best_effort_granted"] == profile.best_effort_granted
    assert report["revenue"] == pytest.approx(profile.revenue)


@pytest.mark.parametrize("name", sorted(REGRESSION_PROFILES))
def test_scenario_report_is_byte_deterministic(name, replays):
    again = replay_scenario(name, seed=DEFAULT_SEED)
    assert again.report_json() == replays[name].report_json()


def test_failure_scenarios_actually_adapt(replays):
    """The correlated-failure family must exercise adaptation: the
    cascade produces violations AND restorations, and ends clean."""
    report = replays["rack_failure_cascade"].report
    assert report["violations_detected"] > 0
    assert report["restorations"] > 0
    assert report["final_shortfall"] == 0.0


def test_flood_never_touches_a_guarantee(replays):
    """The best-effort flood is rationed, never served at a
    guarantee's expense."""
    report = replays["best_effort_flood"].report
    assert report["best_effort_requests"] > \
        report["best_effort_granted"]
    assert report["guaranteed_violations"] == 0
    assert report["violations_detected"] == 0


@pytest.mark.atlas
@pytest.mark.parametrize("seed", (11, 12, 13))
def test_atlas_full_sweep_extra_seeds(seed):
    """Full-fidelity invariant sweep at additional seeds — the manual
    deep check (`pytest -m atlas`); the default run covers only the
    pinned atlas seed."""
    for name in scenario_names():
        result = replay_scenario(name, seed=seed)
        assert check_invariants(result) == [], \
            f"{name} broke invariants at seed {seed}"
