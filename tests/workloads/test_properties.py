"""Property tests for the atlas generators (hypothesis).

The generators' contracts, checked over randomly drawn parameters and
seeds rather than a handful of fixtures:

* arrival realisations are sorted, strictly inside ``[0, horizon)``;
* thinning never exceeds the peak-rate envelope — the accepted set is
  a *subset* of the same-seed homogeneous peak-rate realisation;
* empirical rates and class mixes land near their analytic targets;
* compilation is a pure function of the seed, byte-identical across
  processes (the fingerprint subprocess test).
"""

import math
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomSource
from repro.workloads.arrivals import (ConstantRate, DiurnalRate,
                                      FlashCrowdRate, sample_arrivals)
from repro.workloads.durations import (MIN_DURATION, ExponentialDuration,
                                       LognormalDuration, ParetoDuration)
from repro.workloads.scenarios import ScenarioSpec, TenantProfile

seeds = st.integers(min_value=0, max_value=2**31 - 1)

processes = st.one_of(
    st.builds(ConstantRate,
              rate=st.floats(min_value=0.05, max_value=2.0)),
    st.builds(DiurnalRate,
              base_rate=st.floats(min_value=0.05, max_value=2.0),
              amplitude=st.floats(min_value=0.0, max_value=0.95),
              period=st.floats(min_value=20.0, max_value=400.0),
              phase=st.floats(min_value=-100.0, max_value=100.0)),
    st.builds(FlashCrowdRate,
              base_rate=st.floats(min_value=0.05, max_value=1.0),
              bursts=st.tuples(st.tuples(
                  st.floats(min_value=0.0, max_value=100.0),
                  st.floats(min_value=101.0, max_value=200.0),
                  st.floats(min_value=1.0, max_value=10.0)))),
)

durations = st.one_of(
    st.builds(ExponentialDuration,
              mean_duration=st.floats(min_value=0.5, max_value=100.0)),
    st.builds(LognormalDuration,
              median=st.floats(min_value=0.5, max_value=50.0),
              sigma=st.floats(min_value=0.1, max_value=2.0)),
    st.builds(ParetoDuration,
              shape=st.floats(min_value=1.1, max_value=4.0),
              scale=st.floats(min_value=0.5, max_value=20.0),
              cap=st.floats(min_value=50.0, max_value=500.0)),
)


@given(process=processes, seed=seeds,
       horizon=st.floats(min_value=10.0, max_value=500.0))
def test_arrivals_sorted_and_within_horizon(process, seed, horizon):
    arrivals = sample_arrivals(process, horizon, RandomSource(seed))
    assert arrivals == sorted(arrivals)
    assert all(0.0 < t < horizon for t in arrivals)


@given(process=processes, seed=seeds)
def test_thinning_never_exceeds_peak_envelope(process, seed):
    """The accepted arrivals are a subset of the same-seed candidate
    stream: thinning can only remove candidates, so the realisation
    is dominated pointwise by the homogeneous peak-rate process."""
    horizon = 200.0
    thinned = sample_arrivals(process, horizon, RandomSource(seed))
    envelope = sample_arrivals(ConstantRate(process.peak_rate), horizon,
                               RandomSource(seed))
    assert set(thinned) <= set(envelope)
    assert len(thinned) <= len(envelope)


@given(seed=seeds)
@settings(max_examples=30)
def test_constant_rate_empirical_mean(seed):
    """Homogeneous arrivals land near the analytic mean (expected
    count 400; the 35% tolerance is ~7 sigma, so seeds never flake)."""
    rate, horizon = 2.0, 200.0
    arrivals = sample_arrivals(ConstantRate(rate), horizon,
                               RandomSource(seed))
    assert abs(len(arrivals) - rate * horizon) <= 0.35 * rate * horizon


@given(seed=seeds)
@settings(max_examples=30)
def test_diurnal_empirical_mean_matches_base_rate(seed):
    """Over whole cycles the sinusoid integrates to base_rate."""
    process = DiurnalRate(base_rate=1.0, amplitude=0.8, period=100.0)
    arrivals = sample_arrivals(process, 400.0, RandomSource(seed))
    assert abs(len(arrivals) - 400.0) <= 0.35 * 400.0


@given(model=durations, seed=seeds)
def test_durations_respect_floor_and_cap(model, seed):
    rng = RandomSource(seed)
    for _ in range(50):
        draw = model.sample(rng)
        assert draw >= MIN_DURATION
        if isinstance(model, ParetoDuration) and model.cap is not None:
            assert draw <= model.cap


@given(seed=seeds)
@settings(max_examples=20)
def test_lognormal_empirical_median(seed):
    model = LognormalDuration(median=20.0, sigma=1.0)
    rng = RandomSource(seed)
    draws = sorted(model.sample(rng) for _ in range(400))
    empirical = draws[len(draws) // 2]
    # Median of 400 lognormal draws: generous 2x band either side.
    assert 10.0 <= empirical <= 40.0


def _mix_scenario():
    return ScenarioSpec(
        name="mix_probe", family="multi_tenant",
        description="class-mix tolerance probe", horizon=3000.0,
        tenants=(TenantProfile(
            name="probe", arrivals=ConstantRate(rate=0.5),
            durations=ExponentialDuration(mean_duration=10.0),
            class_mix=(0.5, 0.3, 0.2)),))


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_class_mix_within_tolerance(seed):
    from repro.qos.classes import ServiceClass
    compiled = _mix_scenario().compile(seed)
    total = len(compiled.workload)
    assert total > 500  # expected ~1500
    for weight, cls in zip((0.5, 0.3, 0.2),
                           (ServiceClass.GUARANTEED,
                            ServiceClass.CONTROLLED_LOAD,
                            ServiceClass.BEST_EFFORT)):
        share = len(compiled.workload.by_class(cls)) / total
        assert abs(share - weight) <= 6.0 * math.sqrt(
            weight * (1.0 - weight) / total)


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_same_seed_compiles_byte_identical(seed):
    spec = _mix_scenario()
    first = spec.compile(seed).workload.fingerprint()
    second = spec.compile(seed).workload.fingerprint()
    assert first == second


def test_compilation_is_byte_identical_across_processes():
    """The fingerprint of a built-in scenario matches one computed by
    a fresh interpreter: no process-global state leaks into draws."""
    program = ("from repro.workloads import get_scenario\n"
               "print(get_scenario('multi_tenant_mix')"
               ".compile(2003).workload.fingerprint())\n")
    out = subprocess.run([sys.executable, "-c", program],
                         capture_output=True, text=True, check=True)
    from repro.workloads import get_scenario
    local = get_scenario("multi_tenant_mix").compile(2003)
    assert out.stdout.strip() == local.workload.fingerprint()
