"""Unit coverage for the session/workload descriptions."""

import pytest

from repro.errors import ValidationError
from repro.qos.classes import ServiceClass
from repro.workloads.sessions import SessionSpec, Workload


def spec(session_id=1, service_class=ServiceClass.GUARANTEED,
         arrival=0.0, duration=10.0, cpu_floor=2.0, cpu_best=2.0,
         **kwargs):
    return SessionSpec(session_id=session_id, user=f"u-{session_id}",
                       service_class=service_class, arrival=arrival,
                       duration=duration, cpu_floor=cpu_floor,
                       cpu_best=cpu_best, **kwargs)


class TestSessionSpec:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValidationError):
            spec(duration=0.0)
        with pytest.raises(ValidationError):
            spec(duration=-3.0)

    def test_rejects_floor_above_best(self):
        with pytest.raises(ValidationError):
            spec(cpu_floor=5.0, cpu_best=4.0)

    def test_end_is_arrival_plus_duration(self):
        assert spec(arrival=12.5, duration=7.5).end == pytest.approx(20.0)

    def test_mean_cpu_is_range_midpoint(self):
        session = spec(service_class=ServiceClass.CONTROLLED_LOAD,
                       cpu_floor=2.0, cpu_best=6.0)
        assert session.mean_cpu == pytest.approx(4.0)

    def test_exact_session_mean_cpu_is_the_demand(self):
        assert spec(cpu_floor=3.0, cpu_best=3.0).mean_cpu == \
            pytest.approx(3.0)


class TestWorkload:
    def build(self):
        sessions = (
            spec(1, ServiceClass.GUARANTEED, arrival=0.0),
            spec(2, ServiceClass.CONTROLLED_LOAD, arrival=5.0,
                 cpu_floor=1.0, cpu_best=4.0),
            spec(3, ServiceClass.GUARANTEED, arrival=10.0),
            spec(4, ServiceClass.BEST_EFFORT, arrival=20.0,
                 cpu_floor=1.0, cpu_best=1.0),
        )
        return Workload(sessions=sessions, horizon=100.0)

    def test_len(self):
        assert len(self.build()) == 4

    def test_by_class_returns_matching_sessions_in_order(self):
        workload = self.build()
        guaranteed = workload.by_class(ServiceClass.GUARANTEED)
        assert [s.session_id for s in guaranteed] == [1, 3]
        assert [s.session_id
                for s in workload.by_class(ServiceClass.BEST_EFFORT)] == [4]

    def test_by_class_missing_class_is_empty(self):
        empty = Workload(sessions=(), horizon=10.0)
        assert empty.by_class(ServiceClass.GUARANTEED) == []

    def test_by_class_index_matches_linear_scan(self):
        workload = self.build()
        for cls in ServiceClass:
            scan = [s for s in workload.sessions if s.service_class is cls]
            assert workload.by_class(cls) == scan

    def test_offered_cpu_load(self):
        # One 10-unit session of 2 CPUs over a 100-unit horizon on
        # capacity 4: 2 * 10 / (4 * 100).
        workload = Workload(sessions=(spec(duration=10.0),), horizon=100.0)
        assert workload.offered_cpu_load(4.0) == pytest.approx(0.05)

    def test_offered_cpu_load_clips_at_horizon(self):
        workload = Workload(
            sessions=(spec(arrival=90.0, duration=50.0),), horizon=100.0)
        # Only the 10 in-horizon units count.
        assert workload.offered_cpu_load(2.0) == pytest.approx(
            2.0 * 10.0 / (2.0 * 100.0))

    def test_offered_cpu_load_degenerate_inputs(self):
        workload = self.build()
        assert workload.offered_cpu_load(0.0) == 0.0
        assert Workload(sessions=(), horizon=50.0).offered_cpu_load(10.0) \
            == 0.0

    def test_fingerprint_is_stable_and_sensitive(self):
        first = self.build()
        second = self.build()
        assert first.fingerprint() == second.fingerprint()
        shifted = Workload(
            sessions=first.sessions[:-1] + (
                spec(4, ServiceClass.BEST_EFFORT, arrival=20.5,
                     cpu_floor=1.0, cpu_best=1.0),),
            horizon=first.horizon)
        assert shifted.fingerprint() != first.fingerprint()
