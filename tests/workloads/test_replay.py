"""Unit coverage for the atlas replay harness."""

import pytest

from repro.errors import ValidationError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, Form
from repro.workloads import check_invariants, replay_scenario
from repro.workloads.arrivals import ConstantRate
from repro.workloads.durations import ExponentialDuration
from repro.workloads.replay import batch_schedule, request_for_session
from repro.workloads.scenarios import ScenarioSpec, TenantProfile
from repro.workloads.sessions import SessionSpec


def tiny_scenario(horizon=60.0, rate=0.2):
    return ScenarioSpec(
        name="tiny", family="multi_tenant",
        description="replay unit-test scenario", horizon=horizon,
        tenants=(TenantProfile(
            name="solo", arrivals=ConstantRate(rate=rate),
            durations=ExponentialDuration(mean_duration=15.0)),))


def session(service_class=ServiceClass.GUARANTEED, cpu_floor=2.0,
            cpu_best=2.0, arrival=3.0, duration=10.0, **kwargs):
    return SessionSpec(session_id=1, user="u-1",
                       service_class=service_class, arrival=arrival,
                       duration=duration, cpu_floor=cpu_floor,
                       cpu_best=cpu_best, memory_mb=128.0, **kwargs)


class TestRequestForSession:
    def test_guaranteed_maps_to_exact_cpu(self):
        request = request_for_session(session(), admit_at=5.0)
        parameter = request.specification.get(Dimension.CPU)
        assert parameter.form is Form.EXACT
        assert request.start == 5.0
        assert request.end == pytest.approx(15.0)

    def test_controlled_range_maps_to_range_parameter(self):
        request = request_for_session(
            session(ServiceClass.CONTROLLED_LOAD, cpu_floor=2.0,
                    cpu_best=6.0), admit_at=0.0)
        parameter = request.specification.get(Dimension.CPU)
        assert parameter.form is Form.RANGE
        assert parameter.low == 2.0 and parameter.high == 6.0

    def test_adaptation_flags_carried(self):
        request = request_for_session(
            session(ServiceClass.CONTROLLED_LOAD, cpu_floor=1.0,
                    cpu_best=2.0, accept_degradation=True,
                    accept_termination=True), admit_at=0.0)
        assert request.adaptation.accept_degradation
        assert request.adaptation.accept_termination
        assert not request.adaptation.accept_promotion


class TestBatchSchedule:
    def test_epochs_are_causal(self):
        compiled = tiny_scenario(horizon=100.0, rate=0.5).compile(3)
        for admit_at, batch in batch_schedule(compiled, 5.0):
            for member in batch:
                assert member.arrival <= admit_at + 1e-9

    def test_epoch_boundary_clipped_to_horizon(self):
        compiled = tiny_scenario(horizon=42.0, rate=0.5).compile(3)
        schedule = batch_schedule(compiled, 10.0)
        assert all(admit_at <= 42.0 for admit_at, _batch in schedule)

    def test_every_session_is_scheduled_once(self):
        compiled = tiny_scenario(horizon=100.0, rate=0.5).compile(3)
        scheduled = [member.session_id
                     for _at, batch in batch_schedule(compiled, 7.0)
                     for member in batch]
        assert sorted(scheduled) == [
            s.session_id for s in compiled.workload.sessions]

    def test_rejects_nonpositive_window(self):
        compiled = tiny_scenario().compile(3)
        with pytest.raises(ValidationError):
            batch_schedule(compiled, 0.0)


class TestReplay:
    def test_replay_by_name_and_by_spec_agree(self):
        by_name = replay_scenario("flash_crowd_release", seed=9)
        by_spec = replay_scenario(
            by_name.compiled.spec, seed=9)
        assert by_name.report_json() == by_spec.report_json()

    def test_report_schema(self):
        result = replay_scenario(tiny_scenario(), seed=4)
        report = result.report
        for key in ("scenario", "family", "seed", "sessions",
                    "offered_load", "workload_fingerprint", "batches",
                    "guaranteed_requests", "guaranteed_accepted",
                    "violations_detected", "guaranteed_violations",
                    "restorations", "degraded_sessions",
                    "degraded_without_consent", "degraded_below_floor",
                    "checkpoints", "conservation_breaches",
                    "occupancy_mean", "utilization_mean", "revenue"):
            assert key in report, key
        assert report["checkpoints"] > 0
        assert set(report["occupancy_mean"]) == {"g", "a", "b"}

    def test_tiny_scenario_holds_invariants(self):
        result = replay_scenario(tiny_scenario(), seed=4)
        assert check_invariants(result) == []

    def test_replay_is_deterministic(self):
        first = replay_scenario(tiny_scenario(), seed=12).report_json()
        second = replay_scenario(tiny_scenario(), seed=12).report_json()
        assert first == second

    def test_seed_changes_the_realisation(self):
        first = replay_scenario(tiny_scenario(), seed=1)
        second = replay_scenario(tiny_scenario(), seed=2)
        assert first.report["workload_fingerprint"] != \
            second.report["workload_fingerprint"]
