"""Registry behavior of the workload atlas."""

import pytest

from repro.errors import ValidationError
from repro.workloads import (FAMILIES, families_covered, get_scenario,
                             register_scenario, scenario_names, scenarios,
                             scenarios_by_family)
from repro.workloads.arrivals import ConstantRate
from repro.workloads.durations import ExponentialDuration
from repro.workloads.scenarios import ScenarioSpec, TenantProfile


def test_every_family_has_a_builtin_scenario():
    assert families_covered() == FAMILIES


def test_names_are_unique_and_ordered():
    names = scenario_names()
    assert len(names) == len(set(names))
    assert [spec.name for spec in scenarios()] == list(names)


def test_get_scenario_round_trips():
    for name in scenario_names():
        assert get_scenario(name).name == name


def test_get_scenario_unknown_name_lists_registered():
    with pytest.raises(ValidationError) as excinfo:
        get_scenario("no_such_scenario")
    assert "diurnal_day" in str(excinfo.value)


def test_register_duplicate_name_rejected():
    existing = get_scenario("diurnal_day")
    with pytest.raises(ValidationError):
        register_scenario(existing)


def test_scenarios_by_family_filters_and_validates():
    diurnal = scenarios_by_family("diurnal")
    assert diurnal and all(s.family == "diurnal" for s in diurnal)
    with pytest.raises(ValidationError):
        scenarios_by_family("weird_family")


def test_builtin_scenarios_compile_nonempty():
    for spec in scenarios():
        compiled = spec.compile(2003)
        assert len(compiled.workload) > 0
        assert compiled.workload.horizon == spec.horizon
        assert compiled.offered_load() > 0.0


def test_rack_cascade_overwhelms_the_reserve():
    """The correlated-failure scenario is sized so the peak loss
    exceeds the paper's Ca=6 — otherwise it would never force
    broker-level adaptation."""
    spec = get_scenario("rack_failure_cascade")
    assert spec.peak_nodes_down() > spec.partition[1]


def test_scenario_validation():
    tenant = TenantProfile(name="t", arrivals=ConstantRate(rate=0.1),
                           durations=ExponentialDuration(mean_duration=5.0))
    with pytest.raises(ValidationError):
        ScenarioSpec(name="x", family="not_a_family", description="d",
                     horizon=10.0, tenants=(tenant,))
    with pytest.raises(ValidationError):
        ScenarioSpec(name="x", family="diurnal", description="d",
                     horizon=10.0, tenants=())
    with pytest.raises(ValidationError):
        ScenarioSpec(name="x", family="diurnal", description="d",
                     horizon=10.0, tenants=(tenant, tenant))


def test_scaled_preserves_offered_load_by_default():
    spec = get_scenario("flash_crowd_release")
    compressed = spec.scaled(time_factor=0.5)
    assert compressed.horizon == pytest.approx(spec.horizon * 0.5)
    full = spec.compile(11).offered_load()
    small = compressed.compile(11).offered_load()
    # Same seed, compressed time, doubled rate: offered load is a
    # statistical quantity so allow a wide band around equality.
    assert small == pytest.approx(full, rel=0.5)


def test_tenant_name_with_dash_rejected():
    with pytest.raises(ValidationError):
        TenantProfile(name="bad-name", arrivals=ConstantRate(rate=0.1),
                      durations=ExponentialDuration(mean_duration=5.0))
