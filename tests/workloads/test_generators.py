"""Tests for workload generation (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.sim.random import RandomSource
from repro.workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)
from repro.workloads.sessions import SessionSpec, Workload


class TestSessionSpec:
    def test_end_and_mean(self):
        session = SessionSpec(session_id=1, user="u",
                              service_class=ServiceClass.GUARANTEED,
                              arrival=10.0, duration=5.0,
                              cpu_floor=2, cpu_best=4)
        assert session.end == 15.0
        assert session.mean_cpu == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionSpec(session_id=1, user="u",
                        service_class=ServiceClass.GUARANTEED,
                        arrival=0.0, duration=0.0, cpu_floor=1,
                        cpu_best=1)
        with pytest.raises(ValueError):
            SessionSpec(session_id=1, user="u",
                        service_class=ServiceClass.GUARANTEED,
                        arrival=0.0, duration=1.0, cpu_floor=5,
                        cpu_best=1)


class TestGeneration:
    def test_deterministic_per_seed(self):
        config = WorkloadConfig(horizon=300.0, arrival_rate=0.2)
        a = generate_workload(config, RandomSource(9))
        b = generate_workload(config, RandomSource(9))
        assert a.sessions == b.sessions

    def test_arrivals_within_horizon_and_ordered(self):
        workload = generate_workload(WorkloadConfig(horizon=200.0),
                                     RandomSource(1))
        arrivals = [s.arrival for s in workload.sessions]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 200.0 for a in arrivals)

    def test_class_mix_respected(self):
        config = WorkloadConfig(horizon=5000.0, arrival_rate=0.5,
                                class_mix=(1.0, 0.0, 0.0))
        workload = generate_workload(config, RandomSource(2))
        assert all(s.service_class is ServiceClass.GUARANTEED
                   for s in workload.sessions)

    def test_guaranteed_sessions_are_rigid(self):
        workload = generate_workload(
            WorkloadConfig(horizon=2000.0, arrival_rate=0.3),
            RandomSource(3))
        for session in workload.by_class(ServiceClass.GUARANTEED):
            assert session.cpu_floor == session.cpu_best

    def test_controlled_sessions_stretch(self):
        config = WorkloadConfig(horizon=2000.0, arrival_rate=0.3,
                                controlled_stretch=2.0)
        workload = generate_workload(config, RandomSource(4))
        controlled = workload.by_class(ServiceClass.CONTROLLED_LOAD)
        assert controlled
        assert all(s.cpu_best >= s.cpu_floor for s in controlled)
        assert any(s.cpu_best > s.cpu_floor for s in controlled)

    def test_adaptation_flags_only_where_meaningful(self):
        workload = generate_workload(
            WorkloadConfig(horizon=2000.0, arrival_rate=0.3),
            RandomSource(5))
        for session in workload.sessions:
            if session.accept_promotion or session.accept_degradation:
                assert session.service_class is ServiceClass.CONTROLLED_LOAD
            if session.accept_termination:
                assert session.service_class is not ServiceClass.BEST_EFFORT


class TestLoadScaling:
    def test_offered_load_close_to_target(self):
        config = WorkloadConfig(horizon=4000.0)
        capacity = 26.0
        for target in (0.5, 1.0):
            rate = arrival_rate_for_load(target, capacity, config)
            workload = generate_workload(
                WorkloadConfig(horizon=config.horizon, arrival_rate=rate),
                RandomSource(6))
            measured = workload.offered_cpu_load(capacity)
            assert measured == pytest.approx(target, rel=0.25)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.0, 26.0, WorkloadConfig())

    def test_offered_load_monotone_in_rate(self):
        config = WorkloadConfig(horizon=2000.0)
        loads = []
        for rate in (0.05, 0.1, 0.2):
            workload = generate_workload(
                WorkloadConfig(horizon=2000.0, arrival_rate=rate),
                RandomSource(7))
            loads.append(workload.offered_cpu_load(26.0))
        assert loads == sorted(loads)
