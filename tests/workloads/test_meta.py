"""Meta-test: the atlas registry cannot outgrow its coverage.

Adding a scenario to the atlas without regression coverage, an
EXPERIMENTS.md row and the benchmark artifact wiring must fail CI —
this module iterates the registry and checks each obligation, so the
failure message names exactly what the new scenario still owes.
"""

import pathlib

from repro.workloads import FAMILIES, scenario_names, scenarios

from .test_atlas_regression import REGRESSION_PROFILES

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_every_scenario_has_a_regression_profile():
    missing = [name for name in scenario_names()
               if name not in REGRESSION_PROFILES]
    assert not missing, (
        f"scenario(s) registered without a pinned regression profile "
        f"in test_atlas_regression.REGRESSION_PROFILES: {missing}")


def test_no_orphan_regression_profiles():
    orphans = [name for name in REGRESSION_PROFILES
               if name not in scenario_names()]
    assert not orphans, (
        f"regression profiles pinned for unregistered scenario(s): "
        f"{orphans}")


def test_every_family_is_registered():
    covered = {spec.family for spec in scenarios()}
    missing = [family for family in FAMILIES if family not in covered]
    assert not missing, f"family(ies) with no scenario: {missing}"


def test_every_scenario_has_an_experiments_row():
    text = (REPO / "EXPERIMENTS.md").read_text()
    missing = [name for name in scenario_names() if name not in text]
    assert not missing, (
        f"scenario(s) missing from the EXPERIMENTS.md atlas section: "
        f"{missing}")


def test_atlas_artifact_is_in_the_manifest():
    manifest = (REPO / "benchmarks" / "artifacts_latest.txt").read_text()
    listed = {line.strip() for line in manifest.splitlines()
              if line.strip() and not line.startswith("#")}
    assert "BENCH_workload_atlas.json" in listed, (
        "BENCH_workload_atlas.json missing from "
        "benchmarks/artifacts_latest.txt — write_artifact would refuse "
        "the atlas benchmark's output")
