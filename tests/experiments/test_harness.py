"""Tests for the experiment harness (repro.experiments.harness)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines import (
    AdaptivePolicy,
    FcfsPolicy,
    ProportionalSharePolicy,
    StaticPartitionPolicy,
)
from repro.core.testbed import build_testbed
from repro.experiments.harness import (
    request_from_spec,
    run_broker_workload,
    run_policy_workload,
)
from repro.qos.classes import ServiceClass
from repro.sim.random import RandomSource
from repro.workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)
from repro.workloads.sessions import SessionSpec, Workload


def workload_for(load: float, horizon: float = 400.0,
                 seed: int = 11) -> Workload:
    config = WorkloadConfig(horizon=horizon)
    rate = arrival_rate_for_load(load, 26.0, config)
    return generate_workload(replace(config, arrival_rate=rate),
                             RandomSource(seed))


class TestPolicyRunner:
    def test_deterministic(self):
        workload = workload_for(0.8)
        a = run_policy_workload(AdaptivePolicy(15, 6, 5), workload)
        b = run_policy_workload(AdaptivePolicy(15, 6, 5), workload)
        assert a == b

    def test_adaptive_never_violates_without_failures(self):
        result = run_policy_workload(AdaptivePolicy(15, 6, 5),
                                     workload_for(1.2))
        assert result.violation_time_fraction == 0.0

    def test_adaptive_survives_failures_static_does_not(self):
        workload = workload_for(1.0, seed=21)
        failures = [(50.0, -4.0), (120.0, 4.0), (200.0, -4.0),
                    (280.0, 4.0)]
        adaptive = run_policy_workload(
            AdaptivePolicy(15, 6, 5, best_effort_min=2), workload,
            failures=failures)
        fcfs = run_policy_workload(
            FcfsPolicy(15, 6, 5), workload, failures=failures)
        # The adaptive reserve absorbs 4-node failures entirely.
        assert adaptive.violation_time_fraction == 0.0
        # FCFS admits everyone, so failures under load hurt someone.
        assert fcfs.guaranteed_acceptance == 1.0

    def test_static_starves_best_effort(self):
        workload = workload_for(1.2, seed=31)
        adaptive = run_policy_workload(AdaptivePolicy(15, 6, 5), workload)
        static = run_policy_workload(StaticPartitionPolicy(15, 6, 5),
                                     workload)
        assert adaptive.best_effort_cpu_time > static.best_effort_cpu_time

    def test_acceptance_rates_bounded(self):
        for policy in (AdaptivePolicy(15, 6, 5),
                       ProportionalSharePolicy(15, 6, 5)):
            result = run_policy_workload(policy, workload_for(1.5))
            for value in (result.guaranteed_acceptance,
                          result.controlled_acceptance,
                          result.best_effort_acceptance,
                          result.mean_utilization,
                          result.violation_time_fraction):
                assert 0.0 <= value <= 1.0

    def test_offered_load_recorded(self):
        # A long horizon keeps Poisson sampling variance manageable.
        result = run_policy_workload(AdaptivePolicy(15, 6, 5),
                                     workload_for(1.0, horizon=4000.0))
        assert result.offered_load == pytest.approx(1.0, rel=0.3)

    def test_counts_add_up(self):
        workload = workload_for(1.0)
        result = run_policy_workload(AdaptivePolicy(15, 6, 5), workload)
        total = (result.guaranteed_requests + result.controlled_requests
                 + result.best_effort_requests)
        assert total == len(workload)
        assert result.guaranteed_accepted <= result.guaranteed_requests


class TestRequestTranslation:
    def test_guaranteed_exact(self):
        session = SessionSpec(session_id=1, user="u",
                              service_class=ServiceClass.GUARANTEED,
                              arrival=5.0, duration=10.0,
                              cpu_floor=4, cpu_best=4, memory_mb=128)
        request = request_from_spec(session)
        point = request.specification.best_point()
        from repro.qos.parameters import Dimension
        assert point[Dimension.CPU] == 4.0
        assert point[Dimension.MEMORY_MB] == 128.0
        assert request.start == 5.0
        assert request.end == 15.0

    def test_controlled_range(self):
        session = SessionSpec(session_id=1, user="u",
                              service_class=ServiceClass.CONTROLLED_LOAD,
                              arrival=0.0, duration=10.0,
                              cpu_floor=2, cpu_best=8,
                              accept_degradation=True)
        request = request_from_spec(session)
        from repro.qos.parameters import Dimension
        parameter = request.specification.require(Dimension.CPU)
        assert (parameter.low, parameter.high) == (2.0, 8.0)
        assert request.adaptation.accept_degradation


class TestBrokerRunner:
    def test_full_stack_run_produces_metrics(self):
        testbed = build_testbed()
        workload = workload_for(0.8, horizon=200.0, seed=41)
        result = run_broker_workload(testbed, workload)
        assert result.policy_name == "broker"
        assert result.guaranteed_requests + result.controlled_requests \
            + result.best_effort_requests == len(workload)
        assert 0.0 <= result.mean_utilization <= 1.0
        assert result.revenue > 0.0

    def test_full_stack_guarantees_protected(self):
        testbed = build_testbed()
        workload = workload_for(1.0, horizon=200.0, seed=43)
        result = run_broker_workload(testbed, workload)
        assert result.violation_time_fraction == pytest.approx(0.0)
