"""Tests for time-weighted metrics (repro.experiments.metrics)."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import TimeWeightedMetrics


class TestIntegration:
    def test_piecewise_constant_integral(self):
        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(0.0, utilization=0.5)
        metrics.observe(10.0, utilization=1.0)
        metrics.finalize(20.0)
        # 0.5 over [0,10) plus 1.0 over [10,20).
        assert metrics.integral("utilization") == pytest.approx(15.0)
        assert metrics.mean("utilization") == pytest.approx(0.75)

    def test_signals_persist_until_changed(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(0.0, a=2.0, b=1.0)
        metrics.observe(5.0, a=0.0)  # b unchanged
        metrics.finalize(10.0)
        assert metrics.integral("a") == pytest.approx(10.0)
        assert metrics.integral("b") == pytest.approx(10.0)

    def test_unseen_signal_is_zero(self):
        metrics = TimeWeightedMetrics()
        metrics.finalize(10.0)
        assert metrics.integral("nothing") == 0.0
        assert metrics.mean("nothing") == 0.0

    def test_out_of_order_observation_rejected(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(5.0, x=1.0)
        with pytest.raises(ValueError):
            metrics.observe(4.0, x=2.0)

    def test_same_instant_updates_take_effect(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(0.0, x=1.0)
        metrics.observe(0.0, x=5.0)  # replaces before any time passes
        metrics.finalize(2.0)
        assert metrics.integral("x") == pytest.approx(10.0)

    def test_empty_window_mean_is_zero(self):
        metrics = TimeWeightedMetrics(start=3.0)
        metrics.observe(3.0, x=4.0)
        assert metrics.mean("x") == 0.0

    def test_nonzero_start(self):
        metrics = TimeWeightedMetrics(start=100.0)
        metrics.observe(100.0, x=2.0)
        metrics.finalize(110.0)
        assert metrics.elapsed == pytest.approx(10.0)
        assert metrics.mean("x") == pytest.approx(2.0)


class TestAuditRegressions:
    """Findings of the PR-4 bug audit, pinned as regressions.

    ``TimeWeightedMetrics`` now lives in ``repro.telemetry`` (this
    module re-exports it); the audit pinned down two soft spots: the
    zero-fill semantics for signals that first appear mid-window, and
    silent re-finalization moving the window boundary under an
    already-read mean.
    """

    def test_late_first_signal_is_zero_filled(self):
        # A signal first seen at t=10 contributes 0 over [0, 10): the
        # mean is diluted by the lead-in gap, by design, and the gap
        # itself is queryable.
        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(10.0, x=4.0)
        metrics.finalize(20.0)
        assert metrics.integral("x") == pytest.approx(40.0)
        assert metrics.mean("x") == pytest.approx(2.0)
        assert metrics.first_observed("x") == 10.0
        assert metrics.zero_filled("x") == pytest.approx(10.0)

    def test_unseen_signal_has_no_gap(self):
        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(0.0, y=1.0)
        metrics.finalize(5.0)
        assert metrics.first_observed("never") is None
        assert metrics.zero_filled("never") == 0.0
        assert metrics.zero_filled("y") == 0.0

    def test_refinalize_is_rejected(self):
        # Regression: a second finalize used to silently extend the
        # window, corrupting means already read from the first close.
        from repro.errors import ValidationError

        metrics = TimeWeightedMetrics()
        metrics.observe(0.0, x=1.0)
        metrics.finalize(10.0)
        assert metrics.finalized
        before = metrics.mean("x")
        with pytest.raises(ValidationError):
            metrics.finalize(20.0)
        assert metrics.mean("x") == before
        assert metrics.elapsed == pytest.approx(10.0)

    def test_observe_after_finalize_is_rejected(self):
        from repro.errors import ValidationError

        metrics = TimeWeightedMetrics()
        metrics.finalize(10.0)
        with pytest.raises(ValidationError):
            metrics.observe(11.0, x=1.0)

    def test_shim_reexports_the_telemetry_class(self):
        from repro.telemetry.timeweighted import (
            TimeWeightedMetrics as Canonical,
        )
        assert TimeWeightedMetrics is Canonical
