"""Tests for time-weighted metrics (repro.experiments.metrics)."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import TimeWeightedMetrics


class TestIntegration:
    def test_piecewise_constant_integral(self):
        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(0.0, utilization=0.5)
        metrics.observe(10.0, utilization=1.0)
        metrics.finalize(20.0)
        # 0.5 over [0,10) plus 1.0 over [10,20).
        assert metrics.integral("utilization") == pytest.approx(15.0)
        assert metrics.mean("utilization") == pytest.approx(0.75)

    def test_signals_persist_until_changed(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(0.0, a=2.0, b=1.0)
        metrics.observe(5.0, a=0.0)  # b unchanged
        metrics.finalize(10.0)
        assert metrics.integral("a") == pytest.approx(10.0)
        assert metrics.integral("b") == pytest.approx(10.0)

    def test_unseen_signal_is_zero(self):
        metrics = TimeWeightedMetrics()
        metrics.finalize(10.0)
        assert metrics.integral("nothing") == 0.0
        assert metrics.mean("nothing") == 0.0

    def test_out_of_order_observation_rejected(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(5.0, x=1.0)
        with pytest.raises(ValueError):
            metrics.observe(4.0, x=2.0)

    def test_same_instant_updates_take_effect(self):
        metrics = TimeWeightedMetrics()
        metrics.observe(0.0, x=1.0)
        metrics.observe(0.0, x=5.0)  # replaces before any time passes
        metrics.finalize(2.0)
        assert metrics.integral("x") == pytest.approx(10.0)

    def test_empty_window_mean_is_zero(self):
        metrics = TimeWeightedMetrics(start=3.0)
        metrics.observe(3.0, x=4.0)
        assert metrics.mean("x") == 0.0

    def test_nonzero_start(self):
        metrics = TimeWeightedMetrics(start=100.0)
        metrics.observe(100.0, x=2.0)
        metrics.finalize(110.0)
        assert metrics.elapsed == pytest.approx(10.0)
        assert metrics.mean("x") == pytest.approx(2.0)
