"""Seed-robustness of the headline claims.

The benchmarks demonstrate the paper's shapes at fixed seeds; these
tests re-check the load-bearing claims across several seeds so the
conclusions cannot be artifacts of one lucky draw.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines import AdaptivePolicy, StaticPartitionPolicy
from repro.experiments.harness import run_policy_workload
from repro.sim.random import RandomSource
from repro.workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)

SEEDS = (1, 17, 42, 99, 1234)
FAILURES = ((80.0, -4.0), (160.0, 4.0), (240.0, -4.0), (320.0, 4.0))


def workload(seed: int, load: float = 1.0):
    config = WorkloadConfig(horizon=400.0)
    rate = arrival_rate_for_load(load, 26.0, config)
    return generate_workload(replace(config, arrival_rate=rate),
                             RandomSource(seed))


class TestAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_adaptive_never_violates_under_covered_failures(self, seed):
        """The central claim: 4-node failures never violate guarantees
        while the 6-node reserve stands — at any seed."""
        result = run_policy_workload(
            AdaptivePolicy(15, 6, 5, best_effort_min=2),
            workload(seed), failures=FAILURES)
        assert result.violation_time_fraction == 0.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adaptive_serves_more_best_effort_than_static(self, seed):
        """'Resources are never under-utilized': borrowed capacity
        beats the rigid split's best-effort service at any seed."""
        shared = workload(seed, load=1.2)
        adaptive = run_policy_workload(
            AdaptivePolicy(15, 6, 5, best_effort_min=2), shared)
        static = run_policy_workload(
            StaticPartitionPolicy(15, 6, 5), shared)
        if static.best_effort_requests == 0:
            pytest.skip("no best-effort arrivals at this seed")
        assert adaptive.best_effort_cpu_time >= \
            static.best_effort_cpu_time

    @pytest.mark.parametrize("seed", SEEDS)
    def test_admission_never_oversells_cg(self, seed):
        """Accepted guaranteed commitments never exceed Cg."""
        policy = AdaptivePolicy(15, 6, 5, best_effort_min=2)
        run_policy_workload(policy, workload(seed, load=1.5))
        assert policy.partition.committed_total() <= 15.0 + 1e-9


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"horizon": 0.0},
        {"arrival_rate": -1.0},
        {"mean_duration": 0.0},
        {"class_mix": (0.0, 0.0, 0.0)},
        {"class_mix": (-1.0, 1.0, 1.0)},
        {"guaranteed_cpu": (5, 2)},
        {"guaranteed_cpu": (0, 2)},
        {"controlled_stretch": 0.5},
        {"degradable_fraction": 1.5},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_default_config_valid(self):
        WorkloadConfig()
