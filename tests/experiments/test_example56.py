"""Tests for the Section 5.6 replay (repro.experiments.example56).

These pin the legible anchors of the paper's worked example.
"""

from __future__ import annotations

import pytest

from repro.experiments.example56 import (
    Example56Result,
    format_example56,
    run_example56,
)


@pytest.fixture(scope="module")
def result() -> Example56Result:
    return run_example56()


class TestPaperAnchors:
    def test_partition_sizes(self, result):
        # Cg=15, Ca=6, Cb=5 sum to the 26 grid-exposed nodes.
        row = result.row("t1")
        assert row.effective_cg == 15.0

    def test_t1_sla3_allocated_ten_nodes(self, result):
        assert result.row("t1").sla3_served == 10.0

    def test_t3_failure_shrinks_cg_to_12(self, result):
        assert result.row("t3").effective_cg == 12.0

    def test_t3_deficit_brought_from_ca(self, result):
        row = result.row("t3")
        # 14 entitled vs 12 effective Cg: 2 nodes come from Ca.
        assert row.from_ca == pytest.approx(2.0)
        assert row.adapt_transfer == pytest.approx(2.0)
        assert row.guaranteed_served == 14.0
        assert row.shortfall == 0.0

    def test_t3_sla3_still_gets_min_g_c(self, result):
        # "SLA3 is due, allocating min(g(u), c(u,t)) = 10 processors".
        assert result.row("t3").sla3_served == 10.0

    def test_t4_recovery_restores_cg_sourcing(self, result):
        row = result.row("t4")
        assert row.effective_cg == 15.0
        assert row.from_ca == 0.0
        assert row.adapt_transfer == 0.0

    def test_t5_sla3_expiry_releases_nodes(self, result):
        t4 = result.row("t4")
        t5 = result.row("t5")
        assert t5.sla3_served == 0.0
        # The released 10 nodes flow to best-effort borrowers.
        assert t5.best_effort_served == pytest.approx(
            t4.best_effort_served + 10.0)

    def test_guarantees_always_honored(self, result):
        # The paper's claim: the adaptive capacity covers failures.
        assert result.guarantees_always_honored

    def test_never_underutilized(self, result):
        # Paper advantage (a): "Resources are never under-utilized due
        # to the dynamic property of the algorithm."
        assert result.never_underutilized


class TestRendering:
    def test_table_lists_all_instants(self, result):
        text = format_example56(result)
        for instant in ("t1", "t2", "t3", "t4", "t5"):
            assert instant in text

    def test_row_lookup_unknown_instant(self, result):
        with pytest.raises(KeyError):
            result.row("t9")

    def test_replay_is_deterministic(self, result):
        again = run_example56()
        assert format_example56(again) == format_example56(result)
