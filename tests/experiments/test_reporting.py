"""Tests for result-table rendering (repro.experiments.reporting)."""

from __future__ import annotations

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["policy", "acceptance"],
            [["adaptive", 0.95], ["static", 0.7]],
            title="X1")
        lines = text.splitlines()
        assert lines[0] == "X1"
        assert "policy" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "adaptive" in lines[3]

    def test_numeric_columns_right_aligned(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["long-name", 10.25]])
        rows = text.splitlines()[2:]
        # Numbers end at the same column.
        assert rows[0].rstrip().endswith("1.500")
        assert rows[1].rstrip().endswith("10.250")

    def test_integers_rendered_without_decimals(self):
        text = format_table(["n"], [[3.0]])
        assert "3.000" not in text
        assert "3" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
