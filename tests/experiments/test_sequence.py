"""Tests for the Figure 2 sequence-diagram renderer."""

from __future__ import annotations

import pytest

from repro.experiments.sequence import (
    ACTORS,
    Interaction,
    extract_interactions,
    figure2_diagram,
    render_sequence_diagram,
)
from repro.sim.trace import TraceRecorder


def trace_with(*rows):
    trace = TraceRecorder()
    for time, category, message in rows:
        trace.record(time, category, message)
    return trace


class TestExtraction:
    def test_known_rows_map_to_interactions(self):
        trace = trace_with(
            (0.0, "broker", "discovery for 'alice': 1 matching"),
            (0.0, "reservation", "RS[SLA 1]: temporarily reserved "
                                 "compute ..."),
            (1.0, "compute", "m: launched 'svc' as pid 1"),
            (9.0, "broker", "SLA 1 closed: completion"),
        )
        interactions = extract_interactions(trace)
        assert [i.label for i in interactions] == [
            "QueryServices()", "ResourceAllocation()",
            "ServiceInvocation()", "QoStermination()"]

    def test_unmatched_rows_skipped(self):
        trace = trace_with((0.0, "gara", "something internal"),
                           (1.0, "unknown", "noise"))
        assert extract_interactions(trace) == []

    def test_limit(self):
        trace = trace_with(
            *(((float(i), "broker", "discovery for x") for i in range(10))))
        assert len(extract_interactions(trace, limit=3)) == 3

    def test_actors_are_figure2s(self):
        assert ACTORS == ("Client", "AQoS", "RM", "NRM", "Service")


class TestRendering:
    def test_header_and_lifelines_aligned(self):
        text = render_sequence_diagram([
            Interaction(0.0, "Client", "AQoS", "QueryServices()")])
        lines = text.splitlines()
        header, lifeline = lines[0], lines[1]
        for actor in ACTORS:
            column = header.index(actor) + len(actor) // 2
            assert lifeline[column] == "|"

    def test_arrow_direction(self):
        right = render_sequence_diagram([
            Interaction(0.0, "Client", "AQoS", "go")])
        assert ">" in right
        left = render_sequence_diagram([
            Interaction(0.0, "AQoS", "Client", "back")])
        assert "<" in left

    def test_self_call_marker(self):
        text = render_sequence_diagram([
            Interaction(0.0, "AQoS", "AQoS", "Adapt()")])
        assert "*" in text
        assert "Adapt()" in text

    def test_times_printed(self):
        text = render_sequence_diagram([
            Interaction(12.5, "Client", "AQoS", "x")])
        assert "12.50" in text


class TestEndToEnd:
    def test_full_session_diagram(self, testbed):
        from repro.qos.classes import ServiceClass
        from repro.qos.parameters import Dimension, exact_parameter
        from repro.qos.specification import QoSSpecification
        from repro.sla.document import NetworkDemand
        from repro.sla.negotiation import ServiceRequest

        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 4))
        outcome = testbed.broker.request_service(ServiceRequest(
            client="alice", service_name="simulation-service",
            service_class=ServiceClass.GUARANTEED,
            specification=spec, start=0.0, end=50.0,
            network=NetworkDemand("135.200.50.101", "192.200.168.33",
                                  50.0)))
        assert outcome.accepted
        testbed.sim.run(until=60.0)
        diagram = figure2_diagram(testbed.trace)
        for label in ("QueryServices()", "ResourceAllocation()",
                      "ServiceInvocation()", "QoStermination()"):
            assert label[:12] in diagram
