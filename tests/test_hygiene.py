"""The self-hosted analyzer gates the library's source hygiene.

This file used to carry three coarse AST checks (unused imports, debug
prints, mutable defaults).  Those checks — and eight more (determinism,
units discipline, tolerance comparison, exception contract, ``__all__``
drift, state-machine transitions, ordering hazards) — now live in
:mod:`repro.analysis`; the hygiene gate is simply "the analyzer runs
clean over ``src/`` with zero unbaselined findings", so a regression in
any invariant fails the suite offline with no external linter.

See ``tests/analysis/`` for the engine's own test suite.
"""

from __future__ import annotations

import pathlib

from repro.analysis import Baseline, analyze_paths, load_baseline, \
    render_text

ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
BASELINE = ROOT / "analysis-baseline.json"


def _run():
    baseline = load_baseline(BASELINE) if BASELINE.exists() \
        else Baseline.empty()
    return analyze_paths([SRC], baseline=baseline, root=ROOT)


def test_every_module_parses():
    result = _run()
    assert not result.parse_errors, result.parse_errors
    assert result.module_count > 90  # the whole library was analysed


def test_analyzer_runs_clean_on_src():
    """Zero new findings — errors *and* warnings — over the library."""
    result = _run()
    assert not result.new_findings, "\n" + render_text(result,
                                                       verbose=True)


def test_baseline_carries_no_stale_entries():
    """Fixed findings must leave the baseline, not linger."""
    result = _run()
    assert result.stale_baseline == []
