"""Source-hygiene checks that keep the library reviewable.

These are deliberately coarse (no external linters are available in
the offline environment) but catch the regressions that matter most in
review: unused imports, stray debug prints, and mutable default
arguments.
"""

from __future__ import annotations

import ast
import pathlib
import re

import pytest

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
MODULES = sorted(SRC.rglob("*.py"))


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
class TestModuleHygiene:
    def test_no_unused_imports(self, path):
        """Every imported name must appear somewhere else in the file
        (including inside quoted annotations and docstrings referencing
        it via ``:class:`` roles)."""
        text = path.read_text()
        tree = ast.parse(text)
        lines = text.splitlines()
        offenders = []
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [(alias.asname or alias.name).split(".")[0]
                         for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [alias.asname or alias.name
                         for alias in node.names]
            for name in names:
                if name in ("annotations", "*"):
                    continue
                statement = "\n".join(
                    lines[node.lineno - 1:(node.end_lineno or node.lineno)])
                total = len(re.findall(rf"\b{re.escape(name)}\b", text))
                in_statement = len(re.findall(rf"\b{re.escape(name)}\b",
                                              statement))
                if total <= in_statement:
                    offenders.append(f"{name} (line {node.lineno})")
        assert not offenders, f"unused imports: {offenders}"

    def test_no_debug_prints(self, path):
        """Library modules never print directly — reporting goes
        through traces, renderers or the CLI."""
        if path.name == "cli.py" or "experiments" in path.parts:
            pytest.skip("CLI and experiment renderers print by design")
        tree = ast.parse(path.read_text())
        calls = [node.lineno for node in ast.walk(tree)
                 if isinstance(node, ast.Call)
                 and isinstance(node.func, ast.Name)
                 and node.func.id == "print"]
        assert not calls, f"print() calls at lines {calls}"

    def test_no_mutable_default_arguments(self, path):
        """Functions never default to mutable literals."""
        tree = ast.parse(path.read_text())
        offenders = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in (list(node.args.defaults)
                                + [d for d in node.args.kw_defaults if d]):
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                        offenders.append(f"{node.name} (line {node.lineno})")
        assert not offenders, f"mutable defaults: {offenders}"
