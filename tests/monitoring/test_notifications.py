"""Tests for the notification hub (repro.monitoring.notifications)."""

from __future__ import annotations

from repro.monitoring.notifications import DegradationNotice, NotificationHub


def notice(sla_id=1, **overrides):
    defaults = dict(sla_id=sla_id, time=1.0, source="nrm", detail="d")
    defaults.update(overrides)
    return DegradationNotice(**defaults)


class TestHub:
    def test_publish_reaches_all_subscribers(self):
        hub = NotificationHub()
        seen_a, seen_b = [], []
        hub.subscribe(seen_a.append)
        hub.subscribe(seen_b.append)
        hub.publish(notice())
        assert len(seen_a) == len(seen_b) == 1

    def test_log_retains_everything(self):
        hub = NotificationHub()
        hub.publish(notice(sla_id=1))
        hub.publish(notice(sla_id=2))
        assert len(hub.log()) == 2

    def test_for_sla_filters(self):
        hub = NotificationHub()
        hub.publish(notice(sla_id=1))
        hub.publish(notice(sla_id=2))
        hub.publish(notice(sla_id=1))
        assert len(hub.for_sla(1)) == 2
        assert len(hub.for_sla(3)) == 0

    def test_severity_zero_without_report(self):
        assert notice().severity == 0.0

    def test_subscriber_added_during_publish_not_called(self):
        hub = NotificationHub()
        calls = []

        def resubscriber(n):
            calls.append("first")
            hub.subscribe(lambda n2: calls.append("second"))

        hub.subscribe(resubscriber)
        hub.publish(notice())
        assert calls == ["first"]
