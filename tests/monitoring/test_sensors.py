"""Tests for sensors (repro.monitoring.sensors)."""

from __future__ import annotations

import pytest

from repro.errors import MonitoringError
from repro.monitoring.sensors import ComputeSensor, NetworkSensor
from repro.network.nrm import NetworkResourceManager
from repro.network.topology import Topology
from repro.qos.parameters import Dimension
from repro.qos.vector import ResourceVector
from repro.resources.compute import ComputeResourceManager
from repro.resources.machine import Machine
from repro.rsl.builder import reservation_rsl
from repro.sim.random import RandomSource


@pytest.fixture
def compute_rm(sim):
    return ComputeResourceManager(sim, Machine("m", 32, grid_nodes=26,
                                               memory_mb=4096))


@pytest.fixture
def nrm(sim):
    topology = Topology()
    topology.add_site("a", "d")
    topology.add_site("b", "d")
    topology.add_link("a", "b", 100.0, delay_ms=3.0, loss=0.01)
    return NetworkResourceManager(sim, topology, "d")


class TestComputeSensor:
    def test_reads_capacity_and_utilization(self, sim, compute_rm):
        handle = compute_rm.gara.reservation_create(
            reservation_rsl(ResourceVector(cpu=13), 0, 100))
        compute_rm.gara.reservation_commit(handle)
        sensor = ComputeSensor("cpu", sim, compute_rm)
        reading = sensor.sample()
        assert reading.values[Dimension.CPU] == 26
        assert reading.extra["utilization"] == pytest.approx(0.5)
        assert reading.extra["free_cpu"] == pytest.approx(13)

    def test_tracks_failures(self, sim, compute_rm):
        sensor = ComputeSensor("cpu", sim, compute_rm)
        compute_rm.machine.fail_nodes(6)
        assert sensor.sample().values[Dimension.CPU] == 20

    def test_noise_is_deterministic_per_seed(self, sim, compute_rm):
        a = ComputeSensor("a", sim, compute_rm, rng=RandomSource(1),
                          noise=0.05)
        b = ComputeSensor("b", sim, compute_rm, rng=RandomSource(1),
                          noise=0.05)
        assert a.sample().values[Dimension.CPU] == \
            b.sample().values[Dimension.CPU]

    def test_noise_never_negative(self, sim, compute_rm):
        sensor = ComputeSensor("a", sim, compute_rm,
                               rng=RandomSource(3), noise=5.0)
        for _ in range(50):
            assert sensor.sample().values[Dimension.CPU] >= 0.0


class TestNetworkSensor:
    def test_measures_flow(self, sim, nrm):
        flow = nrm.allocate("a", "b", 40.0, 0, 100)
        sensor = NetworkSensor("net", sim, nrm, flow)
        reading = sensor.sample()
        assert reading.values[Dimension.BANDWIDTH_MBPS] == \
            pytest.approx(40.0)
        assert reading.values[Dimension.DELAY_MS] == pytest.approx(3.0)
        assert reading.values[Dimension.PACKET_LOSS] == pytest.approx(0.01)
        assert reading.extra["agreed_mbps"] == 40.0

    def test_sees_congestion(self, sim, nrm):
        flow = nrm.allocate("a", "b", 80.0, 0, 100)
        sensor = NetworkSensor("net", sim, nrm, flow)
        nrm.set_congestion("a", "b", 0.5)
        assert sensor.sample().values[Dimension.BANDWIDTH_MBPS] == \
            pytest.approx(50.0)

    def test_released_flow_raises(self, sim, nrm):
        flow = nrm.allocate("a", "b", 40.0, 0, 100)
        sensor = NetworkSensor("net", sim, nrm, flow)
        nrm.release(flow)
        with pytest.raises(MonitoringError):
            sensor.sample()
