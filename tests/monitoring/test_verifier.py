"""Tests for SLA-Verif (repro.monitoring.verifier)."""

from __future__ import annotations

import pytest

from repro.errors import MonitoringError
from repro.monitoring.mds import InformationService
from repro.monitoring.notifications import NotificationHub
from repro.monitoring.sensors import Sensor, SensorReading
from repro.monitoring.verifier import SlaVerifier
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, ServiceSLA
from repro.sla.repository import SLARepository
from repro.units import parse_bound


class StubSensor(Sensor):
    """Test double with settable values."""

    def __init__(self, name, sim, values):
        super().__init__(name, sim)
        self.values = values

    def sample(self):
        return SensorReading(sensor=self.name, time=self._sim.now,
                             values=dict(self.values))


@pytest.fixture
def world(sim):
    repository = SLARepository()
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    sla = ServiceSLA(
        sla_id=repository.next_id(), client="c", service_name="s",
        service_class=ServiceClass.CONTROLLED_LOAD, specification=spec,
        agreed_point=spec.best_point(), start=0.0, end=100.0,
        price_rate=5.0,
        network=NetworkDemand("1.1.1.1", "2.2.2.2", 10.0,
                              parse_bound("LessThan 10%")))
    repository.save(sla)
    sla.establish()
    sla.activate()
    hub = NotificationHub()
    verifier = SlaVerifier(sim, InformationService(sim), repository, hub)
    return sim, repository, hub, verifier, sla


class TestConformanceTests:
    def test_conformant_session_raises_no_notice(self, world):
        sim, _repo, hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 8.0}))
        report = verifier.conformance_test(sla.sla_id)
        assert report.conformant
        assert hub.log() == []

    def test_violation_publishes_degradation_notice(self, world):
        sim, _repo, hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 2.0}))
        report = verifier.conformance_test(sla.sla_id)
        assert not report.conformant
        notices = hub.for_sla(sla.sla_id)
        assert len(notices) == 1
        assert notices[0].source == "sla-verif"
        assert notices[0].severity > 0

    def test_measurements_merged_across_sensors(self, world):
        sim, _repo, _hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 8.0}))
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s2", sim, {Dimension.BANDWIDTH_MBPS: 10.0}))
        measured = verifier.measure(sla.sla_id)
        assert set(measured.values) == {Dimension.CPU,
                                        Dimension.BANDWIDTH_MBPS}

    def test_no_sensors_raises(self, world):
        _sim, _repo, _hub, verifier, sla = world
        with pytest.raises(MonitoringError):
            verifier.conformance_test(sla.sla_id)

    def test_reply_xml_is_table3_shaped(self, world):
        sim, _repo, _hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.BANDWIDTH_MBPS: 9.5,
                        Dimension.PACKET_LOSS: 0.02}))
        node = verifier.conformance_reply_xml(sla.sla_id)
        assert node.tag == "QoS_Levels"
        assert node.find("SLA-ID").text == str(sla.sla_id)

    def test_detach_session(self, world):
        sim, _repo, _hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 8.0}))
        verifier.detach_session(sla.sla_id)
        with pytest.raises(MonitoringError):
            verifier.measure(sla.sla_id)


class TestPolling:
    def test_periodic_tests_run(self, world):
        sim, _repo, _hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 8.0}))
        verifier.start_polling(interval=10.0)
        sim.run(until=55.0)
        assert verifier.tests_run == 5

    def test_stop_polling(self, world):
        sim, _repo, _hub, verifier, sla = world
        verifier.attach_sensor(sla.sla_id, StubSensor(
            "s1", sim, {Dimension.CPU: 8.0}))
        verifier.start_polling(interval=10.0)
        sim.run(until=25.0)
        verifier.stop_polling()
        sim.run(until=100.0)
        assert verifier.tests_run == 2

    def test_invalid_interval_rejected(self, world):
        _sim, _repo, _hub, verifier, _sla = world
        with pytest.raises(MonitoringError):
            verifier.start_polling(0.0)


class TestNrmCallback:
    def test_notice_republished_against_sla(self, world):
        sim, _repo, hub, verifier, sla = world

        class FakeFlow:
            flow_id = 7
            bandwidth_mbps = 10.0

        class FakeMeasurement:
            bandwidth_mbps = 4.0

        listener = verifier.on_network_degradation(
            lambda flow: sla.sla_id)
        listener(FakeFlow(), FakeMeasurement())
        notices = hub.for_sla(sla.sla_id)
        assert len(notices) == 1
        assert notices[0].source == "nrm"

    def test_unmapped_flow_ignored(self, world):
        _sim, _repo, hub, verifier, _sla = world

        class FakeFlow:
            flow_id = 7
            bandwidth_mbps = 10.0

        class FakeMeasurement:
            bandwidth_mbps = 4.0

        listener = verifier.on_network_degradation(lambda flow: None)
        listener(FakeFlow(), FakeMeasurement())
        assert hub.log() == []
