"""Tests for the information service (repro.monitoring.mds)."""

from __future__ import annotations

import pytest

from repro.errors import MonitoringError
from repro.monitoring.mds import InformationService
from repro.monitoring.sensors import Sensor, SensorReading
from repro.qos.parameters import Dimension


class CountingSensor(Sensor):
    """Test double: returns an incrementing CPU value."""

    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.samples = 0

    def sample(self):
        self.samples += 1
        return SensorReading(sensor=self.name, time=self._sim.now,
                             values={Dimension.CPU: float(self.samples)})


@pytest.fixture
def mds(sim):
    return InformationService(sim, history_limit=3)


class TestRegistry:
    def test_register_and_query(self, sim, mds):
        mds.register(CountingSensor("cluster/cpu", sim))
        reading = mds.query("cluster/cpu")
        assert reading.values[Dimension.CPU] == 1.0

    def test_duplicate_name_rejected(self, sim, mds):
        mds.register(CountingSensor("s", sim))
        with pytest.raises(MonitoringError):
            mds.register(CountingSensor("s", sim))

    def test_unknown_sensor_rejected(self, mds):
        with pytest.raises(MonitoringError):
            mds.query("ghost")

    def test_name_patterns(self, sim, mds):
        for name in ("cluster/cpu", "cluster/memory", "net/flow1"):
            mds.register(CountingSensor(name, sim))
        assert mds.sensor_names("cluster/*") == ["cluster/cpu",
                                                 "cluster/memory"]
        assert len(mds.query_all("net/*")) == 1

    def test_unregister_keeps_history(self, sim, mds):
        mds.register(CountingSensor("s", sim))
        mds.query("s")
        mds.unregister("s")
        assert mds.latest("s") is not None
        with pytest.raises(MonitoringError):
            mds.query("s")


class TestHistory:
    def test_latest_and_history(self, sim, mds):
        mds.register(CountingSensor("s", sim))
        for _ in range(2):
            mds.query("s")
        assert mds.latest("s").values[Dimension.CPU] == 2.0
        assert [r.values[Dimension.CPU] for r in mds.history("s")] == \
            [1.0, 2.0]

    def test_history_limit(self, sim, mds):
        mds.register(CountingSensor("s", sim))
        for _ in range(10):
            mds.query("s")
        assert len(mds.history("s")) == 3
        assert mds.history("s")[-1].values[Dimension.CPU] == 10.0

    def test_latest_none_before_first_query(self, sim, mds):
        mds.register(CountingSensor("s", sim))
        assert mds.latest("s") is None
