"""The paper's claims, each pinned to executable evidence.

Every test quotes one claim from the paper (section in parentheses)
and demonstrates it on the reproduction. Most of these behaviours are
covered in more depth by the per-module suites; this module is the
claims-to-evidence index a reviewer reads first.
"""

from __future__ import annotations

import pytest

from repro.core.capacity import CapacityPartition
from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, SlaStatus
from repro.sla.negotiation import ServiceRequest


def guaranteed(client, cpu, end=100.0, **options):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=end,
                          adaptation=AdaptationOptions(**options))


def controlled(client, floor, best, end=100.0, **options):
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, floor, best))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=end,
                          adaptation=AdaptationOptions(**options))


class TestAbstractClaims:
    def test_compensates_for_qos_degradation(self, testbed):
        """'The proposed QoS adaptation scheme is used to compensate
        for QoS degradation' (abstract): a failure within the adaptive
        reserve leaves every guarantee intact."""
        outcome = testbed.broker.request_service(guaranteed("a", 14))
        assert outcome.accepted
        testbed.machine.fail_nodes(3)
        holding = testbed.broker.partition_holding(outcome.sla.sla_id)
        assert holding.served == 14.0

    def test_optimizes_resource_utilization(self, testbed):
        """'...and optimize resource utilization, by increasing the
        number of requests managed' (abstract): squeezing degradable
        sessions admits requests a rigid broker would refuse."""
        broker = testbed.broker
        elastic = broker.request_service(
            controlled("e", 1, 14, accept_degradation=True))
        filler = broker.request_service(guaranteed("f", 10))
        assert elastic.accepted and filler.accepted
        newcomer = broker.request_service(guaranteed("n", 4))
        assert newcomer.accepted  # only possible via the squeeze


class TestSection51ServiceClasses:
    def test_guaranteed_is_exact_and_pinned(self, testbed):
        """'The service provider is committed to deliver the service
        with the exact QoS specification described in the SLA' (5.1)."""
        outcome = testbed.broker.request_service(guaranteed("a", 10))
        from repro.errors import SLAError
        with pytest.raises(SLAError):
            outcome.sla.set_delivered_point({Dimension.CPU: 5.0})

    def test_controlled_load_moves_within_range(self, testbed):
        """'The service provider must now be able to offer QoS within
        the specified range' (5.1)."""
        outcome = testbed.broker.request_service(controlled("a", 2, 8))
        testbed.broker.apply_point(outcome.sla, {Dimension.CPU: 4.0})
        assert outcome.sla.delivered_point[Dimension.CPU] == 4.0

    def test_best_effort_has_no_sla(self, testbed):
        """'In the best effort service, there is no SLA associated
        with the service request' (5.1)."""
        assert testbed.broker.request_best_effort("student", 4)
        assert testbed.repository.all() == []


class TestSection52AdaptationTerms:
    def test_promotions_only_in_controlled_load(self):
        """'Only in the controlled load class is there an optional
        element related to promotion offers' (5.2)."""
        assert ServiceClass.CONTROLLED_LOAD.may_receive_promotions
        assert not ServiceClass.GUARANTEED.may_receive_promotions
        assert not ServiceClass.BEST_EFFORT.may_receive_promotions


class TestSection54Algorithm:
    def test_admission_rule(self):
        """'If Σg(u) + g(u) <= Cg then SLA guarantees ... can be
        honored' (Algorithm 1)."""
        partition = CapacityPartition(15, 6, 5)
        partition.admit_guaranteed("u", 10)
        assert partition.available_guaranteed_resource(5)
        assert not partition.available_guaranteed_resource(6)

    def test_advantage_a_never_underutilized(self):
        """'Resources are never under-utilized due to the dynamic
        property of the algorithm. The extra reserved capacity is used
        by best effort users as long as it is not needed' (5.4)."""
        partition = CapacityPartition(15, 6, 5)
        partition.set_best_effort_demand("be", 26)
        assert partition.idle_capacity() == 0.0
        partition.admit_guaranteed("g", 10)
        partition.set_guaranteed_demand("g", 10)
        # The borrower was pre-empted, not the guarantee refused.
        assert partition.guaranteed_holding("g").served == 10.0
        assert partition.best_effort_holding("be").served == 16.0

    def test_advantage_b_best_effort_minimum(self):
        """'A minimum resource capacity is allocated for best effort
        users, therefore users with no SLAs can always make use of the
        best effort resources' (5.4)."""
        partition = CapacityPartition(15, 6, 5, best_effort_min=2)
        partition.admit_guaranteed("g", 15)
        partition.set_guaranteed_demand("g", 15)
        partition.apply_failure(11)  # massive failure
        partition.set_best_effort_demand("be", 5)
        assert partition.best_effort_holding("be").served >= 2.0


class TestSection31ReservationProtocol:
    def test_temporary_reservation_auto_cancels(self, testbed):
        """'If the RS does not receive such confirmation within the
        pre-defined period of time, it instructs GARA to cancel the
        reservation' (3.1)."""
        from repro.gara.reservation import ReservationState
        from repro.qos.vector import ResourceVector
        from repro.rsl.builder import reservation_rsl
        gara = testbed.compute_rm.gara
        handle = gara.reservation_create(
            reservation_rsl(ResourceVector(cpu=5), 0.0, 100.0))
        testbed.sim.run(until=gara.confirm_timeout + 1.0)
        assert gara.reservation_status(handle).state is \
            ReservationState.CANCELLED

    def test_bind_claims_by_process_id(self, testbed):
        """'The process ID of the launched process is the only
        parameter required' to claim a reservation (3.1)."""
        outcome = testbed.broker.request_service(guaranteed("a", 4))
        resources = testbed.broker.allocation.get(outcome.sla.sla_id)
        reservation = testbed.compute_rm.gara.reservation_status(
            resources.reservation.compute_handle)
        assert reservation.bound_pid == resources.job.pid


class TestSection4Responses:
    def test_response_a_restore(self, testbed):
        """Adaptation response (a): 'restoring the agreed on QoS' (4)."""
        broker = testbed.broker
        outcome = broker.request_service(
            controlled("a", 2, 8, accept_degradation=True))
        broker.apply_point(outcome.sla, outcome.sla.floor_point())
        broker.scenarios.on_service_termination()
        assert not outcome.sla.is_degraded()

    def test_response_c_terminate_on_major_degradation(self, testbed):
        """Adaptation response (c): 'terminating the service being
        delivered due to a major QoS degradation' (4)."""
        from repro.monitoring.notifications import DegradationNotice
        from repro.sla.violations import (
            ConformanceReport,
            MeasuredQoS,
            Violation,
        )
        broker = testbed.broker
        outcome = broker.request_service(guaranteed("a", 10))
        sla_id = outcome.sla.sla_id
        violation = Violation(sla_id=sla_id, dimension=Dimension.CPU,
                              expected=10.0, measured=1.0, severity=0.9)
        report = ConformanceReport(
            sla_id=sla_id, time=0.0, violations=(violation,),
            measured=MeasuredQoS(sla_id=sla_id, values={}))
        broker.scenarios.on_degradation(DegradationNotice(
            sla_id=sla_id, time=0.0, source="sla-verif", report=report))
        assert outcome.sla.status is SlaStatus.TERMINATED
