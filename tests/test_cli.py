"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("quickstart", "telemetry", "example56",
                        "diagram", "sweep", "reserve"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_quickstart_telemetry_flag(self):
        args = build_parser().parse_args(["quickstart", "--telemetry"])
        assert args.telemetry is True
        assert args.chaos is None

    def test_telemetry_options(self):
        args = build_parser().parse_args(
            ["telemetry", "--seed", "3", "--chaos", "7"])
        assert args.seed == 3
        assert args.chaos == 7

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--loads", "0.5", "1.0", "--horizon", "200",
             "--seed", "3"])
        assert args.loads == [0.5, 1.0]
        assert args.horizon == 200.0
        assert args.seed == 3


class TestCommands:
    def test_example56(self, capsys):
        assert main(["example56"]) == 0
        out = capsys.readouterr().out
        assert "t3" in out
        assert "guarantees always honored: True" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--loads", "0.6", "--horizon", "200"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "proportional" in out

    def test_reserve_small(self, capsys):
        assert main(["reserve", "--horizon", "200"]) == 0
        out = capsys.readouterr().out
        assert "Ca" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "SLA" in out
        assert "<Service-Specific>" in out

    def test_quickstart_telemetry(self, capsys):
        assert main(["quickstart", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "quickstart: span trees" in out
        assert "quickstart: metrics snapshot" in out
        assert "repro_capacity_effective_timeweighted_mean" in out
        assert "handle-degradation" in out

    def test_telemetry_command_matches_the_flag(self, capsys):
        assert main(["telemetry"]) == 0
        out = capsys.readouterr().out
        assert "quickstart: span trees" in out

    def test_diagram(self, capsys):
        assert main(["diagram"]) == 0
        out = capsys.readouterr().out
        assert "Client" in out and "AQoS" in out and "Service" in out
        assert "QueryServices" in out
