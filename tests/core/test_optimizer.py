"""Tests for the revenue optimizer (repro.core.optimizer)."""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core.optimizer import (
    candidates_for,
    exact_optimize,
    greedy_optimize,
)
from repro.errors import AdmissionError
from repro.qos.classes import ServiceClass
from repro.qos.cost import PricingPolicy
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector


def make_services(specs, levels=3):
    policy = PricingPolicy()
    services = {}
    for index, (low, high) in enumerate(specs):
        key = f"svc-{index}"
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, low, high))
        services[key] = candidates_for(key, spec,
                                       ServiceClass.CONTROLLED_LOAD,
                                       policy, levels=levels)
    return services


class TestCandidates:
    def test_floor_first_and_monotone(self):
        services = make_services([(2, 8)], levels=4)
        candidates = services["svc-0"]
        assert candidates[0].level == 0
        assert candidates[0].demand.cpu == 2
        revenues = [c.revenue_rate for c in candidates]
        assert revenues == sorted(revenues)

    def test_empty_candidates_rejected(self):
        with pytest.raises(AdmissionError):
            greedy_optimize({"svc": []}, ResourceVector(cpu=10))


class TestGreedy:
    def test_everyone_at_best_when_capacity_abundant(self):
        services = make_services([(2, 8), (1, 4)])
        result = greedy_optimize(services, ResourceVector(cpu=100))
        assert result.feasible
        assert result.assignment["svc-0"].demand.cpu == 8
        assert result.assignment["svc-1"].demand.cpu == 4

    def test_everyone_at_floor_when_tight(self):
        services = make_services([(2, 8), (3, 9)])
        result = greedy_optimize(services, ResourceVector(cpu=5))
        assert result.feasible
        assert result.assignment["svc-0"].demand.cpu == 2
        assert result.assignment["svc-1"].demand.cpu == 3

    def test_infeasible_when_floors_do_not_fit(self):
        services = make_services([(4, 8), (4, 8)])
        result = greedy_optimize(services, ResourceVector(cpu=6))
        assert not result.feasible

    def test_capacity_respected(self):
        services = make_services([(1, 10), (1, 10), (1, 10)])
        result = greedy_optimize(services, ResourceVector(cpu=15))
        assert result.used.cpu <= 15 + 1e-9

    def test_revenue_spent_on_best_marginal_upgrade(self):
        # svc-0 earns per CPU like svc-1, but svc-1 upgrades are larger;
        # the greedy should still fill the budget.
        services = make_services([(1, 5), (1, 9)], levels=3)
        result = greedy_optimize(services, ResourceVector(cpu=10))
        assert result.used.cpu == pytest.approx(10.0)


class TestExact:
    def test_exact_matches_greedy_on_easy_instance(self):
        services = make_services([(2, 8), (1, 4)])
        capacity = ResourceVector(cpu=100)
        assert exact_optimize(services, capacity).revenue == \
            pytest.approx(greedy_optimize(services, capacity).revenue)

    def test_exact_beats_or_ties_greedy(self):
        services = make_services([(1, 7), (2, 6), (1, 9)], levels=4)
        capacity = ResourceVector(cpu=12)
        exact = exact_optimize(services, capacity)
        greedy = greedy_optimize(services, capacity)
        assert exact.revenue >= greedy.revenue - 1e-9

    def test_exact_infeasible_fallback(self):
        services = make_services([(4, 8), (4, 8)])
        result = exact_optimize(services, ResourceVector(cpu=6))
        assert not result.feasible

    def test_node_limit_enforced(self):
        services = make_services([(1, 10)] * 10, levels=5)
        with pytest.raises(AdmissionError):
            exact_optimize(services, ResourceVector(cpu=50), node_limit=5)


# ----------------------------------------------------------------------
# Property: heuristic is admissible and near-exact
# ----------------------------------------------------------------------

instance = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=8)),
    min_size=1, max_size=5)


@settings(max_examples=50, deadline=None)
@example(spans=[(1, 1), (1, 5)], capacity_cpu=5)  # greedy/exact = 0.6
@given(instance, st.integers(min_value=5, max_value=40))
def test_greedy_never_beats_exact_and_stays_feasible(spans, capacity_cpu):
    specs = [(low, low + extra) for low, extra in spans]
    services = make_services(specs, levels=3)
    capacity = ResourceVector(cpu=float(capacity_cpu))
    greedy = greedy_optimize(services, capacity)
    exact = exact_optimize(services, capacity)
    if greedy.feasible and exact.feasible:
        assert greedy.revenue <= exact.revenue + 1e-9
        assert greedy.used.cpu <= capacity_cpu + 1e-9
        # Greedy never does worse than leaving everyone at the floor.
        floors = sum(levels[0].revenue_rate
                     for levels in services.values())
        assert greedy.revenue >= floors - 1e-9
    else:
        assert greedy.feasible == exact.feasible


def test_greedy_is_near_optimal_on_a_fixed_battery():
    """The §5.3 heuristic is myopic: a small high-ratio upgrade can
    block a larger one (the pinned @example above reaches only 0.6 of
    optimal), so a universal 0.8 bound is false. What holds — and what
    the paper's revenue argument needs — is near-optimality in the
    aggregate, checked here on a deterministic instance battery."""
    shapes = [(1, 2), (1, 6), (2, 8), (1, 9), (3, 9), (4, 8)]
    ratios = []
    for first in shapes:
        for second in shapes:
            for capacity_cpu in (5, 8, 12, 20):
                services = make_services([first, second])
                capacity = ResourceVector(cpu=float(capacity_cpu))
                greedy = greedy_optimize(services, capacity)
                exact = exact_optimize(services, capacity)
                if not (greedy.feasible and exact.feasible):
                    continue
                ratios.append(greedy.revenue / exact.revenue)
    assert len(ratios) > 100
    assert min(ratios) >= 0.5
    assert sum(ratios) / len(ratios) >= 0.9


@settings(max_examples=30, deadline=None)
@given(instance)
def test_assignments_are_always_admissible_levels(spans):
    specs = [(low, low + extra) for low, extra in spans]
    services = make_services(specs, levels=3)
    result = greedy_optimize(services, ResourceVector(cpu=20))
    for key, candidate in result.assignment.items():
        assert candidate in services[key]
