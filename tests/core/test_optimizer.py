"""Tests for the revenue optimizer (repro.core.optimizer)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import (
    candidates_for,
    exact_optimize,
    greedy_optimize,
)
from repro.errors import AdmissionError
from repro.qos.classes import ServiceClass
from repro.qos.cost import PricingPolicy
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector


def make_services(specs, levels=3):
    policy = PricingPolicy()
    services = {}
    for index, (low, high) in enumerate(specs):
        key = f"svc-{index}"
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, low, high))
        services[key] = candidates_for(key, spec,
                                       ServiceClass.CONTROLLED_LOAD,
                                       policy, levels=levels)
    return services


class TestCandidates:
    def test_floor_first_and_monotone(self):
        services = make_services([(2, 8)], levels=4)
        candidates = services["svc-0"]
        assert candidates[0].level == 0
        assert candidates[0].demand.cpu == 2
        revenues = [c.revenue_rate for c in candidates]
        assert revenues == sorted(revenues)

    def test_empty_candidates_rejected(self):
        with pytest.raises(AdmissionError):
            greedy_optimize({"svc": []}, ResourceVector(cpu=10))


class TestGreedy:
    def test_everyone_at_best_when_capacity_abundant(self):
        services = make_services([(2, 8), (1, 4)])
        result = greedy_optimize(services, ResourceVector(cpu=100))
        assert result.feasible
        assert result.assignment["svc-0"].demand.cpu == 8
        assert result.assignment["svc-1"].demand.cpu == 4

    def test_everyone_at_floor_when_tight(self):
        services = make_services([(2, 8), (3, 9)])
        result = greedy_optimize(services, ResourceVector(cpu=5))
        assert result.feasible
        assert result.assignment["svc-0"].demand.cpu == 2
        assert result.assignment["svc-1"].demand.cpu == 3

    def test_infeasible_when_floors_do_not_fit(self):
        services = make_services([(4, 8), (4, 8)])
        result = greedy_optimize(services, ResourceVector(cpu=6))
        assert not result.feasible

    def test_capacity_respected(self):
        services = make_services([(1, 10), (1, 10), (1, 10)])
        result = greedy_optimize(services, ResourceVector(cpu=15))
        assert result.used.cpu <= 15 + 1e-9

    def test_revenue_spent_on_best_marginal_upgrade(self):
        # svc-0 earns per CPU like svc-1, but svc-1 upgrades are larger;
        # the greedy should still fill the budget.
        services = make_services([(1, 5), (1, 9)], levels=3)
        result = greedy_optimize(services, ResourceVector(cpu=10))
        assert result.used.cpu == pytest.approx(10.0)


class TestExact:
    def test_exact_matches_greedy_on_easy_instance(self):
        services = make_services([(2, 8), (1, 4)])
        capacity = ResourceVector(cpu=100)
        assert exact_optimize(services, capacity).revenue == \
            pytest.approx(greedy_optimize(services, capacity).revenue)

    def test_exact_beats_or_ties_greedy(self):
        services = make_services([(1, 7), (2, 6), (1, 9)], levels=4)
        capacity = ResourceVector(cpu=12)
        exact = exact_optimize(services, capacity)
        greedy = greedy_optimize(services, capacity)
        assert exact.revenue >= greedy.revenue - 1e-9

    def test_exact_infeasible_fallback(self):
        services = make_services([(4, 8), (4, 8)])
        result = exact_optimize(services, ResourceVector(cpu=6))
        assert not result.feasible

    def test_node_limit_enforced(self):
        services = make_services([(1, 10)] * 10, levels=5)
        with pytest.raises(AdmissionError):
            exact_optimize(services, ResourceVector(cpu=50), node_limit=5)


# ----------------------------------------------------------------------
# Property: heuristic is admissible and near-exact
# ----------------------------------------------------------------------

instance = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=8)),
    min_size=1, max_size=5)


@settings(max_examples=50, deadline=None)
@given(instance, st.integers(min_value=5, max_value=40))
def test_greedy_never_beats_exact_and_stays_feasible(spans, capacity_cpu):
    specs = [(low, low + extra) for low, extra in spans]
    services = make_services(specs, levels=3)
    capacity = ResourceVector(cpu=float(capacity_cpu))
    greedy = greedy_optimize(services, capacity)
    exact = exact_optimize(services, capacity)
    if greedy.feasible and exact.feasible:
        assert greedy.revenue <= exact.revenue + 1e-9
        assert greedy.used.cpu <= capacity_cpu + 1e-9
        # The paper's heuristic should be close to optimal on these
        # small single-dimension instances.
        assert greedy.revenue >= 0.8 * exact.revenue - 1e-9
    else:
        assert greedy.feasible == exact.feasible


@settings(max_examples=30, deadline=None)
@given(instance)
def test_assignments_are_always_admissible_levels(spans):
    specs = [(low, low + extra) for low, extra in spans]
    services = make_services(specs, levels=3)
    result = greedy_optimize(services, ResourceVector(cpu=20))
    for key, candidate in result.assignment.items():
        assert candidate in services[key]
