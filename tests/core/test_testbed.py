"""Tests for testbed wiring (repro.core.testbed)."""

from __future__ import annotations

import pytest

from repro.core.testbed import build_multidomain, build_testbed


class TestSingleDomain:
    def test_paper_proportions(self, testbed):
        assert testbed.machine.grid_nodes == 26
        assert (testbed.partition.cg, testbed.partition.ca,
                testbed.partition.cb) == (15.0, 6.0, 5.0)
        assert testbed.machine.total_nodes == 64

    def test_default_services_registered(self, testbed):
        names = {record.name for record in testbed.registry.records()}
        assert "simulation-service" in names
        assert len(names) == 3

    def test_sla_ids_look_like_the_paper(self, testbed):
        assert testbed.repository.next_id() == 1000

    def test_partition_must_sum_to_total(self):
        with pytest.raises(ValueError):
            build_testbed(total_cpu=26, guaranteed_cpu=10, adaptive_cpu=6,
                          best_effort_cpu=5)

    def test_custom_partition(self):
        testbed = build_testbed(total_cpu=40, guaranteed_cpu=20,
                                adaptive_cpu=10, best_effort_cpu=10)
        assert testbed.partition.total == 40

    def test_topology_has_paper_addresses(self, testbed):
        assert testbed.topology.site_by_address(
            "192.200.168.33").name == "siteA"
        assert testbed.topology.site_by_address(
            "135.200.50.101").name == "siteB"

    def test_determinism(self):
        a = build_testbed(seed=3)
        b = build_testbed(seed=3)
        assert a.rng.uniform(0, 1) == b.rng.uniform(0, 1)


class TestMultiDomain:
    def test_figure1_two_domains(self):
        world = build_multidomain(domains=2)
        assert set(world.brokers) == {"domain1", "domain2"}
        assert len(world.topology.links()) == 1

    def test_brokers_share_the_coordinator(self):
        world = build_multidomain(domains=3)
        for broker in world.brokers.values():
            assert broker.coordinator is world.coordinator

    def test_cross_domain_allocation_possible(self):
        world = build_multidomain(domains=2)
        allocation = world.coordinator.allocate("site1", "site2", 100.0,
                                                0, 50)
        assert len(allocation.segments) == 1
        allocation.release()

    def test_sla_id_ranges_disjoint(self):
        world = build_multidomain(domains=2)
        first = world.brokers["domain1"].repository.next_id()
        second = world.brokers["domain2"].repository.next_id()
        assert abs(first - second) >= 1000

    def test_at_least_one_domain_required(self):
        with pytest.raises(ValueError):
            build_multidomain(domains=0)
