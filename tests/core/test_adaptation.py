"""Tests for Algorithm 1's entry points (repro.core.adaptation)."""

from __future__ import annotations

import pytest

from repro.core.adaptation import AdaptationEngine
from repro.core.capacity import CapacityPartition
from repro.errors import AdmissionError
from repro.sim.trace import TraceRecorder


@pytest.fixture
def engine(partition):
    return AdaptationEngine(partition)


class TestAvailableGuaranteedResource:
    def test_matches_paper_condition(self, engine):
        # Σg(v) + g(u) <= Cg
        assert engine.available_guaranteed_resource(15)
        engine.admit_guaranteed("u1", 10)
        assert engine.available_guaranteed_resource(5)
        assert not engine.available_guaranteed_resource(6)


class TestNetCapacity:
    def test_positive_when_cg_covers_demand(self, engine):
        engine.admit_guaranteed("u1", 10)
        engine.allocate_guaranteed_resource("u1", 10)
        # Cn = Ca - max(0, entitled - Cg) = 6 - 0.
        assert engine.net_capacity() == pytest.approx(6.0)

    def test_reduced_by_overflow(self, engine):
        engine.admit_guaranteed("u1", 14)
        engine.allocate_guaranteed_resource("u1", 14)
        engine.partition.apply_failure(3)  # eff Cg = 12
        assert engine.net_capacity() == pytest.approx(4.0)

    def test_negative_means_guarantees_at_risk(self, engine):
        engine.admit_guaranteed("u1", 15)
        engine.allocate_guaranteed_resource("u1", 15)
        engine.partition.apply_failure(10)  # eff Cg = 5, overflow 10 > Ca
        assert engine.net_capacity() < 0


class TestAllocateGuaranteed:
    def test_within_commitment_fully_granted(self, engine):
        engine.admit_guaranteed("u1", 10)
        decision = engine.allocate_guaranteed_resource("u1", 8)
        assert decision.fully_granted
        assert not decision.adapted

    def test_excess_partially_granted_when_tight(self, engine):
        engine.admit_guaranteed("u1", 15)
        decision = engine.allocate_guaranteed_resource("u1", 30)
        assert decision.granted == pytest.approx(21.0)  # 15 + Ca
        assert not decision.fully_granted

    def test_adapt_flag_set_on_transfer(self, engine):
        engine.admit_guaranteed("u1", 14)
        engine.partition.apply_failure(3)
        decision = engine.allocate_guaranteed_resource("u1", 14)
        assert decision.adapted
        assert decision.fully_granted

    def test_preemption_reported(self, engine):
        engine.allocate_best_effort_resource("be", 26)
        engine.admit_guaranteed("u1", 10)
        decision = engine.allocate_guaranteed_resource("u1", 10)
        assert decision.preempted == pytest.approx(10.0)

    def test_unadmitted_user_rejected(self, engine):
        with pytest.raises(AdmissionError):
            engine.allocate_guaranteed_resource("ghost", 5)


class TestAllocateBestEffort:
    def test_strict_test_uses_idle_capacity(self, engine):
        assert engine.can_allocate_best_effort(26)
        assert not engine.can_allocate_best_effort(27)
        engine.admit_guaranteed("u1", 10)
        engine.allocate_guaranteed_resource("u1", 10)
        assert engine.can_allocate_best_effort(16)
        assert not engine.can_allocate_best_effort(17)

    def test_partial_grant_recorded(self, engine):
        decision = engine.allocate_best_effort_resource("be", 40)
        assert decision.granted == pytest.approx(26.0)
        assert not decision.fully_granted

    def test_release(self, engine):
        engine.allocate_best_effort_resource("be", 10)
        engine.release_best_effort("be")
        assert engine.partition.idle_capacity() == pytest.approx(26.0)


class TestCapacityChangeHook:
    def test_failure_and_repair_delegate(self, engine):
        engine.admit_guaranteed("u1", 14)
        engine.allocate_guaranteed_resource("u1", 14)
        report = engine.on_capacity_change(-3.0)
        assert report.adapt_transfer == pytest.approx(2.0)
        report = engine.on_capacity_change(3.0)
        assert report.adapt_transfer == 0.0


class TestTracing:
    def test_decisions_logged(self, partition):
        trace = TraceRecorder()
        engine = AdaptationEngine(partition, trace=trace)
        engine.admit_guaranteed("u1", 10)
        engine.allocate_guaranteed_resource("u1", 10)
        rows = trace.filter(category="adaptation")
        assert any("admitted guaranteed" in r.message for r in rows)
        assert any("guaranteed allocation" in r.message for r in rows)

    def test_decision_history_kept(self, engine):
        engine.admit_guaranteed("u1", 10)
        engine.allocate_guaranteed_resource("u1", 5)
        engine.allocate_best_effort_resource("be", 3)
        assert len(engine.decisions) == 2
