"""Unit tests for the broker gateway (repro.core.gateway).

The happy paths are covered by the Figure 5 integration tests; these
pin the protocol edge cases.
"""

from __future__ import annotations

import pytest

from repro.core.gateway import BrokerGateway, ClientStub
from repro.errors import MessageError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest
from repro.xmlmsg.bus import MessageBus
from repro.xmlmsg.document import element, subelement
from repro.xmlmsg.envelope import Envelope


@pytest.fixture
def world(testbed):
    bus = MessageBus(testbed.sim)
    gateway = BrokerGateway(testbed.broker, bus)
    return testbed, bus, gateway, ClientStub("client1", bus)


def request_for(client="client1", cpu=4):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=50.0)


class TestProtocolEdgeCases:
    def test_accept_unknown_negotiation(self, world):
        _testbed, bus, _gateway, _client = world
        body = element("Accept_Offer")
        subelement(body, "Negotiation-ID", "424242")
        with pytest.raises(MessageError):
            bus.request(Envelope(sender="client1", recipient="aqos",
                                 action="accept_offer", body=body))

    def test_double_accept_rejected(self, world):
        _testbed, bus, _gateway, client = world
        negotiation_id, _offers, _ = client.request_service(request_for())
        client.accept_offer(negotiation_id)
        with pytest.raises(MessageError):
            client.accept_offer(negotiation_id)

    def test_reject_then_accept_rejected(self, world):
        _testbed, _bus, _gateway, client = world
        negotiation_id, _offers, _ = client.request_service(request_for())
        client.reject_offer(negotiation_id)
        with pytest.raises(MessageError):
            client.accept_offer(negotiation_id)

    def test_custom_endpoint_name(self, testbed):
        bus = MessageBus(testbed.sim)
        BrokerGateway(testbed.broker, bus, endpoint_name="aqos-2")
        client = ClientStub("c", bus, gateway_name="aqos-2")
        negotiation_id, offers, reason = client.request_service(
            request_for())
        assert reason == ""
        assert offers

    def test_offer_index_selects_offer(self, testbed):
        from repro.qos.parameters import range_parameter
        bus = MessageBus(testbed.sim)
        BrokerGateway(testbed.broker, bus)
        client = ClientStub("c", bus)
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
        negotiation_id, offers, _ = client.request_service(
            ServiceRequest(client="c",
                           service_name="simulation-service",
                           service_class=ServiceClass.CONTROLLED_LOAD,
                           specification=spec, start=0.0, end=50.0))
        assert len(offers) == 2
        sla, failure = client.accept_offer(negotiation_id, offer_index=1)
        assert failure == ""
        assert sla.agreed_point[Dimension.CPU] == 2.0  # the floor offer

    def test_verify_unknown_sla(self, world):
        _testbed, _bus, _gateway, client = world
        with pytest.raises(Exception):
            client.verify_sla(999_999)

    def test_failure_reason_travels_back(self, world):
        _testbed, _bus, _gateway, client = world
        _id, offers, reason = client.request_service(
            request_for(cpu=25))  # over Cg
        assert offers == []
        assert reason != ""


class TestRenegotiationOverXml:
    def test_renegotiate_success(self, world):
        _testbed, _bus, _gateway, client = world
        negotiation_id, _offers, _ = client.request_service(
            request_for(cpu=10))
        sla, _ = client.accept_offer(negotiation_id)
        new_spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 4))
        updated, reason = client.renegotiate(sla.sla_id, new_spec)
        assert reason == ""
        assert updated.agreed_point[Dimension.CPU] == 4.0

    def test_renegotiate_refusal_reason(self, world):
        _testbed, _bus, _gateway, client = world
        negotiation_id, _offers, _ = client.request_service(
            request_for(cpu=10))
        sla, _ = client.accept_offer(negotiation_id)
        impossible = QoSSpecification.of(
            exact_parameter(Dimension.CPU, 30))
        updated, reason = client.renegotiate(sla.sla_id, impossible)
        assert updated is None
        assert reason != ""

    def test_renegotiate_missing_specification_is_clean_error(self, world):
        _testbed, bus, _gateway, _client = world
        body = element("Renegotiate")
        subelement(body, "SLA-ID", "1")
        with pytest.raises(MessageError):
            bus.request(Envelope(sender="client1", recipient="aqos",
                                 action="renegotiate", body=body))

    def test_renegotiate_with_budget(self, world):
        _testbed, _bus, _gateway, client = world
        negotiation_id, _offers, _ = client.request_service(
            request_for(cpu=4))
        sla, _ = client.accept_offer(negotiation_id)
        bigger = QoSSpecification.of(exact_parameter(Dimension.CPU, 8))
        updated, reason = client.renegotiate(sla.sla_id, bigger,
                                             budget_rate=0.5)
        assert updated is None
        assert "budget" in reason
