"""Tests for AQoS-to-AQoS request forwarding (Figure 1 peering)."""

from __future__ import annotations

import pytest

from repro.core.testbed import build_multidomain, build_testbed
from repro.errors import SLAError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest


def compute_request(client, cpu, end=100.0):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=end)


class TestForwarding:
    def test_overflow_lands_on_the_peer(self):
        world = build_multidomain(domains=2)
        broker1 = world.brokers["domain1"]
        broker2 = world.brokers["domain2"]
        # Each domain has Cg = 15 (26 * 0.6 rounded). Three 7-node
        # sessions: two fit domain1, the third must overflow to domain2.
        outcomes = [broker1.request_service(compute_request(f"c{i}", 7))
                    for i in range(3)]
        assert all(outcome.accepted for outcome in outcomes)
        assert len(broker1.repository.live()) == 2
        assert len(broker2.repository.live()) == 1

    def test_no_loop_when_everyone_is_full(self):
        world = build_multidomain(domains=2)
        broker1 = world.brokers["domain1"]
        for i in range(4):  # 28 > 15+15 committed across both domains
            broker1.request_service(compute_request(f"fill{i}", 7))
        outcome = broker1.request_service(compute_request("extra", 7))
        assert not outcome.accepted  # refused everywhere, no recursion

    def test_best_effort_forwarding(self):
        world = build_multidomain(domains=2)
        broker1 = world.brokers["domain1"]
        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 26))
        request = ServiceRequest(client="be",
                                 service_name="*",
                                 service_class=ServiceClass.BEST_EFFORT,
                                 specification=spec, start=0.0, end=50.0)
        assert broker1.request_service(request).accepted
        # Domain1 is now fully borrowed; the identical request is
        # served by domain2.
        second = broker1.request_service(ServiceRequest(
            client="be2", service_name="*",
            service_class=ServiceClass.BEST_EFFORT,
            specification=spec, start=0.0, end=50.0))
        assert second.accepted
        assert world.brokers["domain2"].stats.best_effort_granted == 1

    def test_forwarding_traced(self):
        world = build_multidomain(domains=2)
        broker1 = world.brokers["domain1"]
        for i in range(3):
            broker1.request_service(compute_request(f"c{i}", 7))
        rows = world.trace.filter(category="broker",
                                  contains="forwarding")
        assert rows

    def test_self_peering_rejected(self, testbed):
        with pytest.raises(SLAError):
            testbed.broker.add_peer(testbed.broker)

    def test_peer_registration_idempotent(self):
        world = build_multidomain(domains=2)
        broker1 = world.brokers["domain1"]
        broker2 = world.brokers["domain2"]
        broker1.add_peer(broker2)  # already registered by the testbed
        assert broker1._peers.count(broker2) == 1

    def test_standalone_broker_still_refuses(self, testbed):
        first = testbed.broker.request_service(
            compute_request("a", 10))
        second = testbed.broker.request_service(
            compute_request("b", 10))
        assert first.accepted
        assert not second.accepted