"""Stateful property test: the capacity partition under arbitrary
operation sequences.

A hypothesis rule-based state machine performs random interleavings of
admissions, demand changes, removals, best-effort churn, failures and
repairs, checking the Algorithm 1 invariants after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.capacity import CapacityPartition

CG, CA, CB, BE_MIN = 15.0, 6.0, 5.0, 2.0
_EPSILON = 1e-6


class PartitionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.partition = CapacityPartition(CG, CA, CB,
                                           best_effort_min=BE_MIN)
        self.guaranteed: dict = {}
        self.best_effort: set = set()
        self.counter = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(committed=st.integers(min_value=1, max_value=8))
    def admit(self, committed):
        self.counter += 1
        user = f"g{self.counter}"
        if self.partition.available_guaranteed_resource(committed):
            self.partition.admit_guaranteed(user, committed)
            self.guaranteed[user] = committed
        else:
            with pytest.raises(Exception):
                self.partition.admit_guaranteed(user, committed)

    @precondition(lambda self: self.guaranteed)
    @rule(factor=st.floats(min_value=0.0, max_value=2.5,
                           allow_nan=False),
          index=st.integers(min_value=0, max_value=10**6))
    def set_demand(self, factor, index):
        user = sorted(self.guaranteed)[index % len(self.guaranteed)]
        self.partition.set_guaranteed_demand(
            user, self.guaranteed[user] * factor)

    @precondition(lambda self: self.guaranteed)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def remove(self, index):
        user = sorted(self.guaranteed)[index % len(self.guaranteed)]
        self.partition.remove_guaranteed(user)
        del self.guaranteed[user]

    @rule(demand=st.integers(min_value=0, max_value=30))
    def best_effort_churn(self, demand):
        self.counter += 1
        user = f"b{self.counter % 5}"
        self.partition.set_best_effort_demand(user, demand)
        if demand > 0:
            self.best_effort.add(user)
        else:
            self.best_effort.discard(user)

    @rule(amount=st.floats(min_value=0.0, max_value=26.0,
                           allow_nan=False))
    def fail(self, amount):
        self.partition.apply_failure(amount)

    @rule()
    def repair_all(self):
        self.partition.apply_repair()

    # ------------------------------------------------------------------
    # Invariants (checked after every rule)
    # ------------------------------------------------------------------

    @invariant()
    def never_overallocated(self):
        effective = sum(self.partition.effective_sizes())
        assert self.partition.total_served() <= effective + _EPSILON

    @invariant()
    def conservation(self):
        effective = sum(self.partition.effective_sizes())
        total = self.partition.total_served() \
            + self.partition.idle_capacity()
        assert total == pytest.approx(effective, abs=_EPSILON)

    @invariant()
    def served_never_exceeds_demand(self):
        for holding in self.partition.guaranteed_holdings():
            assert holding.served <= holding.demand + _EPSILON
        for holding in self.partition.best_effort_holdings():
            assert holding.served <= holding.demand + _EPSILON

    @invariant()
    def commitments_respect_cg(self):
        assert self.partition.committed_total() <= CG + _EPSILON

    @invariant()
    def sourcing_adds_up(self):
        for holding in self.partition.guaranteed_holdings():
            total = holding.from_g + holding.from_a + holding.from_b
            assert total == pytest.approx(holding.served, abs=_EPSILON)

    @invariant()
    def shortfall_only_when_physically_unavoidable(self):
        report = self.partition.last_report
        if report is None:
            return
        eff_g, eff_a, eff_b = self.partition.effective_sizes()
        raidable = eff_g + eff_a + max(0.0, eff_b - min(BE_MIN, eff_b))
        entitled = sum(h.entitled
                       for h in self.partition.guaranteed_holdings())
        if report.shortfalls:
            assert entitled > raidable - _EPSILON
        else:
            assert entitled <= raidable + _EPSILON


PartitionMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
TestPartitionStateMachine = PartitionMachine.TestCase
