"""Focused tests for the scenario engine (repro.core.scenarios).

The broker tests exercise the scenarios end-to-end; these pin the
individual decision rules.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.monitoring.notifications import DegradationNotice
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, SlaStatus
from repro.sla.negotiation import ServiceRequest


def cl_request(client, floor, best, **options):
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, floor, best))
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=500.0,
                          adaptation=AdaptationOptions(**options))


def g_request(client, cpu, end=500.0, **options):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=end,
                          adaptation=AdaptationOptions(**options))


class TestScenario1Ordering:
    def test_squeeze_preferred_over_termination(self, testbed):
        broker = testbed.broker
        squeezable = broker.request_service(
            cl_request("squeezable", 1, 12, accept_degradation=True))
        terminable = broker.request_service(
            cl_request("terminable", 4, 4, accept_termination=True))
        filler = broker.request_service(g_request("filler", 9))
        assert all(o.accepted for o in (squeezable, terminable, filler))
        # slot: 12 + 4 + 9 = 25 of 26. New guaranteed 1-CPU... needs
        # nothing; ask for cpu=5: commitments 1+4+9+... wait: 1+4+9=14,
        # +1 = 15 fits. Squeeze of 'squeezable' (12->1) frees 11.
        newcomer = broker.request_service(g_request("new", 1))
        assert newcomer.accepted
        # The squeezable session was degraded; the terminable one lives.
        assert terminable.sla.status is SlaStatus.ACTIVE

    def test_cheapest_terminable_goes_first(self, testbed):
        broker = testbed.broker
        cheap = broker.request_service(
            cl_request("cheap", 3, 3, accept_termination=True))
        pricey = broker.request_service(
            g_request("pricey", 8, accept_termination=True))
        filler = broker.request_service(g_request("filler", 4))
        assert all(o.accepted for o in (cheap, pricey, filler))
        # Commitments 3+8+4=15 = Cg; a new guaranteed 3 needs 3 units
        # of commitment freed: the cheap session is terminated first.
        newcomer = broker.request_service(g_request("new", 3))
        assert newcomer.accepted
        assert cheap.sla.status is SlaStatus.TERMINATED
        assert pricey.sla.status is SlaStatus.ACTIVE

    def test_guaranteed_sessions_never_squeezed(self, testbed):
        broker = testbed.broker
        # A guaranteed session that does not accept termination is
        # untouchable: its class pins the operating point (Section 5.1).
        rigid = broker.request_service(g_request("rigid", 10))
        impossible = broker.request_service(g_request("new", 14))
        assert not impossible.accepted
        assert rigid.sla.status is SlaStatus.ACTIVE
        assert not rigid.sla.is_degraded()
        holding = broker.partition_holding(rigid.sla.sla_id)
        assert holding.served == 10.0

    def test_controlled_load_range_is_provider_flexibility(self, testbed):
        broker = testbed.broker
        # The CL class contract lets the provider move the point within
        # the agreed range even without explicit degradation consent
        # (the floor was negotiated into the alternatives at offer
        # time); the session is squeezed but never below its floor.
        session = broker.request_service(cl_request("cl", 2, 10))
        broker.scenarios.free_capacity_for(20.0, 0.0)
        assert session.sla.status is SlaStatus.ACTIVE
        assert session.sla.delivered_point[Dimension.CPU] == 2.0
        assert session.sla.specification.admits(
            session.sla.delivered_point)

    def test_alternative_points_used_for_squeeze(self, testbed):
        broker = testbed.broker
        alternative = {Dimension.CPU: 2.0}
        outcome = broker.request_service(cl_request(
            "alt", 2, 12, accept_degradation=True,
            alternative_points=(alternative,)))
        assert outcome.accepted
        broker.scenarios.free_capacity_for(20.0, 0.0)
        assert outcome.sla.delivered_point == alternative


class TestScenario3Rules:
    def test_unknown_sla_ignored(self, testbed):
        testbed.broker.scenarios.on_degradation(
            DegradationNotice(sla_id=424242, time=0.0, source="nrm"))

    def test_closed_session_ignored(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(g_request("a", 5))
        broker.terminate_session(outcome.sla.sla_id)
        before = broker.scenarios.stats.terminal_degradations
        broker.scenarios.on_degradation(DegradationNotice(
            sla_id=outcome.sla.sla_id, time=0.0, source="nrm"))
        assert broker.scenarios.stats.terminal_degradations == before

    def test_shortfall_restored_by_squeezing_others(self, testbed):
        broker = testbed.broker
        victim = broker.request_service(g_request("victim", 14))
        spongy = broker.request_service(
            cl_request("spongy", 1, 10, accept_degradation=True))
        assert victim.accepted and spongy.accepted
        # Fail 12 nodes: eff Cg=3, Ca=6, Cb=5 (min 2). Entitled 14+1=15
        # vs raidable 3+6+3=12: shortfall appears and Scenario 3 runs.
        testbed.machine.fail_nodes(12)
        # The spongy session was squeezed toward its floor.
        assert spongy.sla.delivered_point[Dimension.CPU] < 10.0


class TestScenario2Accounting:
    def test_stats_track_restorations_and_upgrades(self, testbed):
        broker = testbed.broker
        session = broker.request_service(
            cl_request("s", 2, 8, accept_degradation=True))
        broker.apply_point(session.sla, session.sla.floor_point())
        broker.scenarios.on_service_termination()
        assert broker.scenarios.stats.restorations >= 1
        assert not session.sla.is_degraded()
