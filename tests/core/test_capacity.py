"""Tests for the capacity partition (repro.core.capacity).

This is Algorithm 1's engine; the invariants here are the paper's
claims: guarantees are honored from ``Cg + Ca`` (+ ``Cb`` above the
protected minimum) under failures, best-effort work soaks idle
capacity, and capacity is conserved.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capacity import CapacityPartition
from repro.errors import AdmissionError


class TestAdmission:
    def test_admission_against_nominal_cg(self, partition):
        assert partition.available_guaranteed_resource(15)
        partition.admit_guaranteed("u1", 10)
        assert partition.available_guaranteed_resource(5)
        assert not partition.available_guaranteed_resource(6)

    def test_over_commitment_rejected(self, partition):
        partition.admit_guaranteed("u1", 10)
        with pytest.raises(AdmissionError):
            partition.admit_guaranteed("u2", 6)

    def test_duplicate_user_rejected(self, partition):
        partition.admit_guaranteed("u1", 5)
        with pytest.raises(AdmissionError):
            partition.admit_guaranteed("u1", 5)

    def test_nonpositive_commitment_rejected(self, partition):
        with pytest.raises(AdmissionError):
            partition.admit_guaranteed("u1", 0)

    def test_demand_for_unknown_user_rejected(self, partition):
        with pytest.raises(AdmissionError):
            partition.set_guaranteed_demand("ghost", 5)


class TestTier1Guarantees:
    def test_entitled_demand_served_from_cg(self, partition):
        partition.admit_guaranteed("u1", 10)
        report = partition.set_guaranteed_demand("u1", 10)
        holding = partition.guaranteed_holding("u1")
        assert holding.served == 10
        assert holding.from_g == 10
        assert report.guarantees_honored

    def test_failure_triggers_adapt_from_ca(self, partition):
        partition.admit_guaranteed("u1", 14)
        partition.set_guaranteed_demand("u1", 14)
        report = partition.apply_failure(3)  # Cg 15 -> 12
        assert report.guarantees_honored
        assert report.adapt_transfer == pytest.approx(2.0)
        holding = partition.guaranteed_holding("u1")
        assert holding.from_g == pytest.approx(12.0)
        assert holding.from_a == pytest.approx(2.0)

    def test_massive_failure_raids_cb_down_to_minimum(self, partition):
        # best_effort_min=2 protects 2 of Cb's 5 units.
        partition.admit_guaranteed("u1", 15)
        partition.set_guaranteed_demand("u1", 15)
        report = partition.apply_failure(15)  # Cg 15->0, Ca survives
        holding = partition.guaranteed_holding("u1")
        # 6 from Ca + 3 from Cb (5 minus the protected 2) = 9 served.
        assert holding.from_a == pytest.approx(6.0)
        assert holding.from_b == pytest.approx(3.0)
        assert report.shortfalls["u1"] == pytest.approx(6.0)

    def test_repair_restores_cg_sourcing(self, partition):
        partition.admit_guaranteed("u1", 14)
        partition.set_guaranteed_demand("u1", 14)
        partition.apply_failure(3)
        report = partition.apply_repair()
        assert report.adapt_transfer == 0.0
        assert partition.guaranteed_holding("u1").from_g == 14.0


class TestTier2Excess:
    def test_excess_served_from_adaptive_headroom(self, partition):
        partition.admit_guaranteed("u1", 4)
        partition.set_guaranteed_demand("u1", 9)  # 5 above commitment
        holding = partition.guaranteed_holding("u1")
        assert holding.served == 9.0
        assert holding.entitled == 4.0

    def test_excess_never_raids_protected_cb(self, partition):
        partition.admit_guaranteed("u1", 15)
        partition.set_guaranteed_demand("u1", 40)  # huge excess
        holding = partition.guaranteed_holding("u1")
        # 15 entitled + at most Ca=6 of excess; Cb untouched by tier 2.
        assert holding.served == pytest.approx(21.0)

    def test_excess_yields_to_other_guarantees(self, partition):
        partition.admit_guaranteed("hog", 5)
        partition.set_guaranteed_demand("hog", 20)  # soaks Cg + Ca
        partition.admit_guaranteed("new", 10)
        report = partition.set_guaranteed_demand("new", 10)
        assert report.guarantees_honored
        assert partition.guaranteed_holding("new").served == 10.0


class TestTier3BestEffort:
    def test_best_effort_soaks_idle_capacity(self, partition):
        report = partition.set_best_effort_demand("be", 26)
        assert partition.best_effort_holding("be").served == 26.0
        assert partition.idle_capacity() == 0.0

    def test_borrowed_capacity_is_preempted(self, partition):
        partition.set_best_effort_demand("be", 26)
        partition.admit_guaranteed("u1", 10)
        report = partition.set_guaranteed_demand("u1", 10)
        assert report.preempted.get("be") == pytest.approx(10.0)
        assert partition.best_effort_holding("be").served == 16.0

    def test_fcfs_among_best_effort(self, partition):
        partition.set_best_effort_demand("first", 20)
        partition.set_best_effort_demand("second", 20)
        assert partition.best_effort_holding("first").served == 20.0
        assert partition.best_effort_holding("second").served == 6.0

    def test_zero_demand_removes_user(self, partition):
        partition.set_best_effort_demand("be", 5)
        partition.set_best_effort_demand("be", 0)
        with pytest.raises(AdmissionError):
            partition.best_effort_holding("be")


class TestRemoval:
    def test_removal_frees_capacity_for_borrowers(self, partition):
        partition.admit_guaranteed("u1", 10)
        partition.set_guaranteed_demand("u1", 10)
        partition.set_best_effort_demand("be", 26)
        assert partition.best_effort_holding("be").served == 16.0
        partition.remove_guaranteed("u1")
        assert partition.best_effort_holding("be").served == 26.0

    def test_remove_unknown_rejected(self, partition):
        with pytest.raises(AdmissionError):
            partition.remove_guaranteed("ghost")


class TestValidation:
    def test_negative_pools_rejected(self):
        with pytest.raises(AdmissionError):
            CapacityPartition(-1, 6, 5)

    def test_minimum_above_cb_rejected(self):
        with pytest.raises(AdmissionError):
            CapacityPartition(15, 6, 5, best_effort_min=6)

    def test_bad_failure_order_rejected(self):
        with pytest.raises(AdmissionError):
            CapacityPartition(15, 6, 5, failure_order=("g", "g", "b"))

    def test_failure_order_controls_absorption(self):
        partition = CapacityPartition(15, 6, 5,
                                      failure_order=("b", "a", "g"))
        partition.apply_failure(7)
        eff_g, eff_a, eff_b = partition.effective_sizes()
        assert (eff_g, eff_a, eff_b) == (15.0, 4.0, 0.0)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

commitments = st.lists(st.integers(min_value=1, max_value=6),
                       min_size=0, max_size=4)
demand_factors = st.lists(st.floats(min_value=0.0, max_value=3.0,
                                    allow_nan=False),
                          min_size=4, max_size=4)
be_demands = st.lists(st.integers(min_value=0, max_value=30),
                      min_size=0, max_size=3)
failure_amounts = st.floats(min_value=0.0, max_value=26.0, allow_nan=False)


@settings(max_examples=80, deadline=None)
@given(commitments, demand_factors, be_demands, failure_amounts)
def test_partition_invariants(commits, factors, bes, failed):
    """Conservation + never-overallocate + floor protection, under any
    mix of admissions, demands, borrowers and failures."""
    partition = CapacityPartition(15, 6, 5, best_effort_min=2)
    admitted = []
    for index, commitment in enumerate(commits):
        user = f"g{index}"
        if partition.available_guaranteed_resource(commitment):
            partition.admit_guaranteed(user, commitment)
            admitted.append((user, commitment))
    for (user, commitment), factor in zip(admitted, factors):
        partition.set_guaranteed_demand(user, commitment * factor)
    for index, demand in enumerate(bes):
        partition.set_best_effort_demand(f"b{index}", demand)
    partition.apply_failure(failed)
    report = partition.rebalance()

    effective_total = sum(partition.effective_sizes())
    # 1. Never allocate more than effective capacity.
    assert partition.total_served() <= effective_total + 1e-6
    # 2. Conservation: served + idle == effective capacity when demand
    #    saturates, and never exceeds it otherwise.
    assert partition.total_served() + partition.idle_capacity() == \
        pytest.approx(effective_total, abs=1e-6)
    # 3. Nobody is served more than they demanded.
    for holding in partition.guaranteed_holdings():
        assert holding.served <= holding.demand + 1e-9
        assert holding.from_g + holding.from_a + holding.from_b == \
            pytest.approx(holding.served, abs=1e-9)
    for holding in partition.best_effort_holdings():
        assert holding.served <= holding.demand + 1e-9
    # 4. Shortfalls only when the entitled total genuinely exceeds the
    #    raidable capacity (everything but the protected Cb minimum).
    entitled_total = sum(h.entitled for h in partition.guaranteed_holdings())
    eff_g, eff_a, eff_b = partition.effective_sizes()
    raidable = eff_g + eff_a + max(0.0, eff_b - min(2.0, eff_b))
    if report.shortfalls:
        assert entitled_total > raidable - 1e-6
    else:
        assert entitled_total <= raidable + 1e-6


@settings(max_examples=50, deadline=None)
@given(failure_amounts)
def test_failure_repair_round_trip(failed):
    """A failure followed by full repair restores the initial state."""
    partition = CapacityPartition(15, 6, 5, best_effort_min=2)
    partition.admit_guaranteed("u", 10)
    partition.set_guaranteed_demand("u", 10)
    partition.set_best_effort_demand("b", 16)
    before = partition.snapshot()
    partition.apply_failure(failed)
    partition.apply_repair()
    assert partition.snapshot() == before
