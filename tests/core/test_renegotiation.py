"""Tests for mid-session QoS re-negotiation (Figure 3's Active-phase
renegotiation function)."""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions
from repro.sla.lifecycle import QoSFunction
from repro.sla.negotiation import ServiceRequest


def establish(testbed, cpu=6, client="alice", service_class=None,
              floor=None):
    service_class = service_class or ServiceClass.GUARANTEED
    if service_class is ServiceClass.CONTROLLED_LOAD:
        spec = QoSSpecification.of(
            range_parameter(Dimension.CPU, floor or 2, cpu))
    else:
        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    outcome = testbed.broker.request_service(ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=service_class, specification=spec,
        start=0.0, end=500.0,
        adaptation=AdaptationOptions(accept_degradation=True)))
    assert outcome.accepted, outcome.reason
    return outcome


def spec_of(cpu):
    return QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))


class TestGrow:
    def test_grow_within_capacity(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=6)
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                spec_of(12))
        assert ok, reason
        sla = outcome.sla
        assert sla.agreed_point[Dimension.CPU] == 12.0
        holding = broker.partition_holding(sla.sla_id)
        assert holding.committed == 12.0
        assert holding.served == 12.0
        # The compute reservation was resized too.
        assert testbed.compute_rm.available(1, 2).cpu == 14.0

    def test_grow_past_cg_refused(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=6)
        establish(testbed, cpu=8, client="bob")
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                spec_of(8))  # 8+8 > 15
        assert not ok
        assert "Cg" in reason
        assert outcome.sla.agreed_point[Dimension.CPU] == 6.0
        assert broker.partition_holding(
            outcome.sla.sla_id).committed == 6.0

    def test_grow_triggers_scenario1_squeeze(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=4)
        elastic = establish(testbed, cpu=14, client="elastic",
                            service_class=ServiceClass.CONTROLLED_LOAD,
                            floor=1)
        # Slot table: 4 + 14 = 18 of 26; growing to 11 needs 7 > 8 free?
        # free = 8, delta 7 fits — push further: grow to 12 (delta 8).
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                spec_of(12))
        assert ok, reason
        assert broker.partition_holding(outcome.sla.sla_id).served == 12.0

    def test_budget_constraint(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=6)
        ok, reason = broker.renegotiate_session(
            outcome.sla.sla_id, spec_of(12), budget_rate=1.0)
        assert not ok
        assert "budget" in reason


class TestShrink:
    def test_shrink_always_fits_and_reprices(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=12)
        rate_before = outcome.sla.price_rate
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                spec_of(4))
        assert ok, reason
        assert outcome.sla.price_rate < rate_before
        assert broker.partition_holding(outcome.sla.sla_id).committed == 4.0
        assert testbed.compute_rm.available(1, 2).cpu == 22.0

    def test_freed_capacity_usable_by_others(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=12)
        broker.renegotiate_session(outcome.sla.sla_id, spec_of(4))
        newcomer = establish(testbed, cpu=10, client="carol")
        assert newcomer.accepted


class TestSemantics:
    def test_session_records_renegotiation_function(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed)
        broker.renegotiate_session(outcome.sla.sla_id, spec_of(8))
        assert QoSFunction.RENEGOTIATION in \
            outcome.session.functions_performed()

    def test_accounting_rate_steps_at_renegotiation(self, testbed):
        broker = testbed.broker
        sim = testbed.sim
        outcome = establish(testbed, cpu=10)
        rate_initial = outcome.sla.price_rate
        sim.run(until=10.0)
        ok, _ = broker.renegotiate_session(outcome.sla.sla_id, spec_of(5))
        assert ok
        sim.run(until=20.0)
        account = broker.ledger.account(outcome.sla.sla_id)
        expected = rate_initial * 10.0 + outcome.sla.price_rate * 10.0
        assert account.gross_revenue(sim.now) == pytest.approx(expected)

    def test_controlled_load_commitment_follows_new_floor(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=8,
                            service_class=ServiceClass.CONTROLLED_LOAD,
                            floor=2)
        new_spec = QoSSpecification.of(
            range_parameter(Dimension.CPU, 4, 10))
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                new_spec)
        assert ok, reason
        assert broker.partition_holding(outcome.sla.sla_id).committed == 4.0
        assert outcome.sla.agreed_point[Dimension.CPU] == 10.0

    def test_inactive_session_refused(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed)
        broker.terminate_session(outcome.sla.sla_id)
        ok, reason = broker.renegotiate_session(outcome.sla.sla_id,
                                                spec_of(4))
        assert not ok
        assert "not active" in reason

    def test_unknown_sla_refused(self, testbed):
        ok, reason = testbed.broker.renegotiate_session(
            999_999, spec_of(4))
        assert not ok

    def test_failure_leaves_everything_unchanged(self, testbed):
        broker = testbed.broker
        outcome = establish(testbed, cpu=6)
        before = dict(outcome.sla.agreed_point)
        committed_before = broker.partition_holding(
            outcome.sla.sla_id).committed
        ok, _ = broker.renegotiate_session(outcome.sla.sla_id,
                                           spec_of(30))  # impossible
        assert not ok
        assert outcome.sla.agreed_point == before
        assert broker.partition_holding(
            outcome.sla.sla_id).committed == committed_before
