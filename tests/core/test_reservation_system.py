"""Tests for the Reservation System (repro.core.reservation_system)."""

from __future__ import annotations

import pytest

from repro.core.reservation_system import ReservationSystem
from repro.errors import CapacityError, NetworkError, ReservationError
from repro.gara.reservation import ReservationState
from repro.network.nrm import NetworkResourceManager
from repro.network.topology import Topology
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector
from repro.resources.compute import ComputeResourceManager
from repro.resources.machine import Machine
from repro.sla.document import NetworkDemand, ServiceSLA
from repro.units import parse_bound


@pytest.fixture
def world(sim):
    machine = Machine("m", 32, grid_nodes=26, memory_mb=10240,
                      disk_mb=50000)
    compute = ComputeResourceManager(sim, machine)
    topology = Topology()
    topology.add_site("siteA", "d1", address="192.200.168.33")
    topology.add_site("siteB", "d1", address="135.200.50.101")
    topology.add_link("siteA", "siteB", 622.0)
    nrm = NetworkResourceManager(sim, topology, "d1")
    rs = ReservationSystem(sim, compute, nrm=nrm)
    return sim, compute, nrm, rs


def make_sla(cpu=10, bandwidth=None, sla_id=1, end=100.0):
    parameters = [exact_parameter(Dimension.CPU, cpu),
                  exact_parameter(Dimension.MEMORY_MB, 1024)]
    network = None
    if bandwidth is not None:
        parameters.append(exact_parameter(Dimension.BANDWIDTH_MBPS,
                                          bandwidth))
        network = NetworkDemand("135.200.50.101", "192.200.168.33",
                                bandwidth, parse_bound("LessThan 10%"))
    spec = QoSSpecification.from_iterable(parameters)
    return ServiceSLA(sla_id=sla_id, client="c", service_name="svc",
                      service_class=ServiceClass.GUARANTEED,
                      specification=spec, agreed_point=spec.best_point(),
                      start=0.0, end=end, network=network)


class TestCoAllocation:
    def test_compute_and_network_booked_together(self, world):
        _sim, compute, nrm, rs = world
        composite = rs.reserve(make_sla(cpu=10, bandwidth=100.0))
        assert composite.compute_handle is not None
        assert composite.network_booking is not None
        assert compute.available(0, 100).cpu == 16
        assert nrm.available_bandwidth("siteB", "siteA", 0, 100) == 522.0

    def test_network_refusal_rolls_back_compute(self, world):
        _sim, compute, _nrm, rs = world
        composite = rs.reserve(make_sla(cpu=5, bandwidth=600.0))
        with pytest.raises(CapacityError):
            rs.reserve(make_sla(cpu=5, bandwidth=100.0, sla_id=2))
        # The second SLA's compute leg must have been rolled back.
        assert compute.available(0, 100).cpu == 21
        rs.cancel(composite)

    def test_compute_refusal_stops_early(self, world):
        _sim, _compute, nrm, rs = world
        with pytest.raises(CapacityError):
            rs.reserve(make_sla(cpu=30, bandwidth=10.0))
        assert nrm.available_bandwidth("siteB", "siteA", 0, 100) == 622.0


class TestConfirmProtocol:
    def test_confirm_commits(self, world):
        _sim, compute, _nrm, rs = world
        composite = rs.reserve(make_sla())
        rs.confirm(composite)
        reservation = compute.gara.reservation_status(
            composite.compute_handle)
        assert reservation.state is ReservationState.COMMITTED

    def test_unconfirmed_auto_cancels_on_timeout(self, world):
        sim, compute, _nrm, rs = world
        composite = rs.reserve(make_sla())
        sim.run(until=compute.gara.confirm_timeout + 1.0)
        reservation = compute.gara.reservation_status(
            composite.compute_handle)
        assert reservation.state is ReservationState.CANCELLED

    def test_confirm_after_cancel_rejected(self, world):
        _sim, _compute, _nrm, rs = world
        composite = rs.reserve(make_sla())
        rs.cancel(composite)
        with pytest.raises(ReservationError):
            rs.confirm(composite)


class TestCancelAndModify:
    def test_cancel_releases_both_legs(self, world):
        _sim, compute, nrm, rs = world
        composite = rs.reserve(make_sla(cpu=10, bandwidth=100.0))
        rs.cancel(composite)
        assert compute.available(0, 100).cpu == 26
        assert nrm.available_bandwidth("siteB", "siteA", 0, 100) == 622.0

    def test_cancel_is_idempotent(self, world):
        _sim, _compute, _nrm, rs = world
        composite = rs.reserve(make_sla())
        rs.cancel(composite)
        rs.cancel(composite)

    def test_modify_compute_resizes(self, world):
        _sim, compute, _nrm, rs = world
        composite = rs.reserve(make_sla(cpu=10))
        rs.confirm(composite)
        rs.modify_compute(composite,
                          ResourceVector(cpu=4, memory_mb=1024))
        assert compute.available(0, 100).cpu == 22

    def test_modify_without_compute_leg_rejected(self, world):
        _sim, _compute, _nrm, rs = world
        from repro.core.reservation_system import CompositeReservation
        with pytest.raises(ReservationError):
            rs.modify_compute(CompositeReservation(sla_id=9),
                              ResourceVector(cpu=1))


class TestCrashConsistencyRegressions:
    def test_failed_cancel_can_be_retried(self, world, monkeypatch):
        # Regression: ``cancelled`` used to be flipped before the legs
        # were released, so a cancel that died mid-teardown turned the
        # retry into a no-op and leaked the network booking.
        _sim, compute, nrm, rs = world
        composite = rs.reserve(make_sla(cpu=10, bandwidth=100.0))
        release = rs._release_network
        calls = []

        def flaky_release(booking):
            calls.append(booking)
            if len(calls) == 1:
                raise NetworkError("release message lost")
            release(booking)

        monkeypatch.setattr(rs, "_release_network", flaky_release)
        with pytest.raises(NetworkError):
            rs.cancel(composite)
        assert composite.cancelled is False
        rs.cancel(composite)  # the retry must actually tear down
        assert composite.cancelled is True
        assert nrm.available_bandwidth("siteB", "siteA", 0, 100) == 622.0
        assert compute.available(0, 100).cpu == 26

    def test_confirm_commits_network_booking(self, world):
        # Regression: confirm committed the GARA leg but left the
        # network booking uncommitted, so post-crash reconciliation
        # could not tell a confirmed composite from a temporary one.
        _sim, _compute, _nrm, rs = world
        composite = rs.reserve(make_sla(cpu=4, bandwidth=50.0))
        assert composite.network_booking.committed is False
        rs.confirm(composite)
        assert composite.network_booking.committed is True
        rs.confirm(composite)  # idempotent re-delivery stays committed
        assert composite.network_booking.committed is True
