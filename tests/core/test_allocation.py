"""Tests for the allocation manager (repro.core.allocation)."""

from __future__ import annotations

import pytest

from repro.core.allocation import AllocationManager
from repro.core.reservation_system import CompositeReservation
from repro.errors import SLAError
from repro.sla.lifecycle import QoSSession


class FakeFlow:
    def __init__(self, flow_id):
        self.flow_id = flow_id


class TestSessions:
    def test_open_get_close(self):
        manager = AllocationManager()
        resources = manager.open_session(1, QoSSession(session_id=1))
        assert manager.get(1) is resources
        assert manager.has(1)
        manager.close_session(1)
        assert not manager.has(1)

    def test_duplicate_open_rejected(self):
        manager = AllocationManager()
        manager.open_session(1, QoSSession(session_id=1))
        with pytest.raises(SLAError):
            manager.open_session(1, QoSSession(session_id=1))

    def test_get_unknown_rejected(self):
        with pytest.raises(SLAError):
            AllocationManager().get(9)

    def test_close_unknown_rejected(self):
        with pytest.raises(SLAError):
            AllocationManager().close_session(9)

    def test_open_sessions_ordered(self):
        manager = AllocationManager()
        manager.open_session(5, QoSSession(session_id=5))
        manager.open_session(2, QoSSession(session_id=2))
        assert [r.sla_id for r in manager.open_sessions()] == [2, 5]


class TestFlowMapping:
    def test_single_flow_booking(self):
        manager = AllocationManager()
        resources = manager.open_session(1, QoSSession(session_id=1))
        composite = CompositeReservation(sla_id=1)
        composite.network_booking = FakeFlow(77)
        resources.reservation = composite
        assert manager.sla_for_flow(FakeFlow(77)) == 1
        assert manager.sla_for_flow(FakeFlow(78)) is None

    def test_end_to_end_booking(self):
        from repro.network.interdomain import EndToEndAllocation
        manager = AllocationManager()
        resources = manager.open_session(2, QoSSession(session_id=2))
        composite = CompositeReservation(sla_id=2)
        composite.network_booking = EndToEndAllocation(
            source="a", destination="b", bandwidth_mbps=10.0,
            segments=[(None, FakeFlow(31)), (None, FakeFlow(32))])
        resources.reservation = composite
        assert manager.sla_for_flow(FakeFlow(32)) == 2

    def test_session_without_network(self):
        manager = AllocationManager()
        manager.open_session(3, QoSSession(session_id=3))
        assert manager.sla_for_flow(FakeFlow(1)) is None
