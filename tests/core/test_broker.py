"""Tests for the AQoS broker (repro.core.broker)."""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, NetworkDemand, SlaStatus
from repro.sla.lifecycle import Phase
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound


def guaranteed_request(cpu=10, client="alice", start=0.0, end=100.0,
                       network=False, **adaptation):
    parameters = [exact_parameter(Dimension.CPU, cpu),
                  exact_parameter(Dimension.MEMORY_MB, 512)]
    net = None
    if network:
        net = NetworkDemand("135.200.50.101", "192.200.168.33", 100.0,
                            parse_bound("LessThan 10%"))
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=QoSSpecification.from_iterable(
                              parameters),
                          start=start, end=end, network=net,
                          adaptation=AdaptationOptions(**adaptation))


def controlled_request(floor=2, best=8, client="bob", start=0.0, end=100.0,
                       **adaptation):
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, floor, best))
    options = dict(accept_degradation=True)
    options.update(adaptation)
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=start, end=end,
                          adaptation=AdaptationOptions(**options))


class TestEstablishment:
    def test_guaranteed_session_end_to_end(self, testbed):
        outcome = testbed.broker.request_service(
            guaranteed_request(network=True))
        assert outcome.accepted
        sla = outcome.sla
        assert sla.status is SlaStatus.ACTIVE
        assert outcome.session.phase is Phase.ACTIVE
        # Partition holds the commitment; GARA holds the booking.
        holding = testbed.broker.partition_holding(sla.sla_id)
        assert holding.committed == 10
        assert holding.served == 10
        assert testbed.compute_rm.available(0, 50).cpu == 16
        # The network leg was booked on the 622 Mbps link.
        assert testbed.nrm.available_bandwidth(
            "siteB", "siteA", 0, 50) == 522.0

    def test_unknown_service_rejected_at_discovery(self, testbed):
        request = guaranteed_request()
        request = ServiceRequest(
            client="x", service_name="no-such-service",
            service_class=request.service_class,
            specification=request.specification, start=0.0, end=10.0)
        outcome = testbed.broker.request_service(request)
        assert not outcome.accepted
        assert "UDDIe" in outcome.reason
        assert testbed.broker.stats.rejected_discovery == 1

    def test_over_capacity_rejected(self, testbed):
        outcome = testbed.broker.request_service(guaranteed_request(cpu=10))
        assert outcome.accepted
        second = testbed.broker.request_service(
            guaranteed_request(cpu=10, client="eve"))
        assert not second.accepted
        assert testbed.broker.stats.rejected_capacity == 1

    def test_budget_failure(self, testbed):
        request = controlled_request()
        request = ServiceRequest(
            client="cheap", service_name="simulation-service",
            service_class=request.service_class,
            specification=request.specification,
            start=0.0, end=100.0, budget_rate=0.001)
        outcome = testbed.broker.request_service(request)
        assert not outcome.accepted

    def test_controlled_load_starts_at_best_point(self, testbed):
        outcome = testbed.broker.request_service(controlled_request())
        assert outcome.accepted
        assert outcome.sla.delivered_point[Dimension.CPU] == 8.0
        # Commitment is the floor, not the best.
        holding = testbed.broker.partition_holding(outcome.sla.sla_id)
        assert holding.committed == 2

    def test_floor_recorded_as_alternative(self, testbed):
        outcome = testbed.broker.request_service(controlled_request())
        alternatives = outcome.sla.adaptation.alternative_points
        assert any(point[Dimension.CPU] == 2.0 for point in alternatives)


class TestScenario1NewRequest:
    def test_degradable_sessions_squeezed_for_new_guaranteed(self, testbed):
        broker = testbed.broker
        # A CL session stretched to 14 CPUs plus a guaranteed 10 leave
        # only 2 free in the slot table; a new guaranteed 4 needs the
        # CL session squeezed to its 1-CPU floor. Commitments stay
        # inside Cg (1 + 10 + 4 = 15).
        cl = broker.request_service(controlled_request(floor=1, best=14))
        g1 = broker.request_service(guaranteed_request(cpu=10))
        assert cl.accepted and g1.accepted
        g2 = broker.request_service(
            guaranteed_request(cpu=4, client="carol"))
        assert g2.accepted
        assert broker.scenarios.stats.squeezes >= 1
        assert cl.sla.is_degraded()

    def test_over_committed_request_refused_even_with_squeeze(self, testbed):
        # Squeezing delivered points never frees SLA commitments:
        # Σg(u) <= Cg is a hard admission rule.
        broker = testbed.broker
        cl = broker.request_service(controlled_request(floor=2, best=8))
        g1 = broker.request_service(guaranteed_request(cpu=10))
        assert cl.accepted and g1.accepted
        g2 = broker.request_service(
            guaranteed_request(cpu=5, client="carol"))  # 2+10+5 > 15
        assert not g2.accepted

    def test_termination_for_compensation(self, testbed):
        broker = testbed.broker
        victim = broker.request_service(
            controlled_request(floor=6, best=6, accept_termination=True))
        assert victim.accepted
        filler = broker.request_service(guaranteed_request(cpu=9))
        assert filler.accepted
        newcomer = broker.request_service(
            guaranteed_request(cpu=6, client="carol"))
        assert newcomer.accepted
        assert victim.sla.status is SlaStatus.TERMINATED
        assert broker.scenarios.stats.terminations_for_compensation == 1


class TestScenario2Termination:
    def test_completion_restores_degraded_sessions(self, testbed):
        broker = testbed.broker
        sim = testbed.sim
        cl = broker.request_service(controlled_request(end=200.0))
        blocker = broker.request_service(
            guaranteed_request(cpu=10, client="carol", end=50.0))
        assert cl.accepted and blocker.accepted
        # Squeeze the CL session manually to simulate earlier adaptation.
        broker.apply_point(cl.sla, cl.sla.floor_point())
        assert cl.sla.is_degraded()
        sim.run(until=60.0)  # blocker completes at t=50
        assert blocker.sla.status is SlaStatus.COMPLETED
        assert not cl.sla.is_degraded()
        assert broker.scenarios.stats.restorations >= 1

    def test_promotion_offers_on_termination(self, testbed):
        broker = testbed.broker
        sim = testbed.sim
        # The client accepts the *floor* offer, so the session runs
        # legitimately below the spec's best point — the promotion
        # target of Scenario 2 (c).
        request = controlled_request(end=200.0, accept_promotion=True)
        negotiation, reason = broker.negotiate(request)
        assert not reason
        floor_offer = [offer for offer in negotiation.offers
                       if "minimum" in offer.note][0]
        negotiation.accept(floor_offer)
        cl = broker.establish(negotiation)
        assert cl.accepted
        assert not cl.sla.is_degraded()  # floor IS the agreed point
        short = broker.request_service(
            guaranteed_request(cpu=4, client="carol", end=30.0))
        assert short.accepted
        sim.run(until=40.0)
        account = broker.ledger.account(cl.sla.sla_id)
        assert account.promotions_offered >= 1
        assert account.promotions_accepted >= 1
        # The accepted promotion moved the session to the spec best.
        assert cl.sla.delivered_point[Dimension.CPU] == 8.0


class TestScenario3Degradation:
    def test_compute_failure_covered_by_adaptive_reserve(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(guaranteed_request(cpu=14))
        assert outcome.accepted
        testbed.machine.fail_nodes(3)
        holding = broker.partition_holding(outcome.sla.sla_id)
        assert holding.served == 14  # Adapt() covered the loss
        assert broker.hub.for_sla(outcome.sla.sla_id) == []

    def test_congestion_degrades_controlled_load_in_place(self, testbed):
        broker = testbed.broker
        spec = QoSSpecification.of(
            range_parameter(Dimension.CPU, 2, 4),
            range_parameter(Dimension.BANDWIDTH_MBPS, 100, 500))
        request = ServiceRequest(
            client="viz", service_name="simulation-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=spec, start=0.0, end=100.0,
            network=NetworkDemand("135.200.50.101", "192.200.168.33",
                                  500.0),
            adaptation=AdaptationOptions(accept_degradation=True))
        outcome = broker.request_service(request)
        assert outcome.accepted
        testbed.nrm.set_congestion("siteA", "siteB", 0.3)
        # The NRM notice triggers Scenario 3: degrade to the floor.
        assert broker.scenarios.stats.self_degradations >= 1
        assert outcome.sla.is_degraded()

    def test_major_degradation_terminates_guaranteed(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(
            guaranteed_request(cpu=10, network=True))
        assert outcome.accepted
        # Collapse the link to 10% — delivered 62.2 of 100 agreed is a
        # > 0.5 severity... actually 0.378; drive it harder:
        testbed.nrm.set_congestion("siteA", "siteB", 0.1)
        assert outcome.sla.status in (SlaStatus.TERMINATED,
                                      SlaStatus.ACTIVE)
        notices = broker.hub.for_sla(outcome.sla.sla_id)
        assert notices  # the NRM raised the degradation


class TestBestEffort:
    def test_strict_admission(self, testbed):
        broker = testbed.broker
        assert broker.request_best_effort("u1", 26)
        assert not broker.request_best_effort("u2", 1)

    def test_duration_releases(self, testbed):
        broker = testbed.broker
        assert broker.request_best_effort("u1", 26, duration=10.0)
        testbed.sim.run(until=11.0)
        assert broker.partition.idle_capacity() == pytest.approx(26.0)

    def test_best_effort_request_via_request_service(self, testbed):
        request = ServiceRequest(
            client="student", service_name="*",
            service_class=ServiceClass.BEST_EFFORT,
            specification=QoSSpecification.of(
                exact_parameter(Dimension.CPU, 4)),
            start=0.0, end=20.0)
        outcome = testbed.broker.request_service(request)
        assert outcome.accepted


class TestOptimizer:
    def test_optimizer_moves_sessions_to_best_within_budget(self, testbed):
        broker = testbed.broker
        first = broker.request_service(controlled_request(floor=2, best=8))
        second = broker.request_service(
            controlled_request(floor=2, best=8, client="carol"))
        broker.apply_point(first.sla, first.sla.floor_point())
        broker.apply_point(second.sla, second.sla.floor_point())
        result = broker.run_optimizer()
        assert result is not None
        assert not first.sla.is_degraded()
        assert not second.sla.is_degraded()

    def test_periodic_optimizer_scheduled(self):
        testbed = build_testbed(optimizer_interval=10.0)
        broker = testbed.broker
        outcome = broker.request_service(controlled_request(end=100.0))
        broker.apply_point(outcome.sla, outcome.sla.floor_point())
        testbed.sim.run(until=25.0)
        assert broker.stats.optimizer_runs >= 2
        assert not outcome.sla.is_degraded()


class TestClearing:
    def test_window_expiry_closes_session(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(guaranteed_request(end=50.0))
        testbed.sim.run(until=60.0)
        assert outcome.sla.status in (SlaStatus.COMPLETED,
                                      SlaStatus.EXPIRED)
        assert broker.partition_holding(outcome.sla.sla_id) is None
        assert broker.partition.idle_capacity() == pytest.approx(26.0)

    def test_terminate_session_releases_everything(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(
            guaranteed_request(network=True))
        broker.terminate_session(outcome.sla.sla_id)
        assert outcome.sla.status is SlaStatus.TERMINATED
        assert testbed.compute_rm.available(10, 50).cpu == 26
        assert testbed.nrm.available_bandwidth(
            "siteB", "siteA", 10, 50) == 622.0

    def test_revenue_accrued_for_completed_session(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(guaranteed_request(end=50.0))
        testbed.sim.run(until=60.0)
        account = broker.ledger.account(outcome.sla.sla_id)
        assert account.gross_revenue() == pytest.approx(
            outcome.sla.price_rate * 50.0, rel=0.05)


class TestSnapshot:
    def test_snapshot_keys(self, testbed):
        broker = testbed.broker
        broker.request_service(guaranteed_request())
        snapshot = broker.snapshot()
        assert snapshot["accepted"] == 1.0
        assert snapshot["partition.committed"] == 10.0
        assert snapshot["active_sessions"] == 1.0
