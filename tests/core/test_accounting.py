"""Tests for accounting (repro.core.accounting)."""

from __future__ import annotations

import pytest

from repro.core.accounting import AccountingLedger


class TestRevenueAccrual:
    def test_constant_rate_session(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=2.0)
        ledger.session_ended(1, time=10.0)
        assert ledger.account(1).gross_revenue() == pytest.approx(20.0)

    def test_open_session_valued_at_now(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=2.0)
        assert ledger.account(1).gross_revenue(now=5.0) == \
            pytest.approx(10.0)

    def test_rate_change_splits_segments(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=2.0)
        ledger.rate_changed(1, time=4.0, rate=1.0)  # degraded
        ledger.rate_changed(1, time=8.0, rate=2.0)  # restored
        ledger.session_ended(1, time=10.0)
        # 4*2 + 4*1 + 2*2 = 16.
        assert ledger.account(1).gross_revenue() == pytest.approx(16.0)

    def test_session_end_is_idempotent_for_revenue(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=2.0)
        ledger.session_ended(1, time=10.0)
        assert ledger.account(1).gross_revenue(now=50.0) == \
            pytest.approx(20.0)


class TestPenalties:
    def test_penalties_subtract_from_net(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=2.0)
        ledger.add_penalty(1, time=5.0, amount=7.0, reason="violation")
        ledger.session_ended(1, time=10.0)
        assert ledger.account(1).net_revenue() == pytest.approx(13.0)

    def test_zero_penalty_ignored(self):
        ledger = AccountingLedger()
        ledger.add_penalty(1, time=5.0, amount=0.0, reason="noop")
        assert ledger.account(1).penalties == []


class TestPromotions:
    def test_offer_and_acceptance_counted(self):
        ledger = AccountingLedger()
        ledger.promotion_offered(1, accepted=True)
        ledger.promotion_offered(1, accepted=False)
        account = ledger.account(1)
        assert account.promotions_offered == 2
        assert account.promotions_accepted == 1


class TestInvoices:
    def test_invoice_lists_spans_penalties_and_net(self):
        from repro.core.accounting import render_invoice
        ledger = AccountingLedger()
        ledger.session_started(1055, time=0.0, rate=2.0)
        ledger.rate_changed(1055, time=4.0, rate=1.0)
        ledger.add_penalty(1055, time=6.0, amount=3.0, reason="congestion")
        ledger.promotion_offered(1055, accepted=True)
        ledger.session_ended(1055, time=10.0)
        text = render_invoice(ledger.account(1055), client="user1",
                              service="simulation")
        assert "Invoice — SLA 1055" in text
        assert "user1" in text
        assert "@    2.000" in text
        assert "@    1.000" in text
        assert "congestion" in text
        assert "promotions: 1 offered, 1 accepted" in text
        # gross 4*2 + 6*1 = 14, minus penalty 3 = 11.
        assert "11.00" in text
        assert "(session closed)" in text

    def test_open_session_invoice_values_at_now(self):
        from repro.core.accounting import render_invoice
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=3.0)
        text = render_invoice(ledger.account(1), now=10.0)
        assert "30.00" in text
        assert "(session closed)" not in text


class TestProviderAggregates:
    def test_gross_and_net_across_sessions(self):
        ledger = AccountingLedger()
        ledger.session_started(1, time=0.0, rate=1.0)
        ledger.session_started(2, time=0.0, rate=3.0)
        ledger.add_penalty(2, time=1.0, amount=5.0, reason="x")
        ledger.session_ended(1, time=10.0)
        ledger.session_ended(2, time=10.0)
        assert ledger.provider_gross() == pytest.approx(40.0)
        assert ledger.provider_net() == pytest.approx(35.0)
        assert ledger.total_penalties() == pytest.approx(5.0)

    def test_accounts_ordered_by_sla_id(self):
        ledger = AccountingLedger()
        ledger.session_started(5, 0.0, 1.0)
        ledger.session_started(2, 0.0, 1.0)
        assert [a.sla_id for a in ledger.accounts()] == [2, 5]
