"""Batched admission: byte-identical to sequential, crash-safe, fast.

``AQoSBroker.request_services`` amortizes the capacity rebalance and
the journal commit across a batch, but its *decisions* must be
indistinguishable from feeding the same requests one at a time through
``request_service``.  The differential property here drives random
mixed batches (fitting, oversized, networked) through both paths on
twin testbeds and compares everything an observer could see: the
accept/reject outcomes, the guaranteed holdings, the partition
snapshot, the journal-visible record stream (up to rebalance
coalescing — the one documented difference), and the post-crash
recovered state.

The crash sweep kills the broker at every write point *inside* a
group commit, in both torn-write modes, and checks the recovery
invariants — the acceptance criterion's "crash-point run through a
group-commit boundary".
"""

from __future__ import annotations

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.broker import ServiceRequest
from repro.core.testbed import build_testbed
from repro.errors import BrokerCrash
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.crashpoints import (CRASH_MODES, CrashingJournalStore,
                                        crash, verify_recovered)
from repro.recovery.journal import CAPACITY_REBALANCED, DeferredValue
from repro.recovery.recover import install_journal, recover
from repro.sla.document import NetworkDemand
from repro.units import parse_bound


def _request(index: int, cpu: int, *, networked: bool = False,
             start: float = 0.0, end: float = 100.0) -> ServiceRequest:
    network = None
    if networked:
        network = NetworkDemand(
            source_ip="135.200.50.101", dest_ip="192.200.168.33",
            bandwidth_mbps=10.0,
            packet_loss_bound=parse_bound("LessThan 10%"))
    return ServiceRequest(
        client=f"user{index}", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.from_iterable([
            exact_parameter(Dimension.CPU, cpu),
            exact_parameter(Dimension.MEMORY_MB, 64),
        ]),
        start=start, end=end, network=network)


#: Per-request shape: (cpu, networked).  cpu=50 exceeds the default
#: testbed's Cg=15, so those requests are rejected — partial-rejection
#: batches are the interesting case for fallback semantics.
_shapes = st.tuples(st.sampled_from([1, 2, 3, 8, 50]), st.booleans())


def _journaled_testbed():
    testbed = build_testbed()
    install_journal(testbed)
    return testbed


def _visible_records(testbed):
    """(type, payload) stream, rebalance records excluded.

    Batch admission coalesces the per-admission rebalance records into
    one per batch; every other record must match the sequential run
    exactly, in order.
    """
    def concrete(payload):
        return {key: (value.resolve()
                      if isinstance(value, DeferredValue) else value)
                for key, value in payload.items()}

    return [(record.type, concrete(record.payload))
            for record in testbed.journal.store._records
            if record.type != CAPACITY_REBALANCED]


def _holdings(testbed):
    return [(h.user, h.committed, h.demand, h.served)
            for h in testbed.partition.guaranteed_holdings()]


class TestBatchSequentialEquivalence:
    @given(shapes=st.lists(_shapes, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_batch_is_byte_identical_to_sequential(self, shapes):
        batch_bed = _journaled_testbed()
        seq_bed = _journaled_testbed()
        requests = [_request(i, cpu, networked=networked)
                    for i, (cpu, networked) in enumerate(shapes)]

        batch_out = batch_bed.broker.request_services(requests)
        seq_out = [seq_bed.broker.request_service(r) for r in requests]

        assert ([(o.accepted, o.reason) for o in batch_out]
                == [(o.accepted, o.reason) for o in seq_out])
        assert _holdings(batch_bed) == _holdings(seq_bed)
        assert (batch_bed.partition.snapshot()
                == seq_bed.partition.snapshot())
        assert _visible_records(batch_bed) == _visible_records(seq_bed)
        assert (batch_bed.broker.repository.export_xml()
                == seq_bed.broker.repository.export_xml())

        # Journal-visible state survives a crash identically: recovery
        # replays only durable records, so the recovered repositories
        # and partitions must also agree.
        for testbed in (batch_bed, seq_bed):
            crash(testbed)
            recover(testbed)
        assert (batch_bed.broker.repository.export_xml()
                == seq_bed.broker.repository.export_xml())
        assert _holdings(batch_bed) == _holdings(seq_bed)

    def test_batch_writes_one_rebalance_record(self):
        batch_bed = _journaled_testbed()
        seq_bed = _journaled_testbed()
        requests = [_request(i, 2) for i in range(5)]
        batch_bed.broker.request_services(requests)
        for request in requests:
            seq_bed.broker.request_service(request)

        def rebalances(testbed):
            return sum(1 for r in testbed.journal.store._records
                       if r.type == CAPACITY_REBALANCED)

        assert rebalances(batch_bed) == 1
        assert rebalances(seq_bed) == len(requests)

    def test_lsns_stay_contiguous_across_group_commits(self):
        testbed = _journaled_testbed()
        testbed.broker.request_services([_request(i, 1) for i in range(4)])
        testbed.broker.request_services([_request(9, 50)])  # rejected
        testbed.broker.request_services([_request(5, 1)])
        lsns = [record.lsn for record in testbed.journal.store._records]
        assert lsns == list(range(1, len(lsns) + 1))


class TestGroupCommitCrashPoints:
    def _episode_write_points(self):
        """How many byte appends one reference batch produces."""
        testbed = build_testbed()
        counter = CrashingJournalStore(crash_lsn=0)
        install_journal(testbed, counter)
        self._run_episode(testbed)
        return counter.appends

    def _run_episode(self, testbed):
        """Two group commits with a partial rejection in the second."""
        broker = testbed.broker
        broker.request_services([_request(i, 2, networked=(i % 2 == 0))
                                 for i in range(3)])
        broker.request_services([_request(3, 2), _request(4, 50),
                                 _request(5, 2)])

    def test_crash_at_every_point_inside_the_group_commit(self):
        """Kill the broker at every record of every group, both modes.

        Group records only reach the store inside ``commit_group``, so
        every one of these crash points tears a group commit — some
        mid-group, leaving a durable prefix of the batch.  Recovery
        must land on an invariant-clean state from any of them.
        """
        write_points = self._episode_write_points()
        assert write_points >= 8, "episode too small to sweep"
        crashes = 0
        for mode in CRASH_MODES:
            for crash_lsn in range(1, write_points + 1):
                testbed = build_testbed()
                store = CrashingJournalStore(crash_lsn=crash_lsn, mode=mode)
                install_journal(testbed, store)
                try:
                    self._run_episode(testbed)
                except BrokerCrash:
                    crashes += 1
                    crash(testbed)
                recover(testbed)
                problems = verify_recovered(testbed)
                assert problems == [], (
                    f"crash at write point {crash_lsn} ({mode}): "
                    + "; ".join(problems))
                # The recovered broker keeps admitting — in batches.
                outcomes = testbed.broker.request_services(
                    [_request(90, 1), _request(91, 1)])
                assert [o.accepted for o in outcomes] == [True, True]
        assert crashes == 2 * write_points


class TestBatchPerfSmoke:
    def test_batch64_no_slower_than_sequential(self):
        """Tier-1 guard, not a benchmark (that is
        ``benchmarks/bench_throughput.py``): at 1k live holdings a
        batch of 64 amortizes 64 rebalances into one, so even on a
        noisy CI box it must at least break even against the
        sequential path; the generous factor keeps noise from flaking
        the gate while still catching a batching pessimization."""
        preload, measured = 1000, 64
        beds = []
        for _ in range(2):
            testbed = build_testbed(
                total_cpu=3000, guaranteed_cpu=2000, adaptive_cpu=600,
                best_effort_cpu=400, machine_nodes=6000,
                memory_mb=400_000.0, disk_mb=800_000.0)
            install_journal(testbed)
            for offset in range(0, preload, 250):
                outcomes = testbed.broker.request_services(
                    [_request(offset + i, 1) for i in range(250)])
                assert all(o.accepted for o in outcomes)
            beds.append(testbed)
        batch_bed, seq_bed = beds

        requests = [_request(preload + i, 1) for i in range(measured)]
        started = time.perf_counter()
        for request in requests:
            seq_bed.broker.request_service(request)
        sequential_s = time.perf_counter() - started

        started = time.perf_counter()
        batch_bed.broker.request_services(requests)
        batched_s = time.perf_counter() - started

        assert batched_s <= sequential_s * 1.5, (
            f"batch=64 took {batched_s * 1e3:.1f}ms vs sequential "
            f"{sequential_s * 1e3:.1f}ms at {preload} live holdings")
