"""Tests for advance reservations through the broker.

GARA's defining feature is reservation *in advance* ("takes requests
for resources, with specified start and end times", Section 3.1). The
broker holds the booking from establishment but only consumes live
capacity — partition admission, job launch, billing — at the window
start.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import SlaStatus
from repro.sla.lifecycle import Phase
from repro.sla.negotiation import ServiceRequest


def advance_request(client="alice", cpu=10, start=50.0, end=150.0):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=start, end=end)


class TestDeferredActivation:
    def test_established_but_not_active_before_start(self, testbed):
        outcome = testbed.broker.request_service(advance_request())
        assert outcome.accepted
        assert outcome.sla.status is SlaStatus.ESTABLISHED
        assert outcome.session.phase is Phase.ESTABLISHMENT
        # The GARA booking exists; live capacity is untouched.
        assert testbed.compute_rm.available(60, 140).cpu == 16
        assert testbed.broker.partition_holding(outcome.sla.sla_id) is None
        assert testbed.partition.idle_capacity() == 26.0

    def test_activates_at_window_start(self, testbed):
        outcome = testbed.broker.request_service(advance_request())
        testbed.sim.run(until=51.0)
        assert outcome.sla.status is SlaStatus.ACTIVE
        holding = testbed.broker.partition_holding(outcome.sla.sla_id)
        assert holding is not None and holding.served == 10.0
        resources = testbed.broker.allocation.get(outcome.sla.sla_id)
        assert resources.job is not None

    def test_billing_starts_at_window_start(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(advance_request(start=50.0,
                                                         end=150.0))
        testbed.sim.run(until=160.0)
        account = broker.ledger.account(outcome.sla.sla_id)
        expected = outcome.sla.price_rate * 100.0
        assert account.gross_revenue() == pytest.approx(expected,
                                                        rel=0.05)

    def test_completes_normally(self, testbed):
        outcome = testbed.broker.request_service(advance_request())
        testbed.sim.run(until=200.0)
        assert outcome.sla.status in (SlaStatus.COMPLETED,
                                      SlaStatus.EXPIRED)
        assert testbed.partition.idle_capacity() == 26.0

    def test_disjoint_windows_share_commitments(self, testbed):
        broker = testbed.broker
        # Two 10-node sessions in non-overlapping windows both fit the
        # slot table; the partition only ever holds one at a time.
        first = broker.request_service(advance_request(
            client="a", start=0.0, end=100.0))
        second = broker.request_service(advance_request(
            client="b", start=200.0, end=300.0))
        assert first.accepted
        # NB: negotiate()'s partition check is instant-based and the
        # first session is not yet admitted at t=0... it IS admitted at
        # establish time only for immediate starts. Commitments at
        # request time: first starts now, so it holds 10 of Cg=15; the
        # second window is far away but the conservative admission
        # check still sees those 10 committed.
        if second.accepted:
            testbed.sim.run(until=150.0)
            assert broker.partition.committed_total() <= 15.0
            testbed.sim.run(until=250.0)
            holding = broker.partition_holding(second.sla.sla_id)
            assert holding is not None and holding.served == 10.0

    def test_terminated_before_start_never_activates(self, testbed):
        broker = testbed.broker
        outcome = broker.request_service(advance_request())
        broker.terminate_session(outcome.sla.sla_id,
                                 cause="client-request")
        testbed.sim.run(until=100.0)
        assert outcome.sla.status is SlaStatus.TERMINATED
        assert broker.partition_holding(outcome.sla.sla_id) is None
        assert testbed.compute_rm.running_jobs() == []

    def test_activation_contention_resolved_or_terminated(self, testbed):
        broker = testbed.broker
        # An immediate 10-node session plus an advance 10-node session:
        # both hold slot bookings (windows overlap), but commitments at
        # the advance session's start would exceed Cg.
        immediate = broker.request_service(advance_request(
            client="now", start=0.0, end=200.0))
        advance = broker.request_service(advance_request(
            client="later", start=50.0, end=150.0))
        assert immediate.accepted
        if advance.accepted:
            testbed.sim.run(until=60.0)
            # Either the advance session was admitted (capacity freed)
            # or it was terminated with a violation — never silently
            # overcommitted.
            assert broker.partition.committed_total() <= 15.0 + 1e-9
