"""Tests for the failable machine model (repro.resources.machine)."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.resources.machine import Machine, NodeState


@pytest.fixture
def sgi():
    """The Section 5.6 machine: 64 nodes, 26 exposed to the Grid."""
    return Machine("sgi-siteA", 64, grid_nodes=26, memory_mb=10240)


class TestConstruction:
    def test_paper_machine(self, sgi):
        assert sgi.total_nodes == 64
        assert sgi.grid_nodes == 26
        assert sgi.available_grid_nodes() == 26
        assert sgi.grid_capacity().cpu == 26
        assert sgi.grid_capacity().memory_mb == 10240

    def test_grid_nodes_default_to_all(self):
        machine = Machine("m", 8)
        assert machine.grid_nodes == 8

    def test_zero_nodes_rejected(self):
        with pytest.raises(ResourceError):
            Machine("m", 0)

    def test_grid_nodes_exceeding_total_rejected(self):
        with pytest.raises(ResourceError):
            Machine("m", 8, grid_nodes=10)


class TestFailures:
    def test_three_node_failure_from_example(self, sgi):
        failed = sgi.fail_nodes(3)
        assert len(failed) == 3
        assert sgi.available_grid_nodes() == 23
        assert sgi.up_nodes() == 61

    def test_repair_restores(self, sgi):
        ids = sgi.fail_nodes(3)
        assert sgi.repair_nodes(ids) == 3
        assert sgi.available_grid_nodes() == 26

    def test_repair_all(self, sgi):
        sgi.fail_nodes(5)
        assert sgi.repair_nodes() == 5

    def test_cannot_fail_more_than_up(self):
        machine = Machine("m", 2)
        machine.fail_nodes(2)
        with pytest.raises(ResourceError):
            machine.fail_nodes(1)

    def test_failures_beyond_local_partition_hit_grid(self):
        # 64 total, 26 exposed: the first 38 failures are absorbed by
        # the model only insofar as the grid partition shrinks first.
        machine = Machine("m", 64, grid_nodes=26)
        machine.fail_nodes(30)
        assert machine.available_grid_nodes() == 0


class TestListeners:
    def test_failure_notifies_with_negative_delta(self, sgi):
        deltas = []
        sgi.subscribe(lambda machine, delta: deltas.append(delta))
        sgi.fail_nodes(3)
        sgi.repair_nodes()
        assert deltas == [-3, 3]

    def test_repair_with_nothing_down_is_silent(self, sgi):
        deltas = []
        sgi.subscribe(lambda machine, delta: deltas.append(delta))
        assert sgi.repair_nodes() == 0
        assert deltas == []
