"""Tests for failure injection (repro.resources.failures)."""

from __future__ import annotations

import pytest

from repro.resources.failures import FailureInjector, FailureSchedule
from repro.resources.machine import Machine
from repro.sim.random import RandomSource


class TestFailureSchedule:
    def test_deterministic_events_fire(self, sim):
        machine = Machine("m", 10)
        schedule = FailureSchedule.of((5.0, -3), (10.0, 3))
        schedule.apply(sim, machine)
        sim.run(until=6.0)
        assert machine.up_nodes() == 7
        sim.run(until=11.0)
        assert machine.up_nodes() == 10

    def test_events_sorted(self):
        schedule = FailureSchedule.of((10.0, 3), (5.0, -3))
        assert schedule.events == ((5.0, -3), (10.0, 3))


class TestFailureInjector:
    def test_injects_and_repairs(self, sim):
        machine = Machine("m", 20)
        injector = FailureInjector(sim, machine, RandomSource(1),
                                   mtbf=10.0, mttr=5.0)
        injector.start()
        sim.run(until=500.0)
        assert injector.failures_injected > 10
        # Repairs keep pace: most nodes are up at any given time.
        assert machine.up_nodes() >= 10

    def test_respects_concurrency_cap(self, sim):
        machine = Machine("m", 20)
        injector = FailureInjector(sim, machine, RandomSource(2),
                                   mtbf=1.0, mttr=1000.0,
                                   max_concurrent_failures=3)
        injector.start()
        sim.run(until=200.0)
        assert machine.total_nodes - machine.up_nodes() <= 3

    def test_never_sinks_last_node(self, sim):
        machine = Machine("m", 3)
        injector = FailureInjector(sim, machine, RandomSource(3),
                                   mtbf=0.5, mttr=1e9)
        injector.start()
        sim.run(until=100.0)
        assert machine.up_nodes() >= 1

    def test_stop_halts_new_failures(self, sim):
        machine = Machine("m", 20)
        injector = FailureInjector(sim, machine, RandomSource(4),
                                   mtbf=5.0, mttr=1.0)
        injector.start()
        sim.run(until=50.0)
        injector.stop()
        count = injector.failures_injected
        sim.run(until=200.0)
        assert injector.failures_injected == count

    def test_determinism_across_runs(self):
        from repro.sim.engine import Simulator

        def run(seed):
            sim = Simulator()
            machine = Machine("m", 20)
            injector = FailureInjector(sim, machine, RandomSource(seed),
                                       mtbf=10.0, mttr=5.0)
            injector.start()
            sim.run(until=300.0)
            return injector.failures_injected, machine.up_nodes()

        assert run(7) == run(7)

    def test_invalid_rates_rejected(self, sim):
        machine = Machine("m", 4)
        with pytest.raises(ValueError):
            FailureInjector(sim, machine, RandomSource(0), mtbf=0.0,
                            mttr=1.0)
