"""Tests for the compute RM (repro.resources.compute)."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.gara.reservation import ReservationState
from repro.qos.vector import ResourceVector
from repro.resources.compute import ComputeResourceManager, JobState
from repro.resources.machine import Machine
from repro.rsl.builder import reservation_rsl


@pytest.fixture
def rm(sim):
    machine = Machine("m", 32, grid_nodes=26, memory_mb=10240,
                      disk_mb=50000)
    return ComputeResourceManager(sim, machine)


def reserve(rm, cpu=10, end=100.0):
    handle = rm.gara.reservation_create(
        reservation_rsl(ResourceVector(cpu=cpu, memory_mb=1024), 0.0, end))
    rm.gara.reservation_commit(handle)
    return handle


class TestAvailability:
    def test_available_at_matches_window_query(self, rm):
        reserve(rm, cpu=10, end=100.0)
        assert rm.available_at(0.0).cpu == 16
        assert rm.available_at(0.0) == rm.available(0.0, 0.0 + 1e-9)
        assert rm.available_at(100.0).cpu == 26


class TestLaunch:
    def test_launch_binds_pid(self, rm):
        handle = reserve(rm)
        job = rm.launch("simulation", handle)
        reservation = rm.gara.reservation_status(handle)
        assert reservation.state is ReservationState.BOUND
        assert reservation.bound_pid == job.pid

    def test_job_completes_after_duration(self, rm, sim):
        handle = reserve(rm)
        job = rm.launch("simulation", handle, duration=50.0)
        sim.run(until=51.0)
        assert rm.job(job.job_id).state is JobState.COMPLETED
        # Completion cancels the reservation and frees capacity.
        assert rm.available(60, 100).cpu == 26

    def test_completion_listener_fires(self, rm, sim):
        ended = []
        rm.subscribe_job_end(lambda job: ended.append(job.state))
        handle = reserve(rm)
        rm.launch("svc", handle, duration=10.0)
        sim.run(until=11.0)
        assert ended == [JobState.COMPLETED]

    def test_kill_frees_resources(self, rm, sim):
        handle = reserve(rm)
        job = rm.launch("svc", handle)
        rm.kill(job.job_id)
        assert rm.job(job.job_id).state is JobState.KILLED
        assert rm.available(0, 100).cpu == 26

    def test_kill_unknown_job(self, rm):
        with pytest.raises(ResourceError):
            rm.kill(424242)

    def test_dsrt_contract_opened_and_released(self, rm, sim):
        handle = reserve(rm)
        job = rm.launch("svc", handle, duration=10.0, dsrt_fraction=0.5)
        assert rm.dsrt.contract(job.pid).reserved_fraction == 0.5
        sim.run(until=11.0)
        with pytest.raises(ResourceError):
            rm.dsrt.contract(job.pid)

    def test_running_jobs(self, rm, sim):
        first = rm.launch("a", reserve(rm, cpu=5), duration=10.0)
        second = rm.launch("b", reserve(rm, cpu=5), duration=99.0)
        sim.run(until=20.0)
        running = rm.running_jobs()
        assert [job.job_id for job in running] == [second.job_id]
        assert first.finished_at == 10.0


class TestUsageSampling:
    def test_contracts_shrink_toward_usage(self, rm, sim):
        from repro.sim.random import RandomSource
        handle = reserve(rm, cpu=4)
        job = rm.launch("svc", handle, duration=500.0, dsrt_fraction=0.9)
        rm.start_usage_sampling(5.0, RandomSource(1), mean_usage=0.3,
                                burstiness=0.05)
        sim.run(until=100.0)
        contract = rm.dsrt.contract(job.pid)
        # 0.9 reserved vs ~0.3 used: the adjustment rounds shrank it.
        assert contract.reserved_fraction < 0.6

    def test_sampling_survives_job_completion(self, rm, sim):
        from repro.sim.random import RandomSource
        handle = reserve(rm, cpu=4)
        rm.launch("svc", handle, duration=20.0, dsrt_fraction=0.5)
        rm.start_usage_sampling(5.0, RandomSource(2))
        sim.run(until=100.0)  # keeps sampling after the job ended
        assert rm.running_jobs() == []

    def test_sampling_is_deterministic(self):
        from repro.sim.engine import Simulator
        from repro.sim.random import RandomSource

        def run(seed):
            sim = Simulator()
            machine = Machine("m", 32, grid_nodes=26)
            rm = ComputeResourceManager(sim, machine)
            handle = rm.gara.reservation_create(
                reservation_rsl(ResourceVector(cpu=4), 0.0, 500.0))
            rm.gara.reservation_commit(handle)
            job = rm.launch("svc", handle, duration=400.0,
                            dsrt_fraction=0.9)
            rm.start_usage_sampling(5.0, RandomSource(seed))
            sim.run(until=200.0)
            return rm.dsrt.contract(job.pid).reserved_fraction

        assert run(7) == run(7)

    def test_invalid_interval(self, rm):
        from repro.sim.random import RandomSource
        with pytest.raises(ResourceError):
            rm.start_usage_sampling(0.0, RandomSource(0))


class TestCapacityTracking:
    def test_node_failure_shrinks_slot_table(self, rm):
        rm.machine.fail_nodes(3)
        assert rm.capacity().cpu == 23

    def test_capacity_listener_gets_delta(self, rm):
        deltas = []
        rm.subscribe_capacity(deltas.append)
        rm.machine.fail_nodes(3)
        rm.machine.repair_nodes()
        assert deltas == [-3, 3]

    def test_utilization(self, rm):
        reserve(rm, cpu=13)
        assert rm.utilization() == pytest.approx(0.5)


class TestContractResize:
    def test_resize_job_contract_tracks_booking(self, rm):
        handle = reserve(rm, cpu=10)
        job = rm.launch("svc", handle, dsrt_fraction=0.8)
        assert rm.dsrt.reserved_total() == pytest.approx(8.0)
        rm.resize_job_contract(job, 4.0)
        assert rm.dsrt.contract(job.pid).nodes == 4
        assert rm.dsrt.reserved_total() == pytest.approx(3.2)

    def test_resize_without_contract_is_a_noop(self, rm):
        handle = reserve(rm, cpu=4)
        job = rm.launch("svc", handle)  # no dsrt_fraction
        rm.resize_job_contract(job, 2.0)  # must not raise
        assert rm.dsrt.reserved_total() == 0.0

    def test_resize_after_completion_is_a_noop(self, rm, sim):
        handle = reserve(rm, cpu=4)
        job = rm.launch("svc", handle, duration=5.0, dsrt_fraction=0.8)
        sim.run(until=10.0)
        assert job.state is JobState.COMPLETED
        rm.resize_job_contract(job, 2.0)  # contract already released
        assert rm.dsrt.reserved_total() == 0.0

    def test_squeeze_then_launch_no_longer_strands_capacity(self, rm):
        """The cross-layer drift the atlas exposed: a squeezed booking
        must free DSRT capacity, or later launches die on a phantom
        CapacityError while the slot table shows room."""
        first = reserve(rm, cpu=24)
        job = rm.launch("svc", first, dsrt_fraction=0.8)
        assert rm.dsrt.free_capacity() == pytest.approx(26.0 - 19.2)
        # The broker squeeze: booking 24 -> 4, contract follows.
        rm.gara.reservation_modify(
            first, ResourceVector(cpu=4, memory_mb=1024), force=True)
        rm.resize_job_contract(job, 4.0)
        second = reserve(rm, cpu=12)
        other = rm.launch("svc2", second, dsrt_fraction=0.8)
        assert other.state is JobState.RUNNING
        assert rm.dsrt.reserved_total() == pytest.approx(3.2 + 9.6)
