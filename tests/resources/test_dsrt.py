"""Tests for the DSRT scheduler simulation (repro.resources.dsrt)."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, ResourceError
from repro.resources.dsrt import CpuServiceClass, DsrtScheduler


@pytest.fixture
def dsrt():
    return DsrtScheduler(node_count=8, headroom=0.1, min_fraction=0.05)


class TestReservations:
    def test_reserve_and_release(self, dsrt):
        contract = dsrt.reserve(0.5, nodes=2)
        assert contract.reserved_capacity == pytest.approx(1.0)
        assert dsrt.free_capacity() == pytest.approx(7.0)
        dsrt.release(contract.pid)
        assert dsrt.free_capacity() == pytest.approx(8.0)

    def test_over_reservation_rejected(self, dsrt):
        dsrt.reserve(1.0, nodes=8)
        with pytest.raises(CapacityError):
            dsrt.reserve(0.1)

    def test_invalid_fraction_rejected(self, dsrt):
        with pytest.raises(ResourceError):
            dsrt.reserve(0.0)
        with pytest.raises(ResourceError):
            dsrt.reserve(1.5)

    def test_duplicate_pid_rejected(self, dsrt):
        dsrt.reserve(0.2, pid=42)
        with pytest.raises(ResourceError):
            dsrt.reserve(0.2, pid=42)

    def test_release_unknown_pid(self, dsrt):
        with pytest.raises(ResourceError):
            dsrt.release(9999)


class TestUsageAdjustment:
    def test_over_reserved_contract_shrinks_toward_usage(self, dsrt):
        contract = dsrt.reserve(0.9, pid=1)
        for _ in range(4):
            dsrt.record_usage(1, 0.3)
        changes = dsrt.adjust_contracts()
        assert 1 in changes
        # Target = usage * (1 + headroom) = 0.33.
        assert contract.reserved_fraction == pytest.approx(0.33, abs=0.01)

    def test_under_reserved_contract_grows(self, dsrt):
        contract = dsrt.reserve(0.2, pid=1)
        for _ in range(4):
            dsrt.record_usage(1, 0.8)
        dsrt.adjust_contracts()
        assert contract.reserved_fraction == pytest.approx(0.88, abs=0.01)

    def test_growth_bounded_by_free_capacity(self, dsrt):
        dsrt.reserve(1.0, nodes=7, pid=1)  # 7 of 8 nodes taken
        grower = dsrt.reserve(0.5, nodes=2, pid=2)  # 1.0 reserved, 0 free
        for _ in range(4):
            dsrt.record_usage(2, 1.0)
        dsrt.adjust_contracts()
        # Wanted 1.0 per node; only the zero free capacity limits it.
        assert grower.reserved_fraction == pytest.approx(0.5)

    def test_shrink_respects_min_fraction(self, dsrt):
        contract = dsrt.reserve(0.5, pid=1)
        for _ in range(4):
            dsrt.record_usage(1, 0.0)
        dsrt.adjust_contracts()
        assert contract.reserved_fraction == pytest.approx(0.05)

    def test_only_adaptive_contracts_move(self, dsrt):
        contract = dsrt.reserve(0.9, pid=1,
                                service_class=CpuServiceClass.PERIODIC)
        for _ in range(4):
            dsrt.record_usage(1, 0.1)
        assert dsrt.adjust_contracts() == {}
        assert contract.reserved_fraction == 0.9

    def test_unsampled_contracts_untouched(self, dsrt):
        contract = dsrt.reserve(0.9, pid=1)
        assert dsrt.adjust_contracts() == {}
        assert contract.reserved_fraction == 0.9

    def test_usage_window_caps_samples(self, dsrt):
        dsrt.reserve(0.5, pid=1)
        for index in range(20):
            dsrt.record_usage(1, index / 20.0)
        assert len(dsrt.contract(1).usage_samples) == dsrt.window

    def test_invalid_usage_rejected(self, dsrt):
        dsrt.reserve(0.5, pid=1)
        with pytest.raises(ResourceError):
            dsrt.record_usage(1, 1.5)

    def test_total_never_exceeds_nodes_after_adjustment(self, dsrt):
        for pid in range(1, 5):
            dsrt.reserve(0.4, nodes=2, pid=pid)
        for pid in range(1, 5):
            for _ in range(4):
                dsrt.record_usage(pid, 1.0)
        dsrt.adjust_contracts()
        assert dsrt.reserved_total() <= dsrt.node_count + 1e-9


class TestResize:
    def test_shrink_releases_capacity(self, dsrt):
        dsrt.reserve(0.8, nodes=6, pid=1)
        dsrt.resize(1, nodes=2)
        assert dsrt.contract(1).nodes == 2
        assert dsrt.reserved_total() == pytest.approx(1.6)
        assert dsrt.free_capacity() == pytest.approx(6.4)

    def test_grow_within_free_capacity(self, dsrt):
        dsrt.reserve(0.5, nodes=2, pid=1)
        dsrt.resize(1, nodes=4)
        assert dsrt.reserved_total() == pytest.approx(2.0)

    def test_grow_is_clamped_not_rejected(self, dsrt):
        dsrt.reserve(0.8, nodes=8, pid=1)  # 6.4 of 8
        dsrt.reserve(0.8, nodes=1, pid=2)  # 0.8 more; free = 0.8
        dsrt.resize(2, nodes=4)  # wants 3.2, only 1.6 available
        assert dsrt.reserved_total() == pytest.approx(8.0)
        assert dsrt.contract(2).nodes == 4
        assert dsrt.contract(2).reserved_fraction == pytest.approx(0.4)

    def test_resize_fraction(self, dsrt):
        dsrt.reserve(0.8, nodes=2, pid=1)
        dsrt.resize(1, fraction=0.4)
        assert dsrt.reserved_total() == pytest.approx(0.8)

    def test_shrink_then_new_reservation_fits(self, dsrt):
        """The broker squeeze pattern: without the resize the second
        reserve would die on a phantom CapacityError."""
        dsrt.reserve(0.8, nodes=8, pid=1)
        with pytest.raises(CapacityError):
            dsrt.reserve(0.8, nodes=4, pid=2)
        dsrt.resize(1, nodes=2)
        dsrt.reserve(0.8, nodes=4, pid=2)
        assert dsrt.reserved_total() == pytest.approx(4.8)

    def test_resize_unknown_pid_rejected(self, dsrt):
        with pytest.raises(ResourceError):
            dsrt.resize(99, nodes=1)

    def test_resize_bad_arguments_rejected(self, dsrt):
        dsrt.reserve(0.5, nodes=2, pid=1)
        with pytest.raises(ResourceError):
            dsrt.resize(1, nodes=0)
        with pytest.raises(ResourceError):
            dsrt.resize(1, fraction=1.5)
