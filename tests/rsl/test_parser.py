"""Tests for the RSL parser (repro.rsl.parser / ast)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import RSLError
from repro.rsl.ast import RSLExpression, RSLRelation
from repro.rsl.parser import parse_rsl


class TestBasicParsing:
    def test_conjunction(self):
        expression = parse_rsl("&(count=10)(memory=2048)")
        assert expression.operator == "&"
        assert len(expression.relations) == 2
        assert expression.attributes() == {"count": 10.0, "memory": 2048.0}

    def test_bare_relations_default_to_conjunction(self):
        expression = parse_rsl("(count=10)(memory=64)")
        assert expression.operator == "&"

    def test_comparison_operators(self):
        expression = parse_rsl("&(memory>=64)(disk<1000)(count!=0)")
        operators = {r.attribute: r.operator for r in expression.relations}
        assert operators == {"memory": ">=", "disk": "<", "count": "!="}

    def test_string_values(self):
        expression = parse_rsl("&(executable=/bin/app)(os=linux)")
        assert expression.attributes()["executable"] == "/bin/app"

    def test_quoted_strings(self):
        expression = parse_rsl('&(label="my service (v2)")')
        assert expression.attributes()["label"] == "my service (v2)"

    def test_quote_escaping(self):
        expression = parse_rsl('&(label="say ""hi""")')
        assert expression.attributes()["label"] == 'say "hi"'

    def test_value_lists(self):
        expression = parse_rsl("&(arguments=a b c)")
        assert expression.attributes()["arguments"] == ("a", "b", "c")

    def test_parenthesised_list_value(self):
        expression = parse_rsl("&(hosts=(h1 h2))")
        assert expression.attributes()["hosts"] == ("h1", "h2")

    def test_whitespace_insensitive(self):
        a = parse_rsl("&(count=10)(memory=64)")
        b = parse_rsl("  &  ( count = 10 )  ( memory = 64 )  ")
        assert a.attributes() == b.attributes()


class TestNesting:
    def test_disjunction(self):
        expression = parse_rsl("|(count=10)(count=20)")
        assert expression.operator == "|"
        assert expression.satisfied_by({"count": 20})
        assert not expression.satisfied_by({"count": 15})

    def test_nested_expression(self):
        expression = parse_rsl("&(count=10)(|(os=linux)(os=irix))")
        assert expression.satisfied_by({"count": 10, "os": "irix"})
        assert not expression.satisfied_by({"count": 10, "os": "windows"})

    def test_multirequest(self):
        expression = parse_rsl("+(&(count=10))(&(bandwidth=45))")
        assert expression.operator == "+"
        assert len(expression.children) == 2


class TestSatisfaction:
    def test_numeric_comparison(self):
        expression = parse_rsl("&(memory>=64)")
        assert expression.satisfied_by({"memory": 128})
        assert not expression.satisfied_by({"memory": 32})

    def test_missing_attribute_fails(self):
        expression = parse_rsl("&(memory>=64)")
        assert not expression.satisfied_by({})

    def test_string_equality(self):
        expression = parse_rsl("&(os=linux)")
        assert expression.satisfied_by({"os": "linux"})
        assert not expression.satisfied_by({"os": "irix"})

    def test_numeric_strings_compare_numerically(self):
        expression = parse_rsl("&(count=10)")
        assert expression.satisfied_by({"count": "10.0"})


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "&",
        "&(count)",
        "&(count=)",
        "&(=10)",
        "&(count=10",
        '&(label="unterminated)',
        "&(count!10)",
        "&(count=10)trailing",
    ])
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(RSLError):
            parse_rsl(text)

    def test_unknown_operator_in_relation(self):
        with pytest.raises(RSLError):
            RSLRelation("a", "~", 1.0)

    def test_unknown_combinator(self):
        with pytest.raises(RSLError):
            RSLExpression(operator="^")


class TestRenderRoundTrip:
    def test_simple_round_trip(self):
        original = "&(count=10)(memory=2048)(start-time=0)(end-time=100)"
        expression = parse_rsl(original)
        assert parse_rsl(expression.render()).attributes() == \
            expression.attributes()

    @pytest.mark.parametrize("text", [
        "+(&(count=10))(&(bandwidth=45))",
        "&(count=1)(+(&(a=1))(&(b=2)))",       # nested multi-request
        "&(count=10)(|(os=linux)(os=irix))",   # nested disjunction
        "|(&(a=1)(b=2))(&(c=3))",
    ])
    def test_nested_structures_round_trip(self, text):
        expression = parse_rsl(text)
        rendered = expression.render()
        reparsed = parse_rsl(rendered)
        # Idempotent from the first render onward.
        assert reparsed.render() == rendered
        assert reparsed.operator == expression.operator
        assert len(reparsed.children) == len(expression.children)

    @given(st.dictionaries(
        st.text(alphabet="abcdefgh-", min_size=1, max_size=8)
          .filter(lambda s: not s.startswith("-")),
        st.floats(min_value=0, max_value=1e9, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=6))
    def test_numeric_attribute_round_trip(self, attributes):
        relations = tuple(RSLRelation(name, "=", value)
                          for name, value in attributes.items())
        rendered = RSLExpression("&", relations=relations).render()
        parsed = parse_rsl(rendered).attributes()
        assert set(parsed) == set(attributes)
        for name, value in attributes.items():
            assert parsed[name] == pytest.approx(value, rel=1e-9)
