"""Tests for RSL building (repro.rsl.builder)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import RSLError
from repro.qos.vector import ResourceVector
from repro.rsl.builder import reservation_rsl, vector_from_rsl


class TestReservationRsl:
    def test_typical_request(self):
        text = reservation_rsl(
            ResourceVector(cpu=10, memory_mb=2048, disk_mb=15360),
            start_time=0.0, end_time=100.0, service_name="simulation")
        assert "(count=10)" in text
        assert "(memory=2048)" in text
        assert "(disk=15360)" in text
        assert "(start-time=0)" in text
        assert "(end-time=100)" in text
        assert "(label=simulation)" in text

    def test_zero_components_omitted(self):
        text = reservation_rsl(ResourceVector(cpu=4), 0.0, 10.0)
        assert "memory" not in text
        assert "bandwidth" not in text

    def test_inverted_window_rejected(self):
        with pytest.raises(RSLError):
            reservation_rsl(ResourceVector(cpu=1), 10.0, 5.0)


class TestVectorFromRsl:
    def test_round_trip(self):
        demand = ResourceVector(cpu=10, memory_mb=2048, bandwidth_mbps=45)
        text = reservation_rsl(demand, 5.0, 50.0, service_name="svc")
        parsed, start, end, label = vector_from_rsl(text)
        assert parsed == demand
        assert (start, end) == (5.0, 50.0)
        assert label == "svc"

    def test_missing_window_rejected(self):
        with pytest.raises(RSLError):
            vector_from_rsl("&(count=10)")

    def test_inverted_window_rejected(self):
        with pytest.raises(RSLError):
            vector_from_rsl("&(count=1)(start-time=10)(end-time=5)")

    def test_non_numeric_attribute_rejected(self):
        with pytest.raises(RSLError):
            vector_from_rsl("&(count=ten)(start-time=0)(end-time=5)")

    def test_label_optional(self):
        _demand, _s, _e, label = vector_from_rsl(
            "&(count=1)(start-time=0)(end-time=5)")
        assert label is None

    @given(
        st.integers(min_value=0, max_value=256),
        st.floats(min_value=0, max_value=1e5, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=0, max_value=1e5, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=0, max_value=1e4, allow_nan=False,
                  allow_infinity=False),
    )
    def test_round_trip_property(self, cpu, memory, disk, bandwidth):
        demand = ResourceVector(cpu=float(cpu), memory_mb=memory,
                                disk_mb=disk, bandwidth_mbps=bandwidth)
        text = reservation_rsl(demand, 0.0, 10.0)
        parsed, _start, _end, _label = vector_from_rsl(text)
        for field_name in ResourceVector._FIELDS:
            assert getattr(parsed, field_name) == pytest.approx(
                getattr(demand, field_name), rel=1e-9, abs=1e-9)
