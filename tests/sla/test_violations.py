"""Tests for conformance checking (repro.sla.violations)."""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, ServiceSLA
from repro.sla.violations import (
    MeasuredQoS,
    check_conformance,
    violation_penalty,
)
from repro.units import parse_bound


@pytest.fixture
def sla():
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
    return ServiceSLA(
        sla_id=1055, client="c", service_name="s",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=spec, agreed_point=spec.best_point(),
        start=0.0, end=100.0, price_rate=10.0,
        network=NetworkDemand("1.1.1.1", "2.2.2.2", 45.0,
                              parse_bound("LessThan 10%"),
                              delay_bound_ms=50.0))


def measure(**values):
    mapping = {
        "cpu": Dimension.CPU,
        "bandwidth": Dimension.BANDWIDTH_MBPS,
        "loss": Dimension.PACKET_LOSS,
        "delay": Dimension.DELAY_MS,
    }
    return MeasuredQoS(sla_id=1055,
                       values={mapping[k]: v for k, v in values.items()},
                       time=5.0)


class TestCapacityConformance:
    def test_full_delivery_is_conformant(self, sla):
        report = check_conformance(sla, measure(cpu=8.0, bandwidth=45.0))
        assert report.conformant

    def test_shortfall_is_a_violation(self, sla):
        report = check_conformance(sla, measure(cpu=4.0, bandwidth=45.0))
        assert not report.conformant
        violation = report.worst()
        assert violation.dimension is Dimension.CPU
        assert violation.severity == pytest.approx(0.5)

    def test_tolerance_absorbs_noise(self, sla):
        # Table 3's 9.5 of 10 Mbps scenario: within 5% tolerance.
        report = check_conformance(sla, measure(bandwidth=43.0),
                                   tolerance=0.05)
        assert report.conformant

    def test_owed_is_delivered_point_not_agreed(self, sla):
        # Adaptation legitimately moved the session down; conformance
        # is against what the provider currently owes.
        sla.set_delivered_point({Dimension.CPU: 4.0,
                                 Dimension.BANDWIDTH_MBPS: 20.0})
        report = check_conformance(sla, measure(cpu=4.0, bandwidth=20.0))
        assert report.conformant

    def test_missing_measurements_are_skipped(self, sla):
        report = check_conformance(sla, measure())
        assert report.conformant


class TestBoundConformance:
    def test_loss_bound_violation(self, sla):
        report = check_conformance(sla, measure(loss=0.25))
        assert not report.conformant
        assert report.worst().dimension is Dimension.PACKET_LOSS

    def test_loss_within_bound(self, sla):
        report = check_conformance(sla, measure(loss=0.05))
        assert report.conformant

    def test_delay_bound_violation(self, sla):
        report = check_conformance(sla, measure(delay=80.0))
        assert not report.conformant
        assert report.worst().dimension is Dimension.DELAY_MS

    def test_one_violation_per_dimension(self, sla):
        report = check_conformance(
            sla, measure(cpu=1.0, loss=0.5, delay=200.0))
        dimensions = [v.dimension for v in report.violations]
        assert len(dimensions) == len(set(dimensions))


def _fresh_sla():
    """Stateless SLA builder for hypothesis tests (fixtures are not
    reset between generated inputs)."""
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
    return ServiceSLA(
        sla_id=1, client="c", service_name="s",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=spec, agreed_point=spec.best_point(),
        start=0.0, end=100.0, price_rate=10.0,
        network=NetworkDemand("1.1.1.1", "2.2.2.2", 45.0,
                              parse_bound("LessThan 10%")))


class TestConformanceProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=60, deadline=None)
    @given(delivered=st.floats(min_value=0.0, max_value=16.0,
                               allow_nan=False),
           tolerance=st.floats(min_value=0.0, max_value=0.3,
                               allow_nan=False))
    def test_threshold_semantics(self, delivered, tolerance):
        """Measured >= owed*(1-tol) is conformant; below is a violation
        with severity in [0, 1] proportional to the shortfall."""
        sla = _fresh_sla()
        owed = sla.delivered_point[Dimension.CPU]
        report = check_conformance(sla, measure(cpu=delivered),
                                   tolerance=tolerance)
        cpu_violations = [v for v in report.violations
                          if v.dimension is Dimension.CPU]
        if delivered >= owed * (1.0 - tolerance):
            assert not cpu_violations
        else:
            assert len(cpu_violations) == 1
            violation = cpu_violations[0]
            assert 0.0 < violation.severity <= 1.0
            assert violation.severity == pytest.approx(
                min(1.0, (owed - delivered) / owed))

    @settings(max_examples=60, deadline=None)
    @given(loss=st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False))
    def test_loss_bound_dichotomy(self, loss):
        """Every loss value is either within the bound or a violation —
        never silently ignored."""
        sla = _fresh_sla()
        report = check_conformance(sla, measure(loss=loss))
        bound = sla.network.packet_loss_bound
        loss_violations = [v for v in report.violations
                           if v.dimension is Dimension.PACKET_LOSS]
        assert bool(loss_violations) == (not bound.satisfied_by(loss))


class TestPenalties:
    def test_penalty_scales_with_severity_and_duration(self, sla):
        report = check_conformance(sla, measure(cpu=4.0))
        penalty = violation_penalty(sla, report, duration=10.0)
        # price_rate 10, severity 0.5, duration 10 -> 50.
        assert penalty == pytest.approx(50.0)

    def test_no_penalty_when_conformant(self, sla):
        report = check_conformance(sla, measure(cpu=8.0))
        assert violation_penalty(sla, report, duration=10.0) == 0.0

    def test_penalty_rate_multiplies(self, sla):
        report = check_conformance(sla, measure(cpu=4.0))
        assert violation_penalty(sla, report, duration=10.0,
                                 penalty_rate=0.5) == pytest.approx(25.0)
