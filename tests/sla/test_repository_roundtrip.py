"""Hypothesis round-trip property for the repository's XML persistence.

Crash recovery trusts ``SLARepository.export_xml`` / ``from_xml`` (the
snapshot format and the journal's ``sla_saved`` payload) to preserve a
document *exactly* — any lossy field silently changes what a recovered
broker believes it agreed to.  The property drives documents across
lifecycle states, degraded delivered points, adaptation options and
network demands, and requires perfect equality after a round trip.

Values are drawn from grammars the wire format can express exactly:
CPU counts are integral (the Table 1 ``"4 CPU"`` form has no
fractional rendering) and other quantities are eighths or hundredths,
which survive the codec's 12-significant-digit float rendering.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.classes import ServiceClass
from repro.qos.parameters import (
    Dimension,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)
from repro.qos.specification import QoSSpecification
from repro.sla.document import (
    AdaptationOptions,
    NetworkDemand,
    ServiceSLA,
    SlaStatus,
)
from repro.sla.repository import SLARepository
from repro.units import parse_bound


def eighths(low: int, high: int):
    """Floats with power-of-two denominators: exact in binary and
    short in decimal, so they survive any faithful text codec — but
    only a faithful one.  A 64th like ``100.515625`` carries nine
    significant digits, well past the 6-digit ``%g`` rendering this
    property exists to keep out of the codec."""
    return st.integers(low * 64, high * 64).map(lambda n: n / 64.0)


_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_&<>",
                 min_size=1, max_size=12)
_fractions = st.integers(0, 100).map(lambda n: n / 100.0)
_ips = st.sampled_from(["10.10.10.3", "135.200.50.101",
                        "192.200.168.33"])
_bounds = st.builds(
    lambda word, percent: parse_bound(f"{word} {percent}%"),
    st.sampled_from(["LessThan", "AtMost", "GreaterThan", "AtLeast",
                     "Equals"]),
    st.integers(1, 99))


@st.composite
def network_demands(draw):
    return NetworkDemand(
        source_ip=draw(_ips), dest_ip=draw(_ips),
        bandwidth_mbps=draw(eighths(1, 622)),
        packet_loss_bound=draw(st.none() | _bounds),
        delay_bound_ms=draw(st.none() | eighths(1, 500)))


@st.composite
def service_slas(draw, sla_id: int) -> ServiceSLA:
    cpu_low = draw(st.integers(1, 8))
    cpu_high = draw(st.integers(cpu_low, 16))
    if cpu_low == cpu_high:
        cpu = exact_parameter(Dimension.CPU, cpu_low)
    else:
        cpu = range_parameter(Dimension.CPU, cpu_low, cpu_high)
    memory_low = draw(eighths(1, 512))
    memory = range_parameter(Dimension.MEMORY_MB, memory_low,
                             memory_low + draw(eighths(0, 512)))
    parameters = [cpu, memory]
    if draw(st.booleans()):
        losses = sorted({n / 100.0
                         for n in draw(st.lists(st.integers(1, 99),
                                                min_size=2, max_size=4,
                                                unique=True))})
        parameters.append(discrete_parameter(Dimension.PACKET_LOSS,
                                             losses))
    specification = QoSSpecification.from_iterable(parameters)
    service_class = draw(st.sampled_from([ServiceClass.GUARANTEED,
                                          ServiceClass.CONTROLLED_LOAD]))
    start = draw(eighths(0, 1000))
    adaptation = AdaptationOptions(
        alternative_points=tuple(
            [specification.worst_point()] if draw(st.booleans()) else []),
        accept_promotion=draw(st.booleans()),
        accept_degradation=draw(st.booleans()),
        accept_termination=draw(st.booleans()))
    sla = ServiceSLA(
        sla_id=sla_id,
        client=draw(_names),
        service_name=draw(_names),
        service_class=service_class,
        specification=specification,
        agreed_point=specification.best_point(),
        start=start,
        end=start + draw(eighths(1, 1000)),
        price_rate=draw(eighths(0, 100)),
        network=draw(st.none() | network_demands()),
        adaptation=adaptation)
    sla.status = draw(st.sampled_from(SlaStatus))
    if (service_class is ServiceClass.CONTROLLED_LOAD
            and draw(st.booleans())):
        # A squeezed session: the delivered point sits at the floor.
        sla.set_delivered_point(specification.worst_point())
    return sla


@st.composite
def repositories(draw) -> SLARepository:
    repository = SLARepository()
    count = draw(st.integers(0, 4))
    for offset in range(count):
        repository.save(draw(service_slas(sla_id=1000 + offset)))
    return repository


@given(repositories())
@settings(max_examples=60, deadline=None)
def test_repository_xml_roundtrip_is_lossless(repository):
    restored = SLARepository.from_xml(repository.export_xml())
    assert restored.all() == repository.all()


@given(repositories())
@settings(max_examples=20, deadline=None)
def test_restored_id_counter_never_collides(repository):
    restored = SLARepository.from_xml(repository.export_xml())
    taken = {sla.sla_id for sla in repository.all()}
    assert restored.next_id() not in taken
    assert restored.next_id() > max(taken, default=999)


@given(service_slas(sla_id=1077))
@settings(max_examples=60, deadline=None)
def test_compact_renderer_matches_the_tree_encoder(sla):
    """The journal's string renderer and the ElementTree encoder are
    two serializers of one wire format; byte equality keeps them from
    drifting."""
    import xml.etree.ElementTree as ET

    from repro.xmlmsg.codec import encode_service_sla, render_service_sla

    assert render_service_sla(sla) == ET.tostring(
        encode_service_sla(sla), encoding="unicode")


@given(service_slas(sla_id=1055))
@settings(max_examples=60, deadline=None)
def test_single_document_roundtrip_preserves_every_field(sla):
    repository = SLARepository()
    repository.save(sla)
    (restored,) = SLARepository.from_xml(repository.export_xml()).all()
    assert restored.sla_id == sla.sla_id
    assert restored.client == sla.client
    assert restored.service_name == sla.service_name
    assert restored.service_class is sla.service_class
    assert restored.specification == sla.specification
    assert restored.agreed_point == sla.agreed_point
    assert restored.delivered_point == sla.delivered_point
    assert restored.status is sla.status
    assert (restored.start, restored.end) == (sla.start, sla.end)
    assert restored.price_rate == sla.price_rate
    assert restored.network == sla.network
    assert restored.adaptation == sla.adaptation


@given(service_slas(sla_id=1088))
@settings(max_examples=60, deadline=None)
def test_table1_renderer_matches_the_tree_encoder(sla):
    """``render_service_specific`` is pinned byte-identical to the
    Table 1 tree encoder, like every string-builder fast path."""
    import xml.etree.ElementTree as ET

    from repro.xmlmsg.codec import (
        encode_service_specific,
        render_service_specific,
    )

    assert render_service_specific(sla) == ET.tostring(
        encode_service_specific(sla), encoding="unicode")


@st.composite
def measurements(draw, sla: "ServiceSLA") -> "MeasuredQoS":
    from repro.sla.violations import MeasuredQoS

    values = {}
    if draw(st.booleans()):
        values[Dimension.CPU] = float(draw(st.integers(0, 16)))
    if draw(st.booleans()):
        values[Dimension.MEMORY_MB] = draw(eighths(1, 512))
    if sla.network is not None:
        if draw(st.booleans()):
            values[Dimension.BANDWIDTH_MBPS] = draw(eighths(1, 622))
        if draw(st.booleans()):
            values[Dimension.PACKET_LOSS] = draw(
                st.integers(0, 100)) / 100.0
        if draw(st.booleans()):
            values[Dimension.DELAY_MS] = draw(eighths(1, 500))
    return MeasuredQoS(sla_id=sla.sla_id, values=values,
                       time=draw(eighths(0, 100)))


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_table3_renderer_matches_the_tree_encoder(data):
    """``render_qos_levels`` — the conformance reply, the chattiest
    periodic message — is pinned byte-identical to the Table 3 tree
    encoder across measured-value subsets, bound-satisfied and
    bound-violated packet loss, and SLAs with and without a network
    block."""
    import xml.etree.ElementTree as ET

    from repro.xmlmsg.codec import encode_qos_levels, render_qos_levels

    sla = data.draw(service_slas(sla_id=1099))
    measured = data.draw(measurements(sla))
    assert render_qos_levels(sla, measured) == ET.tostring(
        encode_qos_levels(sla, measured), encoding="unicode")


@given(repositories())
@settings(max_examples=40, deadline=None)
def test_export_xml_matches_the_tree_encoder(repository):
    """The snapshot exporter's string assembly is pinned byte-identical
    to ``ET.tostring`` of the equivalent compact element tree."""
    import xml.etree.ElementTree as ET

    from repro.xmlmsg.codec import encode_service_sla
    from repro.xmlmsg.document import element, subelement

    root = element("SLA_Repository")
    for sla in repository.all():
        entry = subelement(root, "Entry", status=sla.status.value)
        entry.append(encode_service_sla(sla))
    assert repository.export_xml() == ET.tostring(root, encoding="unicode")
