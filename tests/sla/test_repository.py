"""Tests for the SLA repository (repro.sla.repository)."""

from __future__ import annotations

import pytest

from repro.errors import SLAError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, ServiceSLA
from repro.sla.repository import SLARepository


def make_sla(repo, service_class=ServiceClass.CONTROLLED_LOAD,
             client="c", **adaptation):
    if service_class is ServiceClass.GUARANTEED:
        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 4))
    else:
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    sla = ServiceSLA(sla_id=repo.next_id(), client=client, service_name="s",
                     service_class=service_class, specification=spec,
                     agreed_point=spec.best_point(), start=0.0, end=10.0,
                     adaptation=AdaptationOptions(**adaptation))
    return repo.save(sla)


class TestStorage:
    def test_ids_start_at_first_id(self):
        repo = SLARepository(first_id=1055)
        assert repo.next_id() == 1055
        assert repo.next_id() == 1056

    def test_save_and_get(self):
        repo = SLARepository()
        sla = make_sla(repo)
        assert repo.get(sla.sla_id) is sla

    def test_get_unknown_raises(self):
        with pytest.raises(SLAError):
            SLARepository().get(1)

    def test_all_ordered_by_id(self):
        repo = SLARepository()
        slas = [make_sla(repo) for _ in range(3)]
        assert [s.sla_id for s in repo.all()] == \
            sorted(s.sla_id for s in slas)


class TestPersistence:
    def test_round_trip_preserves_documents_and_statuses(self):
        repo = SLARepository()
        proposed = make_sla(repo)
        active = make_sla(repo, ServiceClass.GUARANTEED,
                          accept_termination=True)
        active.establish()
        active.activate()
        done = make_sla(repo)
        done.establish()
        done.activate()
        done.complete()

        restored = SLARepository.from_xml(repo.export_xml())
        assert len(restored) == 3
        for original in repo.all():
            copy = restored.get(original.sla_id)
            assert copy.status is original.status
            assert copy.client == original.client
            assert copy.agreed_point == original.agreed_point
            assert copy.adaptation == original.adaptation
        assert [s.sla_id for s in restored.active()] == [active.sla_id]

    def test_degraded_delivered_point_survives(self):
        from repro.qos.parameters import Dimension
        repo = SLARepository()
        sla = make_sla(repo)
        sla.establish()
        sla.activate()
        sla.set_delivered_point({Dimension.CPU: 2.0})
        restored = SLARepository.from_xml(repo.export_xml())
        copy = restored.get(sla.sla_id)
        assert copy.is_degraded()
        assert copy.delivered_point == {Dimension.CPU: 2.0}

    def test_id_counter_resumes_after_highest(self):
        repo = SLARepository()
        make_sla(repo)
        last = make_sla(repo)
        restored = SLARepository.from_xml(repo.export_xml())
        assert restored.next_id() == last.sla_id + 1

    def test_empty_repository_round_trip(self):
        restored = SLARepository.from_xml(SLARepository().export_xml())
        assert len(restored) == 0
        assert restored.next_id() == 1000

    def test_wrong_root_rejected(self):
        from repro.errors import MessageError
        with pytest.raises(MessageError):
            SLARepository.from_xml("<NotARepository/>")


class TestFilters:
    def test_live_and_active(self):
        repo = SLARepository()
        proposed = make_sla(repo)
        established = make_sla(repo)
        established.establish()
        active = make_sla(repo)
        active.establish()
        active.activate()
        done = make_sla(repo)
        done.establish()
        done.activate()
        done.complete()
        assert {s.sla_id for s in repo.live()} == \
            {established.sla_id, active.sla_id}
        assert [s.sla_id for s in repo.active()] == [active.sla_id]

    def test_by_client(self):
        repo = SLARepository()
        make_sla(repo, client="alice")
        make_sla(repo, client="bob")
        make_sla(repo, client="alice")
        assert len(repo.by_client("alice")) == 2

    def test_by_class(self):
        repo = SLARepository()
        guaranteed = make_sla(repo, ServiceClass.GUARANTEED)
        guaranteed.establish()
        controlled = make_sla(repo, ServiceClass.CONTROLLED_LOAD)
        controlled.establish()
        assert [s.sla_id for s in
                repo.by_class(ServiceClass.GUARANTEED)] == \
            [guaranteed.sla_id]

    def test_degradable_filter_is_scenario1(self):
        repo = SLARepository()
        rigid = make_sla(repo)
        rigid.establish()
        rigid.activate()
        flexible = make_sla(repo, accept_degradation=True)
        flexible.establish()
        flexible.activate()
        terminable = make_sla(repo, accept_termination=True)
        terminable.establish()
        terminable.activate()
        assert {s.sla_id for s in repo.degradable()} == \
            {flexible.sla_id, terminable.sla_id}

    def test_degraded_filter(self):
        repo = SLARepository()
        sla = make_sla(repo)
        sla.establish()
        sla.activate()
        assert repo.degraded() == []
        sla.set_delivered_point({Dimension.CPU: 2.0})
        assert repo.degraded() == [sla]
