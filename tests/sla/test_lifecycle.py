"""Tests for the Figure 3 phase machine (repro.sla.lifecycle)."""

from __future__ import annotations

import pytest

from repro.errors import LifecycleError
from repro.sla.lifecycle import (
    PHASE_FUNCTIONS,
    Phase,
    QoSFunction,
    QoSSession,
)


class TestPhaseTransitions:
    def test_figure3_happy_path(self):
        session = QoSSession(session_id=1)
        assert session.phase is Phase.ESTABLISHMENT
        session.enter_active()
        assert session.phase is Phase.ACTIVE
        session.enter_clearing("completion")
        assert session.phase is Phase.CLEARING
        session.close()
        assert session.phase is Phase.CLOSED

    def test_establishment_may_clear_directly(self):
        session = QoSSession(session_id=1)
        session.enter_clearing("violation")
        assert session.clearing_cause == "violation"

    def test_active_from_clearing_rejected(self):
        session = QoSSession(session_id=1)
        session.enter_clearing("completion")
        with pytest.raises(LifecycleError):
            session.enter_active()

    def test_double_clearing_rejected(self):
        session = QoSSession(session_id=1)
        session.enter_clearing("completion")
        with pytest.raises(LifecycleError):
            session.enter_clearing("expiration")

    def test_close_requires_clearing(self):
        with pytest.raises(LifecycleError):
            QoSSession(session_id=1).close()

    def test_unknown_cause_rejected(self):
        with pytest.raises(LifecycleError):
            QoSSession(session_id=1).enter_clearing("boredom")

    @pytest.mark.parametrize("cause", ["expiration", "violation",
                                       "completion", "client-request"])
    def test_paper_causes_accepted(self, cause):
        session = QoSSession(session_id=1)
        session.enter_clearing(cause)
        assert session.clearing_cause == cause


class TestFunctionPhaseMapping:
    def test_establishment_functions(self):
        session = QoSSession(session_id=1)
        for function in (QoSFunction.SPECIFICATION, QoSFunction.MAPPING,
                         QoSFunction.NEGOTIATION, QoSFunction.RESERVATION):
            session.perform(function, time=1.0)
        assert len(session.history) == 4

    def test_active_function_in_establishment_rejected(self):
        session = QoSSession(session_id=1)
        with pytest.raises(LifecycleError):
            session.perform(QoSFunction.ADAPTATION)

    def test_adaptation_is_active_phase(self):
        session = QoSSession(session_id=1)
        session.enter_active()
        session.perform(QoSFunction.MONITORING)
        session.perform(QoSFunction.ADAPTATION)
        session.perform(QoSFunction.RENEGOTIATION)

    def test_clearing_allows_termination_and_accounting(self):
        session = QoSSession(session_id=1)
        session.enter_clearing("completion")
        session.perform(QoSFunction.TERMINATION)
        session.perform(QoSFunction.ACCOUNTING)
        with pytest.raises(LifecycleError):
            session.perform(QoSFunction.MONITORING)

    def test_closed_allows_nothing(self):
        session = QoSSession(session_id=1)
        session.enter_clearing("completion")
        session.close()
        for function in QoSFunction:
            with pytest.raises(LifecycleError):
                session.perform(function)

    def test_accounting_in_both_active_and_clearing(self):
        # Figure 3 shows accounting spanning the Active and Clearing
        # columns.
        assert QoSFunction.ACCOUNTING in PHASE_FUNCTIONS[Phase.ACTIVE]
        assert QoSFunction.ACCOUNTING in PHASE_FUNCTIONS[Phase.CLEARING]

    def test_every_function_appears_in_some_phase(self):
        mapped = {function
                  for functions in PHASE_FUNCTIONS.values()
                  for function in functions}
        assert mapped == set(QoSFunction)


class TestHistory:
    def test_functions_performed_deduplicates_in_order(self):
        session = QoSSession(session_id=1)
        session.perform(QoSFunction.SPECIFICATION, 1.0)
        session.perform(QoSFunction.NEGOTIATION, 2.0)
        session.perform(QoSFunction.SPECIFICATION, 3.0)
        assert session.functions_performed() == [
            QoSFunction.SPECIFICATION, QoSFunction.NEGOTIATION]

    def test_history_records_times(self):
        session = QoSSession(session_id=1)
        session.perform(QoSFunction.SPECIFICATION, 1.5)
        assert session.history == [(1.5, QoSFunction.SPECIFICATION)]
