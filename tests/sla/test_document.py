"""Tests for SLA documents (repro.sla.document)."""

from __future__ import annotations

import pytest

from repro.errors import SLAError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import (
    AdaptationOptions,
    NetworkDemand,
    ServiceSLA,
    SlaStatus,
)


def controlled_sla(**overrides):
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        range_parameter(Dimension.BANDWIDTH_MBPS, 10, 45))
    defaults = dict(sla_id=1, client="c", service_name="s",
                    service_class=ServiceClass.CONTROLLED_LOAD,
                    specification=spec, agreed_point=spec.best_point(),
                    start=0.0, end=100.0, price_rate=10.0)
    defaults.update(overrides)
    return ServiceSLA(**defaults)


def guaranteed_sla(**overrides):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 10))
    defaults = dict(sla_id=2, client="c", service_name="s",
                    service_class=ServiceClass.GUARANTEED,
                    specification=spec, agreed_point=spec.best_point(),
                    start=0.0, end=100.0)
    defaults.update(overrides)
    return ServiceSLA(**defaults)


class TestConstruction:
    def test_best_effort_has_no_sla(self):
        with pytest.raises(SLAError):
            controlled_sla(service_class=ServiceClass.BEST_EFFORT)

    def test_inverted_window_rejected(self):
        with pytest.raises(SLAError):
            controlled_sla(start=10.0, end=5.0)

    def test_agreed_point_must_be_admissible(self):
        with pytest.raises(SLAError):
            controlled_sla(agreed_point={Dimension.CPU: 100.0,
                                         Dimension.BANDWIDTH_MBPS: 45.0})

    def test_delivered_defaults_to_agreed(self):
        sla = controlled_sla()
        assert sla.delivered_point == sla.agreed_point

    def test_network_demand_validation(self):
        with pytest.raises(SLAError):
            NetworkDemand("a", "b", 0.0)


class TestDemand:
    def test_agreed_demand(self):
        sla = controlled_sla()
        assert sla.agreed_demand().cpu == 8
        assert sla.agreed_demand().bandwidth_mbps == 45

    def test_floor_demand(self):
        sla = controlled_sla()
        assert sla.floor_demand().cpu == 2

    def test_duration(self):
        assert controlled_sla().duration == 100.0


class TestDeliveredPointMovement:
    def test_controlled_load_moves_within_range(self):
        sla = controlled_sla()
        sla.set_delivered_point({Dimension.CPU: 4.0,
                                 Dimension.BANDWIDTH_MBPS: 20.0})
        assert sla.delivered_demand().cpu == 4.0
        assert sla.is_degraded()

    def test_guaranteed_is_pinned(self):
        sla = guaranteed_sla()
        with pytest.raises(SLAError):
            sla.set_delivered_point({Dimension.CPU: 5.0})

    def test_guaranteed_allows_identity_move(self):
        sla = guaranteed_sla()
        sla.set_delivered_point(dict(sla.agreed_point))

    def test_out_of_range_rejected(self):
        sla = controlled_sla()
        with pytest.raises(SLAError):
            sla.set_delivered_point({Dimension.CPU: 1.0,
                                     Dimension.BANDWIDTH_MBPS: 20.0})

    def test_is_degraded_false_at_agreed(self):
        assert not controlled_sla().is_degraded()


class TestStatusMachine:
    def test_happy_path(self):
        sla = controlled_sla()
        assert sla.status is SlaStatus.PROPOSED
        sla.establish()
        sla.activate()
        assert sla.status.is_live
        sla.complete()
        assert sla.status is SlaStatus.COMPLETED
        assert not sla.status.is_live

    def test_terminate_from_any_live_state(self):
        sla = controlled_sla()
        sla.establish()
        sla.terminate()
        assert sla.status is SlaStatus.TERMINATED

    def test_expire(self):
        sla = controlled_sla()
        sla.establish()
        sla.activate()
        sla.expire()
        assert sla.status is SlaStatus.EXPIRED

    def test_activate_before_establish_rejected(self):
        with pytest.raises(SLAError):
            controlled_sla().activate()

    def test_complete_before_activate_rejected(self):
        sla = controlled_sla()
        sla.establish()
        with pytest.raises(SLAError):
            sla.complete()

    def test_terminate_completed_rejected(self):
        sla = controlled_sla()
        sla.establish()
        sla.activate()
        sla.complete()
        with pytest.raises(SLAError):
            sla.terminate()


class TestAdaptationOptions:
    def test_is_degradable(self):
        assert AdaptationOptions(accept_degradation=True).is_degradable
        assert AdaptationOptions(accept_termination=True).is_degradable
        assert AdaptationOptions(
            alternative_points=({Dimension.CPU: 2.0},)).is_degradable
        assert not AdaptationOptions().is_degradable
