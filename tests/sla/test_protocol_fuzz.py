"""Stateful fuzz tests for the negotiation protocol and the session
lifecycle: random action sequences can never corrupt either state
machine — every call either succeeds legally or raises the documented
error, and the observable state stays consistent."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import LifecycleError, NegotiationError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.lifecycle import (
    PHASE_FUNCTIONS,
    Phase,
    QoSFunction,
    QoSSession,
)
from repro.sla.negotiation import Negotiation, NegotiationState, Offer, ServiceRequest


def _request():
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    return ServiceRequest(client="fuzz", service_name="svc",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=10.0)


def _offers():
    return [Offer(point={Dimension.CPU: 8.0}, price_rate=8.0),
            Offer(point={Dimension.CPU: 2.0}, price_rate=2.0)]


class NegotiationMachine(RuleBasedStateMachine):
    """Random propose/accept/reject/counter interleavings."""

    def __init__(self):
        super().__init__()
        self.negotiation = Negotiation(_request())

    def _attempt(self, action) -> None:
        state_before = self.negotiation.state
        try:
            action()
        except NegotiationError:
            # Illegal for the current state: state must be unchanged.
            assert self.negotiation.state is state_before

    @rule()
    def propose(self):
        self._attempt(lambda: self.negotiation.propose(_offers()))

    @rule()
    def propose_empty(self):
        self._attempt(lambda: self.negotiation.propose([]))

    @rule()
    def accept(self):
        self._attempt(self.negotiation.accept)

    @rule()
    def reject(self):
        self._attempt(self.negotiation.reject)

    @rule(budget=st.floats(min_value=0.1, max_value=20.0,
                           allow_nan=False))
    def counter(self, budget):
        self._attempt(lambda: self.negotiation.counter(
            budget_rate=budget))

    @rule()
    def build(self):
        try:
            sla = self.negotiation.build_sla(sla_id=1)
        except NegotiationError:
            assert self.negotiation.state is not NegotiationState.ACCEPTED
        else:
            assert self.negotiation.state is NegotiationState.ACCEPTED
            assert sla.agreed_point == self.negotiation.accepted_offer.point

    @invariant()
    def accepted_offer_consistency(self):
        if self.negotiation.state is NegotiationState.ACCEPTED:
            assert self.negotiation.accepted_offer is not None
        if self.negotiation.state in (NegotiationState.REQUESTED,
                                      NegotiationState.FAILED):
            assert self.negotiation.accepted_offer is None

    @invariant()
    def offers_only_when_offered_or_after(self):
        if self.negotiation.state is NegotiationState.REQUESTED:
            assert self.negotiation.offers == []


NegotiationMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestNegotiationFuzz = NegotiationMachine.TestCase


class LifecycleMachine(RuleBasedStateMachine):
    """Random phase transitions and function executions."""

    def __init__(self):
        super().__init__()
        self.session = QoSSession(session_id=1)

    def _attempt(self, action) -> None:
        phase_before = self.session.phase
        history_before = len(self.session.history)
        try:
            action()
        except LifecycleError:
            assert self.session.phase is phase_before
            assert len(self.session.history) == history_before

    @rule()
    def enter_active(self):
        self._attempt(self.session.enter_active)

    @rule(cause=st.sampled_from(["expiration", "violation",
                                 "completion", "client-request",
                                 "nonsense"]))
    def enter_clearing(self, cause):
        self._attempt(lambda: self.session.enter_clearing(cause))

    @rule()
    def close(self):
        self._attempt(self.session.close)

    @rule(function=st.sampled_from(list(QoSFunction)))
    def perform(self, function):
        self._attempt(lambda: self.session.perform(function))

    @invariant()
    def history_matches_phase_legality(self):
        # Every recorded function must have been legal in *some* phase
        # the session has passed through; spot-check the last one
        # against the current-or-earlier phases.
        for _time, function in self.session.history[-3:]:
            assert any(function in PHASE_FUNCTIONS[phase]
                       for phase in Phase)

    @invariant()
    def clearing_cause_set_iff_cleared(self):
        if self.session.phase in (Phase.CLEARING, Phase.CLOSED):
            assert self.session.clearing_cause in (
                "expiration", "violation", "completion", "client-request")
        if self.session.phase is Phase.ESTABLISHMENT:
            assert self.session.clearing_cause is None


LifecycleMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestLifecycleFuzz = LifecycleMachine.TestCase
