"""Stateful fuzz tests for the negotiation protocol and the session
lifecycle: random action sequences can never corrupt either state
machine — every call either succeeds legally or raises the documented
error, and the observable state stays consistent."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.testbed import attach_control_plane, build_testbed
from repro.errors import (
    LifecycleError,
    MessageError,
    NegotiationError,
    ValidationError,
)
from repro.xmlmsg.document import element, subelement
from repro.xmlmsg.envelope import Envelope
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.lifecycle import (
    PHASE_FUNCTIONS,
    Phase,
    QoSFunction,
    QoSSession,
)
from repro.sla.negotiation import Negotiation, NegotiationState, Offer, ServiceRequest


def _request():
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    return ServiceRequest(client="fuzz", service_name="svc",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=10.0)


def _offers():
    return [Offer(point={Dimension.CPU: 8.0}, price_rate=8.0),
            Offer(point={Dimension.CPU: 2.0}, price_rate=2.0)]


class NegotiationMachine(RuleBasedStateMachine):
    """Random propose/accept/reject/counter interleavings."""

    def __init__(self):
        super().__init__()
        self.negotiation = Negotiation(_request())

    def _attempt(self, action) -> None:
        state_before = self.negotiation.state
        try:
            action()
        except NegotiationError:
            # Illegal for the current state: state must be unchanged.
            assert self.negotiation.state is state_before

    @rule()
    def propose(self):
        self._attempt(lambda: self.negotiation.propose(_offers()))

    @rule()
    def propose_empty(self):
        self._attempt(lambda: self.negotiation.propose([]))

    @rule()
    def accept(self):
        self._attempt(self.negotiation.accept)

    @rule()
    def reject(self):
        self._attempt(self.negotiation.reject)

    @rule(budget=st.floats(min_value=0.1, max_value=20.0,
                           allow_nan=False))
    def counter(self, budget):
        self._attempt(lambda: self.negotiation.counter(
            budget_rate=budget))

    @rule()
    def build(self):
        try:
            sla = self.negotiation.build_sla(sla_id=1)
        except NegotiationError:
            assert self.negotiation.state is not NegotiationState.ACCEPTED
        else:
            assert self.negotiation.state is NegotiationState.ACCEPTED
            assert sla.agreed_point == self.negotiation.accepted_offer.point

    @invariant()
    def accepted_offer_consistency(self):
        if self.negotiation.state is NegotiationState.ACCEPTED:
            assert self.negotiation.accepted_offer is not None
        if self.negotiation.state in (NegotiationState.REQUESTED,
                                      NegotiationState.FAILED):
            assert self.negotiation.accepted_offer is None

    @invariant()
    def offers_only_when_offered_or_after(self):
        if self.negotiation.state is NegotiationState.REQUESTED:
            assert self.negotiation.offers == []


NegotiationMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestNegotiationFuzz = NegotiationMachine.TestCase


class LifecycleMachine(RuleBasedStateMachine):
    """Random phase transitions and function executions."""

    def __init__(self):
        super().__init__()
        self.session = QoSSession(session_id=1)

    def _attempt(self, action) -> None:
        phase_before = self.session.phase
        history_before = len(self.session.history)
        try:
            action()
        except LifecycleError:
            assert self.session.phase is phase_before
            assert len(self.session.history) == history_before

    @rule()
    def enter_active(self):
        self._attempt(self.session.enter_active)

    @rule(cause=st.sampled_from(["expiration", "violation",
                                 "completion", "client-request",
                                 "nonsense"]))
    def enter_clearing(self, cause):
        self._attempt(lambda: self.session.enter_clearing(cause))

    @rule()
    def close(self):
        self._attempt(self.session.close)

    @rule(function=st.sampled_from(list(QoSFunction)))
    def perform(self, function):
        self._attempt(lambda: self.session.perform(function))

    @invariant()
    def history_matches_phase_legality(self):
        # Every recorded function must have been legal in *some* phase
        # the session has passed through; spot-check the last one
        # against the current-or-earlier phases.
        for _time, function in self.session.history[-3:]:
            assert any(function in PHASE_FUNCTIONS[phase]
                       for phase in Phase)

    @invariant()
    def clearing_cause_set_iff_cleared(self):
        if self.session.phase in (Phase.CLEARING, Phase.CLOSED):
            assert self.session.clearing_cause in (
                "expiration", "violation", "completion", "client-request")
        if self.session.phase is Phase.ESTABLISHMENT:
            assert self.session.clearing_cause is None


LifecycleMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestLifecycleFuzz = LifecycleMachine.TestCase


# ======================================================================
# Envelope wire fuzz: mutated / truncated headers
# ======================================================================

_HEADER_TAGS = ("MessageID", "Sender", "Recipient", "Action")

_mutations = st.one_of(
    st.tuples(st.just("truncate"), st.integers(min_value=0)),
    st.tuples(st.just("drop_header"), st.sampled_from(_HEADER_TAGS)),
    st.tuples(st.just("blank_header"), st.sampled_from(_HEADER_TAGS)),
    st.tuples(st.just("scramble_header"), st.sampled_from(_HEADER_TAGS),
              st.text(alphabet="abcxyz-0123<&", min_size=1, max_size=12)),
    st.tuples(st.just("noise_in_header"), st.integers(min_value=0),
              st.sampled_from(list("<>&\"'qz0/"))),
)


def _mutate(xml: str, op) -> str:
    """Apply one header-targeted wire mutation to an envelope doc."""
    kind = op[0]
    if kind == "truncate":
        return xml[:op[1] % (len(xml) + 1)]
    if kind == "drop_header":
        return re.sub(rf"\s*<{op[1]}>[^<]*</{op[1]}>", "", xml, count=1)
    if kind == "blank_header":
        return re.sub(rf"<{op[1]}>[^<]*</{op[1]}>",
                      f"<{op[1]}></{op[1]}>", xml, count=1)
    if kind == "scramble_header":
        return re.sub(rf"<{op[1]}>[^<]*</{op[1]}>",
                      f"<{op[1]}>{op[2]}</{op[1]}>", xml, count=1)
    # noise_in_header: inject one character somewhere inside <Header>
    # (anywhere, if an earlier truncation already removed the header).
    start = xml.find("<Header>")
    end = xml.find("</Header>")
    if start == -1 or end == -1 or end <= start:
        start, end = 0, len(xml)
    position = start + op[1] % max(end - start, 1)
    return xml[:position] + op[2] + xml[position:]


def _sample_envelope_xml() -> str:
    body = element("Accept_Offer")
    subelement(body, "Negotiation-ID", "1")
    subelement(body, "Offer-Index", "0")
    return Envelope(sender="fuzz", recipient="aqos",
                    action="accept_offer", body=body).to_xml()


class TestEnvelopeWireFuzz:
    """Malformed control-plane messages must fail typed — and never
    half-commit a reservation."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(_mutations, min_size=1, max_size=3))
    def test_parse_raises_message_error_or_roundtrips(self, ops):
        """Any header mutation/truncation either still parses or
        raises :class:`MessageError` — never ``KeyError``,
        ``AttributeError`` or a raw ``ParseError``."""
        xml = _sample_envelope_xml()
        for op in ops:
            xml = _mutate(xml, op)
        try:
            envelope = Envelope.from_xml(xml)
        except MessageError:
            return
        # Survivors must re-serialize losslessly (headers are intact).
        replayed = Envelope.from_xml(envelope.to_xml())
        assert replayed.dedup_key == envelope.dedup_key
        assert replayed.action == envelope.action

    @settings(max_examples=25, deadline=None)
    @given(_mutations)
    def test_mutated_accept_never_partially_commits(self, op):
        """A mutated ``accept_offer`` either fails with a typed error
        and changes *nothing* (no committed capacity, no slot-table
        entry, negotiation still pending) or goes through whole."""
        testbed = attach_control_plane(build_testbed())
        client = testbed.client("fuzz")
        negotiation_id, offers, _reason = client.request_service(
            _request_for_broker())
        assert negotiation_id is not None and offers
        partition = testbed.partition
        table = testbed.compute_rm.slot_table
        committed_before = partition.committed_total()
        entries_before = len(table)
        slas_before = len(testbed.repository.all())

        body = element("Accept_Offer")
        subelement(body, "Negotiation-ID", str(negotiation_id))
        subelement(body, "Offer-Index", "0")
        xml = _mutate(Envelope(sender="fuzz", recipient="aqos",
                               action="accept_offer", body=body).to_xml(),
                      op)
        try:
            response = testbed.bus.request(Envelope.from_xml(xml))
        except (MessageError, ValidationError):
            # All-or-nothing: the failed message left no trace.
            assert partition.committed_total() == committed_before
            assert len(table) == entries_before
            assert len(testbed.repository.all()) == slas_before
            assert negotiation_id in testbed.gateway.pending_negotiations
        else:
            assert response.action == "sla_established"
            assert len(testbed.repository.all()) == slas_before + 1
            assert negotiation_id not in \
                testbed.gateway.pending_negotiations


def _request_for_broker():
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    return ServiceRequest(client="fuzz",
                          service_name="simulation-service",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=10.0)
