"""Tests for the negotiation protocol (repro.sla.negotiation)."""

from __future__ import annotations

import pytest

from repro.errors import NegotiationError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import (
    Negotiation,
    NegotiationState,
    Offer,
    ServiceRequest,
)


def make_request(budget_rate=None):
    spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
    return ServiceRequest(client="alice", service_name="render",
                          service_class=ServiceClass.CONTROLLED_LOAD,
                          specification=spec, start=0.0, end=50.0,
                          budget_rate=budget_rate)


def offers():
    return [Offer(point={Dimension.CPU: 8.0}, price_rate=8.0,
                  note="best"),
            Offer(point={Dimension.CPU: 2.0}, price_rate=2.0,
                  note="floor")]


class TestProtocol:
    def test_accept_flow(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        assert negotiation.state is NegotiationState.OFFERED
        chosen = negotiation.accept()
        assert chosen.note == "best"
        assert negotiation.state is NegotiationState.ACCEPTED

    def test_accept_specific_offer(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        chosen = negotiation.accept(negotiation.offers[1])
        assert chosen.note == "floor"

    def test_accept_foreign_offer_rejected(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        with pytest.raises(NegotiationError):
            negotiation.accept(Offer(point={Dimension.CPU: 4.0},
                                     price_rate=1.0))

    def test_reject_flow(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        negotiation.reject()
        assert negotiation.state is NegotiationState.REJECTED

    def test_empty_proposal_fails(self):
        negotiation = Negotiation(make_request())
        negotiation.propose([])
        assert negotiation.state is NegotiationState.FAILED

    def test_budget_filters_offers(self):
        negotiation = Negotiation(make_request(budget_rate=5.0))
        negotiation.propose(offers())
        assert [offer.note for offer in negotiation.offers] == ["floor"]

    def test_budget_rejecting_everything_fails(self):
        negotiation = Negotiation(make_request(budget_rate=1.0))
        negotiation.propose(offers())
        assert negotiation.state is NegotiationState.FAILED


class TestCounter:
    def test_counter_returns_to_requested(self):
        negotiation = Negotiation(make_request(budget_rate=5.0))
        negotiation.propose(offers())
        negotiation.counter(budget_rate=10.0)
        assert negotiation.state is NegotiationState.REQUESTED
        assert negotiation.request.budget_rate == 10.0
        negotiation.propose(offers())
        assert len(negotiation.offers) == 2

    def test_counter_must_change_something(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        with pytest.raises(NegotiationError):
            negotiation.counter()

    def test_rounds_counted(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        negotiation.counter(budget_rate=100.0)
        negotiation.propose(offers())
        assert negotiation.rounds == 2


class TestOrdering:
    def test_propose_twice_rejected(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        with pytest.raises(NegotiationError):
            negotiation.propose(offers())

    def test_accept_before_propose_rejected(self):
        with pytest.raises(NegotiationError):
            Negotiation(make_request()).accept()

    def test_inverted_request_window_rejected(self):
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, 1, 2))
        with pytest.raises(NegotiationError):
            ServiceRequest(client="c", service_name="s",
                           service_class=ServiceClass.GUARANTEED,
                           specification=spec, start=10.0, end=5.0)


class TestBuildSla:
    def test_sla_carries_offer_terms(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        negotiation.accept()
        sla = negotiation.build_sla(sla_id=1055)
        assert sla.sla_id == 1055
        assert sla.client == "alice"
        assert sla.agreed_point == {Dimension.CPU: 8.0}
        assert sla.price_rate == 8.0

    def test_build_before_accept_rejected(self):
        negotiation = Negotiation(make_request())
        negotiation.propose(offers())
        with pytest.raises(NegotiationError):
            negotiation.build_sla(sla_id=1)
