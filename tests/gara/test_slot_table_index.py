"""Differential tests: the sweep-line-indexed :class:`SlotTable`
must be result-identical to the naive event-point-scan oracle
(:class:`NaiveSlotTable`) across randomized mutation sequences.

Demands are drawn as multiples of 0.25 (binary-exact floats), so sums
are associative-exact and the comparison can be strict equality — any
divergence, however small, is a real indexing bug. A tier-1 perf smoke
test at the bottom guards against gross O(n²) regressions.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError
from repro.gara._reference import NaiveSlotTable
from repro.gara.slot_table import FOREVER, SlotTable
from repro.qos.vector import ResourceVector
from repro.xmlmsg.idempotency import DedupCache

CAPACITY = ResourceVector(cpu=12, memory_mb=2048, disk_mb=4096,
                          bandwidth_mbps=100)

# Binary-exact demand components (multiples of 0.25).
quarter_floats = st.integers(min_value=0, max_value=24).map(
    lambda n: n * 0.25)
demands = st.builds(ResourceVector, cpu=quarter_floats,
                    memory_mb=quarter_floats.map(lambda v: v * 64),
                    bandwidth_mbps=quarter_floats)
start_times = st.floats(min_value=0, max_value=100, allow_nan=False)
durations = st.one_of(
    st.floats(min_value=0.25, max_value=60, allow_nan=False),
    st.just(FOREVER))

reserve_ops = st.tuples(st.just("reserve"), demands, start_times,
                        durations, st.booleans())
release_ops = st.tuples(st.just("release"), st.integers(min_value=0))
resize_ops = st.tuples(st.just("resize"), st.integers(min_value=0),
                       demands, st.booleans())
truncate_ops = st.tuples(st.just("truncate"), st.integers(min_value=0),
                         start_times)
capacity_ops = st.tuples(st.just("set_capacity"),
                         st.integers(min_value=0, max_value=16))

operations = st.lists(
    st.one_of(reserve_ops, reserve_ops, release_ops, resize_ops,
              truncate_ops, capacity_ops),
    min_size=1, max_size=30)


def _apply(table, live, op):
    """Apply one operation; returns the raised error class (or None)."""
    kind = op[0]
    try:
        if kind == "reserve":
            _, demand, start, length, force = op
            end = FOREVER if length == FOREVER else start + length
            live.append(table.reserve(demand, start, end, force=force))
        elif kind == "release":
            if not live:
                return None
            entry = live.pop(op[1] % len(live))
            table.release(entry)
        elif kind == "resize":
            if not live:
                return None
            index = op[1] % len(live)
            live[index] = table.resize(live[index], op[2], force=op[3])
        elif kind == "truncate":
            if not live:
                return None
            index = op[1] % len(live)
            entry = live[index]
            replacement = table.truncate(entry, op[2])
            if op[2] <= entry.start:
                live.pop(index)
            else:
                live[index] = replacement
        elif kind == "set_capacity":
            table.set_capacity(ResourceVector(
                cpu=float(op[1]), memory_mb=2048, disk_mb=4096,
                bandwidth_mbps=100))
    except CapacityError:
        return CapacityError
    return None


def _probe_points(table):
    """Every profile boundary, its neighbourhood, and fixed probes."""
    points = {0.0, 50.0, 1e6, -1.0}
    for start, _end, _usage in table.usage_profile():
        points.update((start, start - 0.125, start + 0.125))
    return sorted(points)


def _assert_tables_match(indexed, naive):
    assert len(indexed) == len(naive)
    assert indexed.entries() == naive.entries()
    points = _probe_points(indexed)
    for point in points:
        assert indexed.usage_at(point) == naive.usage_at(point), point
        assert indexed.available_at(point) == naive.available_at(point)
        assert (indexed.overcommitment_at(point)
                == naive.overcommitment_at(point))
        assert indexed.utilization_at(point) == naive.utilization_at(point)
    for window_start in points[::2]:
        for width in (0.25, 10.0, 1000.0):
            window_end = window_start + width
            assert (indexed.peak_usage(window_start, window_end)
                    == naive.peak_usage(window_start, window_end)), \
                (window_start, window_end)
            assert (indexed.available(window_start, window_end)
                    == naive.available(window_start, window_end))


class TestDifferential:
    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_indexed_matches_naive_after_every_mutation(self, ops):
        indexed = SlotTable(CAPACITY)
        naive = NaiveSlotTable(CAPACITY)
        live_indexed = []
        live_naive = []
        for op in ops:
            error_indexed = _apply(indexed, live_indexed, op)
            error_naive = _apply(naive, live_naive, op)
            assert error_indexed is error_naive, op
            _assert_tables_match(indexed, naive)

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_profile_collapses_when_everything_is_released(self, ops):
        indexed = SlotTable(CAPACITY)
        live = []
        for op in ops:
            _apply(indexed, live, op)
        for entry in live:
            indexed.release(entry)
        assert len(indexed) == 0
        assert indexed.usage_profile() == []
        assert indexed.usage_at(50.0) == ResourceVector.zero()


class _KeyedDelivery:
    """A slot table behind an at-least-once transport.

    Every operation arrives as a keyed message; re-deliveries of a key
    are answered from a :class:`DedupCache` without re-executing, the
    way a bus endpoint answers a duplicated GARA ``create``."""

    def __init__(self, table):
        self.table = table
        self.live = []
        self.dedup = DedupCache(capacity=1024)
        self.executions = 0

    def deliver(self, key, op):
        if self.dedup.seen(key):
            return self.dedup.get(key)
        self.executions += 1
        return self.dedup.put(key, _apply(self.table, self.live, op))


class TestDuplicatedKeyedDeliveries:
    """At-least-once delivery + dedup ≡ exactly-once execution.

    The indexed table receives every operation once, twice or three
    times (immediate duplicates plus a full late-retry storm at the
    end) through the dedup layer; the naive oracle receives each
    operation exactly once. Identical final state — to strict float
    equality — means a duplicated keyed delivery can never
    double-reserve, double-release or double-resize."""

    @settings(max_examples=60, deadline=None)
    @given(operations,
           st.lists(st.integers(min_value=0, max_value=2), min_size=30,
                    max_size=30))
    def test_duplicates_through_dedup_match_exactly_once_oracle(
            self, ops, extra_deliveries):
        keyed = _KeyedDelivery(SlotTable(CAPACITY))
        naive = NaiveSlotTable(CAPACITY)
        live_naive = []
        for index, op in enumerate(ops):
            key = f"msg-{index}"
            first = keyed.deliver(key, op)
            for _ in range(extra_deliveries[index % len(extra_deliveries)]):
                assert keyed.deliver(key, op) is first
            assert _apply(naive, live_naive, op) is first, op
        # A late retry storm: every key re-delivered once more, in
        # order. Nothing may change.
        for index, op in enumerate(ops):
            keyed.deliver(f"msg-{index}", op)
        assert keyed.executions == len(ops)
        assert keyed.dedup.hits >= len(ops)
        _assert_tables_match(keyed.table, naive)

    @settings(max_examples=30, deadline=None)
    @given(operations)
    def test_interleaved_redeliveries_of_all_prior_keys(self, ops):
        """After each new operation, every earlier key is re-delivered
        (worst-case retry interleaving); the table must track the
        exactly-once oracle after every step."""
        keyed = _KeyedDelivery(SlotTable(CAPACITY))
        naive = NaiveSlotTable(CAPACITY)
        live_naive = []
        for index, op in enumerate(ops):
            keyed.deliver(f"msg-{index}", op)
            _apply(naive, live_naive, op)
            for earlier in range(index + 1):
                keyed.deliver(f"msg-{earlier}", ops[earlier])
            _assert_tables_match(keyed.table, naive)
        assert keyed.executions == len(ops)


class TestFastPaths:
    def test_available_at_equals_pinhole_window(self):
        table = SlotTable(CAPACITY)
        table.reserve(ResourceVector(cpu=4), 0, 10)
        table.reserve(ResourceVector(cpu=2), 5, FOREVER)
        for now in (0.0, 4.9, 5.0, 9.9, 10.0, 100.0):
            assert table.available_at(now) == table.available(now, now + 1e-9)

    def test_usage_profile_segments(self):
        table = SlotTable(CAPACITY)
        table.reserve(ResourceVector(cpu=4), 0, 10)
        table.reserve(ResourceVector(cpu=2), 5, 20)
        profile = table.usage_profile()
        spans = [(start, end, usage.cpu) for start, end, usage in profile]
        assert spans == [(0, 5, 4.0), (5, 10, 6.0), (10, 20, 2.0),
                         (20, FOREVER, 0.0)]

    def test_open_ended_reservation_covers_far_future(self):
        table = SlotTable(CAPACITY)
        table.reserve(ResourceVector(cpu=5), 10, FOREVER)
        assert table.usage_at(1e12).cpu == 5
        assert table.available_at(1e12).cpu == CAPACITY.cpu - 5
        assert table.peak_usage(0, FOREVER).cpu == 5

    def test_entry_ids_are_per_table(self):
        """Two tables built in one process number entries independently,
        so experiment runs stay id-deterministic."""
        first = SlotTable(CAPACITY)
        second = SlotTable(CAPACITY)
        assert first.reserve(ResourceVector(cpu=1), 0, 1).entry_id == 1
        assert first.reserve(ResourceVector(cpu=1), 0, 1).entry_id == 2
        assert second.reserve(ResourceVector(cpu=1), 0, 1).entry_id == 1

    def test_naive_reference_also_numbers_per_table(self):
        first = NaiveSlotTable(CAPACITY)
        second = NaiveSlotTable(CAPACITY)
        assert first.reserve(ResourceVector(cpu=1), 0, 1).entry_id == 1
        assert second.reserve(ResourceVector(cpu=1), 0, 1).entry_id == 1


class TestPerfSmoke:
    def test_1k_reserve_and_query_stays_fast(self):
        """Tier-1 guard against gross O(n²) regressions: 1k admission-
        checked reserves with point+window queries. The indexed table
        does this in tens of milliseconds; the naive scan needs tens of
        seconds, so the bound is generous without being loose."""
        table = SlotTable(ResourceVector(cpu=1e9, memory_mb=1e9,
                                         disk_mb=1e9, bandwidth_mbps=1e9))
        started = time.perf_counter()
        for index in range(1000):
            table.reserve(ResourceVector(cpu=1.0, memory_mb=64.0),
                          float(index), float(index + 20))
            table.usage_at(float(index))
            table.available_at(float(index) + 0.5)
            table.peak_usage(float(index), float(index) + 20)
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"1k reserve+query took {elapsed:.2f}s"

    def test_smoke_result_correctness(self):
        table = SlotTable(ResourceVector(cpu=100))
        for index in range(50):
            table.reserve(ResourceVector(cpu=1.0), float(index),
                          float(index + 20))
        with pytest.raises(CapacityError):
            table.reserve(ResourceVector(cpu=95.0), 30, 35)
        assert table.usage_at(30.0).cpu == 20.0
