"""Tests for the GARA API (repro.gara.api) — the Table 2 primitives."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapacityError,
    ReservationNotFound,
    ReservationStateError,
)
from repro.gara.api import GaraApi
from repro.gara.reservation import ReservationState
from repro.gara.slot_table import SlotTable
from repro.qos.vector import ResourceVector
from repro.rsl.builder import reservation_rsl


@pytest.fixture
def gara(sim):
    return GaraApi(sim, SlotTable(ResourceVector(cpu=26, memory_mb=10240)),
                   confirm_timeout=30.0)


def rsl(cpu=10, start=0.0, end=100.0):
    return reservation_rsl(ResourceVector(cpu=cpu), start, end)


class TestCreate:
    def test_create_returns_handle_and_books(self, gara):
        handle = gara.reservation_create(rsl(cpu=10))
        assert gara.slot_table.available(0, 100).cpu == 16
        assert gara.reservation_status(handle).state is \
            ReservationState.TEMPORARY

    def test_create_refused_when_full(self, gara):
        gara.reservation_create(rsl(cpu=20))
        with pytest.raises(CapacityError):
            gara.reservation_create(rsl(cpu=10))

    def test_create_committed_directly(self, gara):
        handle = gara.reservation_create(rsl(), temporary=False)
        assert gara.reservation_status(handle).state is \
            ReservationState.COMMITTED


class TestConfirmationTimeout:
    def test_unconfirmed_reservation_auto_cancels(self, gara, sim):
        handle = gara.reservation_create(rsl(cpu=10))
        sim.run(until=31.0)
        assert gara.reservation_status(handle).state is \
            ReservationState.CANCELLED
        assert gara.slot_table.available(31, 100).cpu == 26

    def test_confirmed_reservation_survives(self, gara, sim):
        handle = gara.reservation_create(rsl(cpu=10))
        gara.reservation_commit(handle)
        sim.run(until=31.0)
        assert gara.reservation_status(handle).state is \
            ReservationState.COMMITTED


class TestBindUnbindCancel:
    def test_bind_claims_with_pid(self, gara):
        handle = gara.reservation_create(rsl())
        gara.reservation_commit(handle)
        gara.reservation_bind(handle, pid=777)
        assert gara.reservation_status(handle).bound_pid == 777

    def test_bind_temporary_rejected(self, gara):
        handle = gara.reservation_create(rsl())
        with pytest.raises(ReservationStateError):
            gara.reservation_bind(handle, pid=777)

    def test_unbind(self, gara):
        handle = gara.reservation_create(rsl())
        gara.reservation_commit(handle)
        gara.reservation_bind(handle, pid=777)
        gara.reservation_unbind(handle)
        assert gara.reservation_status(handle).state is \
            ReservationState.COMMITTED

    def test_cancel_frees_capacity(self, gara):
        handle = gara.reservation_create(rsl(cpu=20))
        gara.reservation_cancel(handle)
        assert gara.slot_table.available(0, 100).cpu == 26

    def test_unknown_handle(self, gara):
        from repro.gara.reservation import ReservationHandle
        with pytest.raises(ReservationNotFound):
            gara.reservation_cancel(ReservationHandle(999_999))


class TestModify:
    def test_shrink(self, gara):
        handle = gara.reservation_create(rsl(cpu=20))
        gara.reservation_modify(handle, ResourceVector(cpu=5))
        assert gara.slot_table.available(0, 100).cpu == 21

    def test_grow_within_capacity(self, gara):
        handle = gara.reservation_create(rsl(cpu=5))
        gara.reservation_modify(handle, ResourceVector(cpu=26))
        assert gara.slot_table.available(0, 100).cpu == 0

    def test_grow_past_capacity_preserves_booking(self, gara):
        gara.reservation_create(rsl(cpu=20))
        handle = gara.reservation_create(rsl(cpu=5))
        with pytest.raises(CapacityError):
            gara.reservation_modify(handle, ResourceVector(cpu=10))
        assert gara.reservation_status(handle).demand.cpu == 5

    def test_modify_cancelled_rejected(self, gara):
        handle = gara.reservation_create(rsl())
        gara.reservation_cancel(handle)
        with pytest.raises(ReservationStateError):
            gara.reservation_modify(handle, ResourceVector(cpu=1))


class TestExpiry:
    def test_reservation_expires_at_window_end(self, gara, sim):
        handle = gara.reservation_create(rsl(cpu=10, end=50.0))
        gara.reservation_commit(handle)
        sim.run(until=51.0)
        assert gara.reservation_status(handle).state is \
            ReservationState.EXPIRED
        assert gara.slot_table.available(51, 100).cpu == 26

    def test_live_reservations_listing(self, gara):
        first = gara.reservation_create(rsl(cpu=5))
        second = gara.reservation_create(rsl(cpu=5))
        gara.reservation_cancel(first)
        live = gara.live_reservations()
        assert [r.handle for r in live] == [second]
