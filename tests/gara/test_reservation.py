"""Tests for the reservation state machine (repro.gara.reservation)."""

from __future__ import annotations

import pytest

from repro.errors import ReservationStateError
from repro.gara.reservation import (
    Reservation,
    ReservationHandle,
    ReservationState,
)
from repro.gara.slot_table import SlotEntry
from repro.qos.vector import ResourceVector


def make_reservation(state=ReservationState.TEMPORARY):
    entry = SlotEntry(entry_id=1, demand=ResourceVector(cpu=4),
                      start=0.0, end=10.0)
    return Reservation(handle=ReservationHandle.fresh(), entry=entry,
                       rsl="&(count=4)(start-time=0)(end-time=10)",
                       state=state)


class TestLifecycle:
    def test_paper_flow_temporary_commit_bind(self):
        reservation = make_reservation()
        reservation.commit()
        assert reservation.state is ReservationState.COMMITTED
        reservation.bind(pid=4242)
        assert reservation.state is ReservationState.BOUND
        assert reservation.bound_pid == 4242

    def test_unbind_returns_to_committed(self):
        reservation = make_reservation()
        reservation.commit()
        reservation.bind(pid=1)
        reservation.unbind()
        assert reservation.state is ReservationState.COMMITTED
        assert reservation.bound_pid is None

    def test_cancel_from_any_live_state(self):
        for state in (ReservationState.TEMPORARY,
                      ReservationState.COMMITTED,
                      ReservationState.BOUND):
            reservation = make_reservation(state)
            reservation.cancel()
            assert reservation.state is ReservationState.CANCELLED

    def test_expire_from_live_states(self):
        reservation = make_reservation(ReservationState.BOUND)
        reservation.expire()
        assert reservation.state is ReservationState.EXPIRED


class TestIllegalTransitions:
    def test_bind_before_commit(self):
        with pytest.raises(ReservationStateError):
            make_reservation().bind(pid=1)

    def test_double_commit(self):
        reservation = make_reservation()
        reservation.commit()
        with pytest.raises(ReservationStateError):
            reservation.commit()

    def test_cancel_after_cancel(self):
        reservation = make_reservation()
        reservation.cancel()
        with pytest.raises(ReservationStateError):
            reservation.cancel()

    def test_unbind_when_not_bound(self):
        reservation = make_reservation()
        with pytest.raises(ReservationStateError):
            reservation.unbind()


class TestAccessors:
    def test_is_live(self):
        assert ReservationState.TEMPORARY.is_live
        assert ReservationState.COMMITTED.is_live
        assert ReservationState.BOUND.is_live
        assert not ReservationState.CANCELLED.is_live
        assert not ReservationState.EXPIRED.is_live

    def test_demand_and_window(self):
        reservation = make_reservation()
        assert reservation.demand == ResourceVector(cpu=4)
        assert reservation.window == (0.0, 10.0)

    def test_handles_are_unique_and_printable(self):
        a = ReservationHandle.fresh()
        b = ReservationHandle.fresh()
        assert a != b
        assert str(a).startswith("gara-")
