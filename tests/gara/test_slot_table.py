"""Tests for the advance-reservation slot table (repro.gara.slot_table)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError, ReservationNotFound
from repro.gara.slot_table import SlotTable
from repro.qos.vector import ResourceVector


def table(cpu=10, memory=1024):
    return SlotTable(ResourceVector(cpu=cpu, memory_mb=memory))


class TestBasicReservation:
    def test_reserve_reduces_availability(self):
        slots = table()
        slots.reserve(ResourceVector(cpu=4), 0, 10)
        assert slots.available(0, 10).cpu == 6

    def test_release_restores_availability(self):
        slots = table()
        entry = slots.reserve(ResourceVector(cpu=4), 0, 10)
        slots.release(entry)
        assert slots.available(0, 10).cpu == 10

    def test_overcommit_rejected(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=8), 0, 10)
        with pytest.raises(CapacityError):
            slots.reserve(ResourceVector(cpu=3), 0, 10)

    def test_force_overcommits_knowingly(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=8), 0, 10)
        slots.reserve(ResourceVector(cpu=3), 0, 10, force=True)
        assert slots.overcommitment_at(5).cpu == pytest.approx(1.0)

    def test_empty_window_rejected(self):
        with pytest.raises(CapacityError):
            table().reserve(ResourceVector(cpu=1), 5, 5)

    def test_release_unknown_entry(self):
        slots = table()
        entry = slots.reserve(ResourceVector(cpu=1), 0, 10)
        slots.release(entry)
        with pytest.raises(ReservationNotFound):
            slots.release(entry)


class TestTimeWindows:
    def test_disjoint_windows_share_capacity(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=10), 0, 10)
        slots.reserve(ResourceVector(cpu=10), 10, 20)  # no overlap
        assert slots.available(0, 10).cpu == 0
        assert slots.available(10, 20).cpu == 0

    def test_half_open_windows(self):
        slots = table(cpu=10)
        entry = slots.reserve(ResourceVector(cpu=4), 0, 10)
        assert entry.active_at(0)
        assert entry.active_at(9.99)
        assert not entry.active_at(10)

    def test_partial_overlap_counts(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=6), 0, 15)
        slots.reserve(ResourceVector(cpu=4), 10, 20)
        # Over [10, 15) both are active.
        assert slots.available(10, 15).cpu == 0
        assert slots.available(15, 20).cpu == 6

    def test_peak_usage_over_window(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=2), 0, 30)
        slots.reserve(ResourceVector(cpu=5), 10, 20)
        assert slots.peak_usage(0, 30).cpu == 7
        assert slots.peak_usage(20, 30).cpu == 2

    def test_advance_reservation_in_future(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=10), 100, 200)
        assert slots.available(0, 100).cpu == 10
        assert slots.can_reserve(ResourceVector(cpu=10), 0, 100)
        assert not slots.can_reserve(ResourceVector(cpu=1), 50, 150)


class TestResize:
    def test_shrink_always_fits(self):
        slots = table(cpu=10)
        entry = slots.reserve(ResourceVector(cpu=10), 0, 10)
        slots.resize(entry, ResourceVector(cpu=2))
        assert slots.available(0, 10).cpu == 8

    def test_grow_within_headroom(self):
        slots = table(cpu=10)
        entry = slots.reserve(ResourceVector(cpu=2), 0, 10)
        slots.resize(entry, ResourceVector(cpu=9))
        assert slots.available(0, 10).cpu == 1

    def test_grow_past_capacity_restores_original(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=5), 0, 10)
        entry = slots.reserve(ResourceVector(cpu=3), 0, 10)
        with pytest.raises(CapacityError):
            slots.resize(entry, ResourceVector(cpu=8))
        assert slots.usage_at(5).cpu == 8  # unchanged

    def test_truncate_frees_tail(self):
        slots = table(cpu=10)
        entry = slots.reserve(ResourceVector(cpu=10), 0, 100)
        slots.truncate(entry, 50)
        assert slots.available(50, 100).cpu == 10
        assert slots.available(0, 50).cpu == 0


class TestOpenEndedReservations:
    def test_forever_window_blocks_all_future_time(self):
        from repro.gara.slot_table import FOREVER
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=6), 0, FOREVER)
        assert slots.available(1_000_000, 2_000_000).cpu == 4

    def test_forever_reservation_never_auto_expires(self, sim):
        from repro.gara.api import GaraApi
        from repro.gara.slot_table import FOREVER
        gara = GaraApi(sim, table(cpu=10), confirm_timeout=5.0)
        handle = gara.reservation_create(
            "&(count=4)(start-time=0)(end-time=inf)", temporary=False)
        sim.run(until=1_000_000.0)
        assert gara.reservation_status(handle).state.is_live


class TestCapacityChange:
    def test_shrink_reports_overcommitment(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=9), 0, 10)
        slots.set_capacity(ResourceVector(cpu=6, memory_mb=1024))
        assert slots.overcommitment_at(5).cpu == pytest.approx(3.0)

    def test_utilization(self):
        slots = table(cpu=10)
        slots.reserve(ResourceVector(cpu=5), 0, 10)
        assert slots.utilization_at(5) == pytest.approx(0.5)
        assert slots.utilization_at(50) == 0.0


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

windows = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0.1, max_value=50, allow_nan=False),
)
demands = st.integers(min_value=1, max_value=6)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(windows, demands), min_size=1, max_size=20))
def test_never_oversubscribed_without_force(bookings):
    """Admitted bookings never exceed capacity at any event point."""
    slots = SlotTable(ResourceVector(cpu=10))
    accepted = []
    for (start, length), cpu in bookings:
        demand = ResourceVector(cpu=float(cpu))
        try:
            accepted.append(slots.reserve(demand, start, start + length))
        except CapacityError:
            pass
    check_points = {entry.start for entry in accepted}
    check_points.update(entry.end - 1e-9 for entry in accepted)
    for point in check_points:
        assert slots.usage_at(point).cpu <= 10 + 1e-6


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(windows, demands), min_size=1, max_size=15))
def test_release_everything_restores_full_capacity(bookings):
    slots = SlotTable(ResourceVector(cpu=10))
    accepted = []
    for (start, length), cpu in bookings:
        try:
            accepted.append(slots.reserve(ResourceVector(cpu=float(cpu)),
                                          start, start + length))
        except CapacityError:
            pass
    for entry in accepted:
        slots.release(entry)
    assert slots.available(0, 1000).cpu == 10
    assert len(slots) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(windows, demands), min_size=1, max_size=15),
       windows)
def test_available_plus_peak_equals_capacity(bookings, probe):
    slots = SlotTable(ResourceVector(cpu=10))
    for (start, length), cpu in bookings:
        try:
            slots.reserve(ResourceVector(cpu=float(cpu)),
                          start, start + length)
        except CapacityError:
            pass
    probe_start, probe_length = probe
    probe_end = probe_start + probe_length
    available = slots.available(probe_start, probe_end).cpu
    peak = slots.peak_usage(probe_start, probe_end).cpu
    assert available + peak == pytest.approx(10.0)
