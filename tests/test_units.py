"""Tests for quantity parsing and rendering (repro.units)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import UnitError


class TestParseCpu:
    def test_paper_table1_form(self):
        assert units.parse_cpu("4 CPU") == 4

    def test_paper_table4_form_with_qualifier(self):
        assert units.parse_cpu("55 nodes on Linux OS") == 55

    def test_bare_number(self):
        assert units.parse_cpu("10") == 10

    def test_processors_word(self):
        assert units.parse_cpu("26 processors") == 26

    def test_rejects_garbage(self):
        with pytest.raises(UnitError):
            units.parse_cpu("many CPUs")

    def test_rejects_empty(self):
        with pytest.raises(UnitError):
            units.parse_cpu("")


class TestParseMemory:
    def test_paper_megabytes(self):
        assert units.parse_memory_mb("64MB") == 64.0

    def test_spaced_unit(self):
        assert units.parse_memory_mb("48 MB") == 48.0

    def test_gigabytes(self):
        assert units.parse_memory_mb("2GB") == 2048.0

    def test_kilobytes(self):
        assert units.parse_memory_mb("1024KB") == 1.0

    def test_terabytes(self):
        assert units.parse_memory_mb("1TB") == 1024.0 * 1024.0

    def test_case_insensitive(self):
        assert units.parse_memory_mb("10gb") == 10240.0

    def test_rejects_unknown_unit(self):
        with pytest.raises(UnitError):
            units.parse_memory_mb("10 parsecs")

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            units.parse_memory_mb("-5MB")


class TestParseBandwidth:
    def test_paper_mbps(self):
        assert units.parse_bandwidth_mbps("10 Mbps") == 10.0

    def test_paper_622(self):
        assert units.parse_bandwidth_mbps("622 Mbps") == 622.0

    def test_gbps(self):
        assert units.parse_bandwidth_mbps("1 Gbps") == 1000.0

    def test_kbps(self):
        assert units.parse_bandwidth_mbps("500 kbps") == 0.5

    def test_rejects_unknown(self):
        with pytest.raises(UnitError):
            units.parse_bandwidth_mbps("10 florps")


class TestParseDelay:
    def test_paper_milliseconds(self):
        assert units.parse_delay_ms("10ms") == 10.0

    def test_seconds(self):
        assert units.parse_delay_ms("2s") == 2000.0

    def test_microseconds(self):
        assert units.parse_delay_ms("1500us") == 1.5


class TestParsePercentage:
    def test_percent(self):
        assert units.parse_percentage("10%") == pytest.approx(0.1)

    def test_fraction(self):
        assert units.parse_percentage("0.05") == pytest.approx(0.05)

    def test_rejects_over_100(self):
        with pytest.raises(UnitError):
            units.parse_percentage("150%")


class TestBounds:
    def test_paper_less_than(self):
        bound = units.parse_bound("LessThan 10%")
        assert bound.relation == "<"
        assert bound.value == pytest.approx(0.1)

    def test_satisfied_by(self):
        bound = units.parse_bound("LessThan 10%")
        assert bound.satisfied_by(0.05)
        assert not bound.satisfied_by(0.15)
        assert not bound.satisfied_by(0.1)  # strict

    def test_at_least(self):
        bound = units.parse_bound("AtLeast 50%")
        assert bound.satisfied_by(0.5)
        assert not bound.satisfied_by(0.49)

    def test_round_trip(self):
        original = "LessThan 10%"
        assert units.render_bound(units.parse_bound(original)) == original

    def test_unknown_word(self):
        with pytest.raises(UnitError):
            units.parse_bound("Roughly 10%")

    def test_unknown_relation_rejected(self):
        with pytest.raises(UnitError):
            units.Bound("~", 0.1)


class TestRendering:
    def test_cpu(self):
        assert units.render_cpu(4) == "4 CPU"

    def test_memory_mb(self):
        assert units.render_memory_mb(64.0) == "64MB"

    def test_memory_promotes_to_gb(self):
        assert units.render_memory_mb(2048.0) == "2GB"

    def test_bandwidth(self):
        assert units.render_bandwidth_mbps(10.0) == "10 Mbps"

    def test_bandwidth_fractional(self):
        assert units.render_bandwidth_mbps(9.5) == "9.5 Mbps"

    def test_delay(self):
        assert units.render_delay_ms(10.0) == "10ms"

    def test_percentage(self):
        assert units.render_percentage(0.1) == "10%"


class TestRoundTrips:
    @given(st.integers(min_value=0, max_value=10_000))
    def test_cpu_round_trip(self, count):
        assert units.parse_cpu(units.render_cpu(count)) == count

    @given(st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_memory_round_trip(self, megabytes):
        rendered = units.render_memory_mb(megabytes)
        assert units.parse_memory_mb(rendered) == pytest.approx(
            megabytes, rel=1e-4, abs=1e-4)

    @given(st.floats(min_value=0.0, max_value=1e5,
                     allow_nan=False, allow_infinity=False))
    def test_bandwidth_round_trip(self, mbps):
        rendered = units.render_bandwidth_mbps(mbps)
        assert units.parse_bandwidth_mbps(rendered) == pytest.approx(
            mbps, rel=1e-4, abs=1e-4)

    @given(st.integers(min_value=0, max_value=100))
    def test_percentage_round_trip(self, percent):
        fraction = percent / 100.0
        rendered = units.render_percentage(fraction)
        assert units.parse_percentage(rendered) == pytest.approx(fraction)
