"""Tests for the bandwidth broker (repro.network.nrm)."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, NetworkError
from repro.network.nrm import NetworkResourceManager
from repro.network.topology import Topology


@pytest.fixture
def topology():
    topology = Topology()
    topology.add_site("a", "d1")
    topology.add_site("b", "d1")
    topology.add_site("c", "d1")
    topology.add_link("a", "b", 100.0, delay_ms=2.0)
    topology.add_link("b", "c", 50.0, delay_ms=3.0, loss=0.02)
    return topology


@pytest.fixture
def nrm(sim, topology):
    return NetworkResourceManager(sim, topology, "d1")


class TestAllocation:
    def test_allocate_books_every_link(self, nrm):
        nrm.allocate("a", "c", 30.0, 0, 100)
        assert nrm.available_bandwidth("a", "b", 0, 100) == 70.0
        assert nrm.available_bandwidth("b", "c", 0, 100) == 20.0

    def test_available_bandwidth_at_tracks_window_edges(self, nrm):
        nrm.allocate("a", "c", 30.0, 10, 100)
        assert nrm.available_bandwidth_at("a", "c", 5.0) == 50.0
        assert nrm.available_bandwidth_at("a", "c", 10.0) == 20.0
        assert nrm.available_bandwidth_at("a", "c", 99.9) == 20.0
        assert nrm.available_bandwidth_at("a", "c", 100.0) == 50.0

    def test_bottleneck_governs_admission(self, nrm):
        # The b-c link caps the a-c path at 50.
        assert nrm.can_allocate("a", "c", 50.0, 0, 100)
        assert not nrm.can_allocate("a", "c", 51.0, 0, 100)

    def test_rollback_on_midpath_failure(self, nrm):
        nrm.allocate("b", "c", 40.0, 0, 100)  # leaves 10 on b-c
        with pytest.raises(CapacityError):
            nrm.allocate("a", "c", 30.0, 0, 100)
        # The a-b booking must have been rolled back.
        assert nrm.available_bandwidth("a", "b", 0, 100) == 100.0

    def test_release_frees_links(self, nrm):
        flow = nrm.allocate("a", "c", 30.0, 0, 100)
        nrm.release(flow)
        assert nrm.available_bandwidth("a", "c", 0, 100) == 50.0
        assert not flow.active

    def test_double_release_is_idempotent(self, nrm):
        flow = nrm.allocate("a", "b", 30.0, 0, 100)
        nrm.release(flow)
        nrm.release(flow)

    def test_expiry_frees_links(self, nrm, sim):
        nrm.allocate("a", "b", 60.0, 0, 50)
        sim.run(until=51)
        assert nrm.available_bandwidth("a", "b", 51, 100) == 100.0

    def test_nonpositive_bandwidth_rejected(self, nrm):
        with pytest.raises(NetworkError):
            nrm.allocate("a", "b", 0.0, 0, 100)

    def test_foreign_link_rejected(self, sim, topology):
        topology.add_site("x", "d2")
        # The x-side domain owns the boundary link, so d1's NRM may
        # not book it.
        topology.add_link("x", "c", 10.0)
        nrm = NetworkResourceManager(sim, topology, "d1")
        with pytest.raises(NetworkError):
            nrm.allocate("a", "x", 5.0, 0, 100)


class TestResize:
    def test_grow_and_shrink(self, nrm):
        flow = nrm.allocate("a", "c", 20.0, 0, 100)
        nrm.resize(flow, 45.0)
        assert flow.bandwidth_mbps == 45.0
        assert nrm.available_bandwidth("b", "c", 0, 100) == 5.0
        nrm.resize(flow, 10.0)
        assert nrm.available_bandwidth("b", "c", 0, 100) == 40.0

    def test_grow_past_bottleneck_rolls_back(self, nrm):
        nrm.allocate("b", "c", 30.0, 0, 100)
        flow = nrm.allocate("a", "c", 10.0, 0, 100)
        with pytest.raises(CapacityError):
            nrm.resize(flow, 40.0)
        assert flow.bandwidth_mbps == 10.0
        assert nrm.available_bandwidth("a", "b", 0, 100) == 90.0

    def test_resize_released_flow_rejected(self, nrm):
        flow = nrm.allocate("a", "b", 10.0, 0, 100)
        nrm.release(flow)
        with pytest.raises(NetworkError):
            nrm.resize(flow, 20.0)


class TestMeasurement:
    def test_uncongested_flow_delivers_agreed(self, nrm):
        flow = nrm.allocate("a", "c", 30.0, 0, 100)
        measurement = nrm.measure(flow)
        assert measurement.bandwidth_mbps == pytest.approx(30.0)
        assert measurement.delay_ms == pytest.approx(5.0)
        assert measurement.loss == pytest.approx(0.02)

    def test_congestion_squeezes_proportionally(self, nrm, topology):
        flow_one = nrm.allocate("a", "b", 60.0, 0, 100)
        flow_two = nrm.allocate("a", "b", 40.0, 0, 100)
        nrm.set_congestion("a", "b", 0.5)  # usable 50 for 100 booked
        assert nrm.measure(flow_one).bandwidth_mbps == pytest.approx(30.0)
        assert nrm.measure(flow_two).bandwidth_mbps == pytest.approx(20.0)

    def test_degradation_notifies_listeners(self, nrm):
        flow = nrm.allocate("a", "b", 80.0, 0, 100)
        notices = []
        nrm.subscribe_degradation(
            lambda f, m: notices.append((f.flow_id, m.bandwidth_mbps)))
        # usable 50 against 80 booked: the single flow receives 50.
        nrm.set_congestion("a", "b", 0.5)
        assert notices == [(flow.flow_id, pytest.approx(50.0))]

    def test_unaffected_flows_not_notified(self, nrm):
        nrm.allocate("b", "c", 10.0, 0, 100)
        notices = []
        nrm.subscribe_degradation(lambda f, m: notices.append(f.flow_id))
        nrm.set_congestion("a", "b", 0.5)
        assert notices == []

    def test_clearing_congestion_restores(self, nrm):
        flow = nrm.allocate("a", "b", 80.0, 0, 100)
        nrm.set_congestion("a", "b", 0.5)
        nrm.set_congestion("a", "b", 1.0)
        assert nrm.measure(flow).bandwidth_mbps == pytest.approx(80.0)
