"""Tests for the network topology (repro.network.topology)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.topology import Topology


@pytest.fixture
def paper_topology():
    """The Section 5.6 sites: A (compute), B (database), C (scientists)."""
    topology = Topology()
    topology.add_site("siteA", "domain1", address="192.200.168.33")
    topology.add_site("siteB", "domain1", address="135.200.50.101")
    topology.add_site("siteC", "domain2", address="10.2.0.1")
    topology.add_link("siteA", "siteB", 622.0, delay_ms=5.0)
    topology.add_link("siteC", "siteA", 155.0, delay_ms=8.0, loss=0.01)
    return topology


class TestConstruction:
    def test_duplicate_site_rejected(self, paper_topology):
        with pytest.raises(NetworkError):
            paper_topology.add_site("siteA", "domain1")

    def test_duplicate_link_rejected(self, paper_topology):
        with pytest.raises(NetworkError):
            paper_topology.add_link("siteB", "siteA", 100.0)

    def test_self_link_rejected(self, paper_topology):
        with pytest.raises(NetworkError):
            paper_topology.add_link("siteA", "siteA", 100.0)

    def test_link_to_unknown_site_rejected(self, paper_topology):
        with pytest.raises(NetworkError):
            paper_topology.add_link("siteA", "ghost", 100.0)

    def test_owner_domain_defaults_to_a_side(self, paper_topology):
        assert paper_topology.link("siteC", "siteA").owner_domain == "domain2"
        assert paper_topology.link("siteA", "siteB").owner_domain == "domain1"


class TestLookup:
    def test_site_by_address(self, paper_topology):
        assert paper_topology.site_by_address("192.200.168.33").name == "siteA"

    def test_unknown_address(self, paper_topology):
        with pytest.raises(NetworkError):
            paper_topology.site_by_address("1.2.3.4")

    def test_link_lookup_is_symmetric(self, paper_topology):
        assert paper_topology.link("siteA", "siteB") is \
            paper_topology.link("siteB", "siteA")

    def test_domains_derived_from_sites(self, paper_topology):
        domains = {d.name: d.sites for d in paper_topology.domains()}
        assert domains == {"domain1": ("siteA", "siteB"),
                           "domain2": ("siteC",)}


class TestPaths:
    def test_direct_path(self, paper_topology):
        links = paper_topology.path("siteB", "siteA")
        assert len(links) == 1
        assert links[0].capacity_mbps == 622.0

    def test_two_hop_path(self, paper_topology):
        links = paper_topology.path("siteC", "siteB")
        assert len(links) == 2

    def test_path_to_self_is_empty(self, paper_topology):
        assert paper_topology.path("siteA", "siteA") == []

    def test_no_path_raises(self, paper_topology):
        paper_topology.add_site("island", "domain3")
        with pytest.raises(NetworkError):
            paper_topology.path("siteA", "island")

    def test_delay_is_additive(self, paper_topology):
        assert paper_topology.path_delay_ms("siteC", "siteB") == \
            pytest.approx(13.0)

    def test_loss_composes_multiplicatively(self, paper_topology):
        assert paper_topology.path_loss("siteC", "siteA") == \
            pytest.approx(0.01)
        assert paper_topology.path_loss("siteA", "siteB") == 0.0

    def test_shortest_by_delay_not_hops(self):
        topology = Topology()
        for name in ("a", "b", "c"):
            topology.add_site(name, "d")
        topology.add_link("a", "c", 100.0, delay_ms=100.0)  # direct, slow
        topology.add_link("a", "b", 100.0, delay_ms=1.0)
        topology.add_link("b", "c", 100.0, delay_ms=1.0)
        assert len(topology.path("a", "c")) == 2


class TestCongestion:
    def test_congestion_scales_usable_capacity(self, paper_topology):
        link = paper_topology.link("siteA", "siteB")
        link.set_congestion(0.5)
        assert link.usable_mbps == pytest.approx(311.0)

    def test_invalid_factor_rejected(self, paper_topology):
        link = paper_topology.link("siteA", "siteB")
        with pytest.raises(NetworkError):
            link.set_congestion(0.0)
        with pytest.raises(NetworkError):
            link.set_congestion(1.5)
