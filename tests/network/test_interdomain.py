"""Tests for inter-domain coordination (repro.network.interdomain)."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, NetworkError
from repro.network.interdomain import InterDomainCoordinator
from repro.network.nrm import NetworkResourceManager
from repro.network.topology import Topology


@pytest.fixture
def setup(sim):
    """Three domains in a chain: d1(a1-a2) - d2(b1) - d3(c1)."""
    topology = Topology()
    topology.add_site("a1", "d1")
    topology.add_site("a2", "d1")
    topology.add_site("b1", "d2")
    topology.add_site("c1", "d3")
    topology.add_link("a1", "a2", 200.0, delay_ms=1.0)
    topology.add_link("a2", "b1", 100.0, delay_ms=5.0)  # owned by d1
    topology.add_link("b1", "c1", 50.0, delay_ms=5.0)   # owned by d2
    nrms = [NetworkResourceManager(sim, topology, domain)
            for domain in ("d1", "d2", "d3")]
    return topology, nrms, InterDomainCoordinator(topology, nrms)


class TestSegmentation:
    def test_end_to_end_allocation_books_each_domain(self, setup):
        topology, nrms, coordinator = setup
        allocation = coordinator.allocate("a1", "c1", 40.0, 0, 100)
        domains = [nrm.domain for nrm, _flow in allocation.segments]
        assert domains == ["d1", "d2"]
        d1, d2 = nrms[0], nrms[1]
        assert d1.available_on_links(
            [topology.link("a1", "a2")], 0, 100) == 160.0
        assert d2.available_on_links(
            [topology.link("b1", "c1")], 0, 100) == 10.0

    def test_intra_domain_allocation_single_segment(self, setup):
        _topology, _nrms, coordinator = setup
        allocation = coordinator.allocate("a1", "a2", 40.0, 0, 100)
        assert len(allocation.segments) == 1


class TestTwoPhase:
    def test_downstream_refusal_rolls_back_upstream(self, setup):
        topology, nrms, coordinator = setup
        nrms[1].allocate("b1", "c1", 45.0, 0, 100)  # leaves 5 in d2
        with pytest.raises(CapacityError):
            coordinator.allocate("a1", "c1", 40.0, 0, 100)
        # d1's bookings were rolled back.
        assert nrms[0].available_on_links(
            [topology.link("a1", "a2")], 0, 100) == 200.0
        assert nrms[0].available_on_links(
            [topology.link("a2", "b1")], 0, 100) == 100.0

    def test_can_allocate_respects_bottleneck(self, setup):
        _topology, _nrms, coordinator = setup
        assert coordinator.can_allocate("a1", "c1", 50.0, 0, 100)
        assert not coordinator.can_allocate("a1", "c1", 51.0, 0, 100)

    def test_release_frees_all_segments(self, setup):
        _topology, _nrms, coordinator = setup
        allocation = coordinator.allocate("a1", "c1", 40.0, 0, 100)
        allocation.release()
        assert coordinator.can_allocate("a1", "c1", 50.0, 0, 100)
        assert not allocation.active

    def test_unknown_domain_rejected(self, sim):
        topology = Topology()
        topology.add_site("x", "dx")
        topology.add_site("y", "dy")
        topology.add_link("x", "y", 10.0)
        coordinator = InterDomainCoordinator(
            topology, [NetworkResourceManager(sim, topology, "dy")])
        with pytest.raises(NetworkError):
            coordinator.allocate("x", "y", 5.0, 0, 100)

    def test_duplicate_nrm_rejected(self, sim):
        topology = Topology()
        topology.add_site("x", "dx")
        with pytest.raises(NetworkError):
            InterDomainCoordinator(topology, [
                NetworkResourceManager(sim, topology, "dx"),
                NetworkResourceManager(sim, topology, "dx"),
            ])


class TestMeasurement:
    def test_end_to_end_measure_is_min_over_segments(self, setup):
        topology, nrms, coordinator = setup
        allocation = coordinator.allocate("a1", "c1", 40.0, 0, 100)
        # Congest d2's link: usable 25 for 40 booked.
        nrms[1].set_congestion("b1", "c1", 0.5)
        assert coordinator.measure(allocation) == pytest.approx(25.0)
