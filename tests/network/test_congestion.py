"""Tests for stochastic congestion injection (repro.network.congestion)."""

from __future__ import annotations

import pytest

from repro.network.congestion import CongestionInjector
from repro.network.nrm import NetworkResourceManager
from repro.network.topology import Topology
from repro.sim.random import RandomSource


@pytest.fixture
def world(sim):
    topology = Topology()
    topology.add_site("a", "d1")
    topology.add_site("b", "d1")
    topology.add_site("c", "d1")
    topology.add_link("a", "b", 100.0)
    topology.add_link("b", "c", 100.0)
    nrm = NetworkResourceManager(sim, topology, "d1")
    return sim, topology, nrm


class TestInjection:
    def test_episodes_strike_and_clear(self, world):
        sim, topology, nrm = world
        injector = CongestionInjector(sim, nrm, rng=RandomSource(1),
                                      mtbc=20.0, mean_duration=10.0)
        injector.start()
        sim.run(until=500.0)
        assert len(injector.episodes) > 5
        # All clears scheduled within the horizon have fired.
        for link in topology.links():
            if all(e.end < 500.0 for e in injector.episodes
                   if e.link_key == link.key):
                assert link.congestion_factor == 1.0

    def test_degraded_flows_get_notices(self, world):
        sim, _topology, nrm = world
        flow = nrm.allocate("a", "b", 90.0, 0, 1000)
        notices = []
        nrm.subscribe_degradation(lambda f, m: notices.append(f.flow_id))
        injector = CongestionInjector(sim, nrm, rng=RandomSource(2),
                                      mtbc=30.0, mean_duration=10.0,
                                      severity=(0.3, 0.5))
        injector.start()
        sim.run(until=300.0)
        assert flow.flow_id in notices

    def test_no_double_congestion_on_one_link(self, world):
        sim, topology, nrm = world
        only_link = [topology.link("a", "b")]
        injector = CongestionInjector(sim, nrm, links=only_link,
                                      rng=RandomSource(3),
                                      mtbc=1.0, mean_duration=50.0)
        injector.start()
        sim.run(until=40.0)
        active = [e for e in injector.episodes
                  if e.start <= sim.now < e.end]
        assert len(active) <= 1

    def test_stop_halts_new_episodes(self, world):
        sim, _topology, nrm = world
        injector = CongestionInjector(sim, nrm, rng=RandomSource(4),
                                      mtbc=10.0, mean_duration=5.0)
        injector.start()
        sim.run(until=100.0)
        injector.stop()
        count = len(injector.episodes)
        sim.run(until=300.0)
        assert len(injector.episodes) == count

    def test_determinism(self):
        from repro.sim.engine import Simulator

        def run(seed):
            sim = Simulator()
            topology = Topology()
            topology.add_site("a", "d")
            topology.add_site("b", "d")
            topology.add_link("a", "b", 100.0)
            nrm = NetworkResourceManager(sim, topology, "d")
            injector = CongestionInjector(sim, nrm,
                                          rng=RandomSource(seed),
                                          mtbc=15.0, mean_duration=8.0)
            injector.start()
            sim.run(until=400.0)
            return [(e.link_key, round(e.start, 6), round(e.factor, 6))
                    for e in injector.episodes]

        assert run(9) == run(9)

    def test_validation(self, world):
        sim, _topology, nrm = world
        with pytest.raises(ValueError):
            CongestionInjector(sim, nrm, mtbc=0.0)
        with pytest.raises(ValueError):
            CongestionInjector(sim, nrm, severity=(0.0, 0.5))
        with pytest.raises(ValueError):
            CongestionInjector(sim, nrm, links=[])
