"""Unit tests for retry/timeout/circuit-breaking
(repro.xmlmsg.resilient)."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, MessageError, ValidationError
from repro.sim.random import RandomSource
from repro.sim.trace import TraceRecorder
from repro.xmlmsg.bus import MessageBus
from repro.xmlmsg.document import element
from repro.xmlmsg.envelope import Envelope
from repro.xmlmsg.faults import FaultPlan, FaultRule
from repro.xmlmsg.resilient import ResilientCaller, RetryPolicy


def call_envelope(action="query"):
    return Envelope(sender="client", recipient="server", action=action,
                    body=element("Query"))


@pytest.fixture
def bus(sim):
    transport = MessageBus(sim)
    server = transport.endpoint("server")
    server.on("query",
              lambda envelope: envelope.reply("result", element("R", "ok")))
    return transport


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"timeout": -1.0},
        {"backoff_base": -0.5},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"circuit_cooldown": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_per_action_timeout(self):
        policy = RetryPolicy(timeout=2.0,
                             per_action_timeout={"negotiate": 10.0})
        assert policy.timeout_for("negotiate") == 10.0
        assert policy.timeout_for("anything_else") == 2.0

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             jitter=0.25)
        rng = RandomSource(3).stream("jitter")
        for retry_index in (1, 2, 3, 4):
            nominal = 0.5 * 2.0 ** (retry_index - 1)
            drawn = policy.backoff_for(retry_index, rng)
            assert nominal * 0.75 <= drawn <= nominal * 1.25

    def test_zero_jitter_draws_nothing(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             jitter=0.0)
        rng = RandomSource(0).stream("untouched")
        assert policy.backoff_for(1, rng) == 1.0
        assert policy.backoff_for(3, rng) == 4.0


class TestResilientCaller:
    def test_clean_transport_is_pass_through(self, sim, bus):
        """On a perfect transport the caller adds nothing observable:
        one attempt, no waits, no trace records."""
        trace = TraceRecorder()
        caller = ResilientCaller(bus, trace=trace)
        response = caller.call(call_envelope())
        assert response.action == "result"
        assert sim.now == 0.0
        assert caller.stats.attempts == 1
        assert caller.stats.retries == 0
        assert trace.filter(category="resilience") == []

    def test_dropped_request_is_retried_and_recovers(self, sim, bus):
        # Drop exactly the first delivery: probability 1 on the first
        # draw cannot express "once", so use a one-shot rule list the
        # test swaps out after the first timeout.
        bus.install_faults(FaultPlan(
            RandomSource(0).stream("faults"),
            [FaultRule(action="query", drop=1.0)]))
        caller = ResilientCaller(bus, rng=RandomSource(1).stream("jitter"))

        # After the first timeout the network "heals".
        original_wait = caller._wait

        def wait_and_heal(delta):
            original_wait(delta)
            bus.install_faults(None)
        caller._wait = wait_and_heal

        response = caller.call(call_envelope())
        assert response.action == "result"
        assert caller.stats.timeouts == 1
        assert caller.stats.retries == 1
        assert caller.stats.recovered == 1
        # The timeout and the backoff were both spent on the sim clock.
        assert sim.now >= caller.policy.timeout

    def test_retry_envelopes_share_a_dedup_key(self, sim, bus):
        """Server-side dedup must see every retry as the same logical
        operation: the handler runs once, later attempts get the
        cached reply."""
        executions = []
        flaky = bus.endpoint("flaky")

        def handler(envelope):
            executions.append(envelope.dedup_key)
            return envelope.reply("result", element("R"))
        flaky.on("query", handler)
        # Fail only reply legs: the handler runs, the response is lost.
        bus.install_faults(FaultPlan(
            RandomSource(2).stream("faults"),
            [FaultRule(recipient="client", drop=0.6)]))
        caller = ResilientCaller(bus, rng=RandomSource(3).stream("jitter"))
        envelope = Envelope(sender="client", recipient="flaky",
                            action="query", body=element("Query"))
        response = caller.call(envelope)
        assert response.action == "result"
        assert len(set(executions)) == 1
        assert executions[0] == envelope.message_id

    def test_exhaustion_opens_the_circuit(self, sim, bus):
        bus.install_faults(FaultPlan(
            RandomSource(4).stream("faults"),
            [FaultRule(action="query", drop=1.0)]))
        policy = RetryPolicy(max_attempts=3, circuit_cooldown=30.0)
        caller = ResilientCaller(bus, policy=policy,
                                 rng=RandomSource(5).stream("jitter"))
        with pytest.raises(CircuitOpenError):
            caller.call(call_envelope())
        assert caller.stats.attempts == 3
        assert caller.stats.exhausted == 1
        assert caller.circuit_open("server", "query")
        # Fast-fail while open: no new attempts are made.
        with pytest.raises(CircuitOpenError):
            caller.call(call_envelope())
        assert caller.stats.attempts == 3
        assert caller.stats.circuit_rejections == 1

    def test_half_open_probe_after_cooldown(self, sim, bus):
        bus.install_faults(FaultPlan(
            RandomSource(6).stream("faults"),
            [FaultRule(action="query", drop=1.0)]))
        policy = RetryPolicy(max_attempts=2, circuit_cooldown=10.0)
        caller = ResilientCaller(bus, policy=policy,
                                 rng=RandomSource(7).stream("jitter"))
        with pytest.raises(CircuitOpenError):
            caller.call(call_envelope())
        bus.install_faults(None)  # dependency comes back
        sim.advance(policy.circuit_cooldown + 1.0)
        assert not caller.circuit_open("server", "query")
        response = caller.call(call_envelope())
        assert response.action == "result"
        assert not caller.circuit_open("server", "query")

    def test_circuits_are_per_recipient_action(self, sim, bus):
        bus.endpoint("other").on(
            "query",
            lambda envelope: envelope.reply("result", element("R")))
        bus.install_faults(FaultPlan(
            RandomSource(8).stream("faults"),
            [FaultRule(recipient="server", drop=1.0)]))
        policy = RetryPolicy(max_attempts=2)
        caller = ResilientCaller(bus, policy=policy,
                                 rng=RandomSource(9).stream("jitter"))
        with pytest.raises(CircuitOpenError):
            caller.call(call_envelope())
        # The breaker guards (server, query) only.
        other = Envelope(sender="client", recipient="other",
                         action="query", body=element("Query"))
        assert caller.call(other).action == "result"

    def test_non_transient_errors_propagate_immediately(self, sim, bus):
        caller = ResilientCaller(bus)
        with pytest.raises(MessageError):
            caller.call(call_envelope(action="unhandled_action"))
        assert caller.stats.attempts == 1
        assert caller.stats.retries == 0

    def test_same_seed_same_backoff_schedule(self, sim):
        def schedule(seed):
            transport = MessageBus(sim.__class__())
            transport.endpoint("server")
            transport.install_faults(FaultPlan(
                RandomSource(0).stream("faults"),
                [FaultRule(action="query", drop=1.0)]))
            caller = ResilientCaller(
                transport, rng=RandomSource(seed).stream("jitter"),
                policy=RetryPolicy(max_attempts=4))
            with pytest.raises(CircuitOpenError):
                caller.call(call_envelope())
            return transport.sim.now
        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)
