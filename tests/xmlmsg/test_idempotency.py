"""Unit tests for the bounded dedup cache (repro.xmlmsg.idempotency)
and the endpoint-level idempotency contract."""

from __future__ import annotations

import pytest

from repro.errors import MonitoringError, ValidationError
from repro.sim.engine import Simulator
from repro.xmlmsg.bus import MessageBus
from repro.xmlmsg.document import element
from repro.xmlmsg.envelope import Envelope
from repro.xmlmsg.idempotency import DEFAULT_CAPACITY, DedupCache


class TestDedupCache:
    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            DedupCache(capacity=0)

    def test_seen_counts_hits(self):
        cache = DedupCache()
        assert not cache.seen("a")
        cache.put("a", "reply")
        assert cache.seen("a")
        assert cache.seen("a")
        assert cache.hits == 2
        assert cache.get("a") == "reply"

    def test_fifo_eviction_is_deterministic(self):
        cache = DedupCache(capacity=3)
        for key in ("a", "b", "c", "d"):
            cache.put(key, key.upper())
        assert cache.evictions == 1
        assert "a" not in cache
        assert [key for key, _value in cache.items()] == ["b", "c", "d"]

    def test_overwriting_a_key_does_not_evict(self):
        cache = DedupCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)
        assert cache.evictions == 0
        assert cache.get("a") == 3

    def test_none_is_a_cacheable_outcome(self):
        """One-way handlers return None; a re-delivery must still be
        recognized as already-executed."""
        cache = DedupCache()
        cache.put("notify-1", None)
        assert cache.seen("notify-1")
        assert cache.get("notify-1") is None

    def test_clear_keeps_counters(self):
        cache = DedupCache()
        cache.put("a", 1)
        cache.seen("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestEndpointIdempotency:
    def make_bus(self):
        bus = MessageBus(Simulator())
        return bus, bus.endpoint("server")

    def envelope(self, **overrides):
        fields = dict(sender="client", recipient="server", action="op",
                      body=element("Op"))
        fields.update(overrides)
        return Envelope(**fields)

    def test_duplicate_delivery_runs_handler_once(self):
        bus, server = self.make_bus()
        executions = []

        def handler(envelope):
            executions.append(envelope.message_id)
            return envelope.reply("done", element("R", "ok"))
        server.on("op", handler)
        envelope = self.envelope()
        first = bus.request(envelope)
        second = bus.request(envelope)  # same message id re-delivered
        assert executions == [envelope.message_id]
        assert second.body.text == first.body.text

    def test_retry_is_answered_from_cache(self):
        bus, server = self.make_bus()
        executions = []

        def handler(envelope):
            executions.append(envelope.dedup_key)
            return envelope.reply("done", element("R"))
        server.on("op", handler)
        original = self.envelope()
        bus.request(original)
        retry = original.retry()
        assert retry.message_id != original.message_id
        bus.request(retry)
        assert executions == [original.message_id]
        assert server.dedup.hits == 1

    def test_failed_handler_is_not_cached(self):
        """A handler that raises must re-execute on retry — only
        *successful* outcomes are idempotently cached."""
        bus, server = self.make_bus()
        attempts = []

        def handler(envelope):
            attempts.append(envelope.dedup_key)
            if len(attempts) == 1:
                raise MonitoringError("transient glitch")
            return envelope.reply("done", element("R"))
        server.on("op", handler)
        envelope = self.envelope()
        with pytest.raises(MonitoringError):
            bus.request(envelope)
        response = bus.request(envelope.retry())
        assert response.action == "done"
        assert len(attempts) == 2

    def test_eviction_bounds_memory_not_correctness_window(self):
        """Old keys age out of a bounded cache; a duplicate arriving
        after eviction re-executes (the cache only needs to span the
        retry window)."""
        bus = MessageBus(Simulator())
        from repro.xmlmsg.bus import Endpoint
        server = bus.register(Endpoint("server", dedup_capacity=2))
        executions = []

        def handler(envelope):
            executions.append(envelope.dedup_key)
            return envelope.reply("done", element("R"))
        server.on("op", handler)
        envelopes = [self.envelope() for _ in range(3)]
        for envelope in envelopes:
            bus.request(envelope)
        bus.request(envelopes[0])  # evicted by now -> runs again
        assert len(executions) == 4
        assert server.dedup.evictions >= 1

    def test_default_capacity_is_shared_constant(self):
        bus, server = self.make_bus()
        assert server.dedup.capacity == DEFAULT_CAPACITY
