"""Tests for the paper's XML schemas (repro.xmlmsg.codec).

Tables 1, 3 and 4 are the ground truth: the encoder must reproduce the
paper's element names, nesting and value formats, and every encode must
decode back losslessly.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import (
    Dimension,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, NetworkDemand, ServiceSLA
from repro.sla.violations import MeasuredQoS
from repro.units import parse_bound
from repro.xmlmsg import codec


@pytest.fixture
def table1_sla():
    """An SLA carrying exactly the paper's Table 1 content."""
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 64),
        exact_parameter(Dimension.BANDWIDTH_MBPS, 10),
    )
    return ServiceSLA(
        sla_id=1055, client="user1", service_name="simulation",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        agreed_point=spec.best_point(), start=0.0, end=100.0,
        price_rate=12.0,
        network=NetworkDemand("192.200.168.33", "135.200.50.101", 10.0,
                              parse_bound("LessThan 10%")))


@pytest.fixture
def table4_sla():
    """A controlled-load SLA with Table 4's adaptation options."""
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 10, 55),
        range_parameter(Dimension.MEMORY_MB, 48, 64),
        range_parameter(Dimension.BANDWIDTH_MBPS, 45, 100),
    )
    return ServiceSLA(
        sla_id=1056, client="user2", service_name="render",
        service_class=ServiceClass.CONTROLLED_LOAD, specification=spec,
        agreed_point=spec.best_point(), start=0.0, end=50.0,
        price_rate=60.0,
        adaptation=AdaptationOptions(
            alternative_points=({Dimension.CPU: 55.0,
                                 Dimension.MEMORY_MB: 48.0,
                                 Dimension.BANDWIDTH_MBPS: 45.0},),
            accept_promotion=True))


class TestTable1:
    def test_paper_elements_present(self, table1_sla):
        text = codec.render(codec.encode_service_specific(table1_sla))
        assert "<CPU-QoS>4 CPU</CPU-QoS>" in text
        assert "<Memory-QoS>64MB</Memory-QoS>" in text
        assert "<Source_IP>192.200.168.33</Source_IP>" in text
        assert "<Dest_IP>135.200.50.101</Dest_IP>" in text
        assert "<Bandwidth>10 Mbps</Bandwidth>" in text
        assert "<Packet_Loss>LessThan 10%</Packet_Loss>" in text

    def test_round_trip(self, table1_sla):
        node = codec.encode_service_specific(table1_sla)
        sla_id, point, network = codec.decode_service_specific(node)
        assert sla_id == 1055
        assert point[Dimension.CPU] == 4.0
        assert point[Dimension.MEMORY_MB] == 64.0
        assert network is not None
        assert network.bandwidth_mbps == 10.0
        assert network.packet_loss_bound.value == pytest.approx(0.1)

    def test_no_network_block_when_absent(self, table4_sla):
        text = codec.render(codec.encode_service_specific(table4_sla))
        assert "Network_QoS" not in text

    def test_wrong_root_rejected(self, table1_sla):
        from repro.errors import MessageError
        from repro.xmlmsg.document import element
        with pytest.raises(MessageError):
            codec.decode_service_specific(element("Wrong"))


class TestTable3:
    def test_paper_shape(self, table1_sla):
        measured = MeasuredQoS(sla_id=1055, values={
            Dimension.BANDWIDTH_MBPS: 9.5,
            Dimension.PACKET_LOSS: 0.02,
            Dimension.DELAY_MS: 10.0,
        }, time=5.0)
        text = codec.render(codec.encode_qos_levels(table1_sla, measured))
        assert "<SLA-ID>1055</SLA-ID>" in text
        assert "<Bandwidth>9.5 Mbps</Bandwidth>" in text
        # The loss bound holds, so it is reported in the worded form.
        assert "<Packet_Loss>LessThan 10%</Packet_Loss>" in text
        assert "<Delay>10ms</Delay>" in text

    def test_violated_bound_reports_measured_value(self, table1_sla):
        measured = MeasuredQoS(sla_id=1055, values={
            Dimension.PACKET_LOSS: 0.25,
        })
        text = codec.render(codec.encode_qos_levels(table1_sla, measured))
        assert "<Packet_Loss>25%</Packet_Loss>" in text

    def test_round_trip(self, table1_sla):
        measured = MeasuredQoS(sla_id=1055, values={
            Dimension.BANDWIDTH_MBPS: 9.5,
            Dimension.CPU: 4.0,
            Dimension.MEMORY_MB: 64.0,
        })
        node = codec.encode_qos_levels(table1_sla, measured)
        sla_id, values = codec.decode_qos_levels(node)
        assert sla_id == 1055
        assert values[Dimension.BANDWIDTH_MBPS] == pytest.approx(9.5)
        assert values[Dimension.CPU] == 4.0
        assert values[Dimension.MEMORY_MB] == 64.0


class TestTable4:
    def test_paper_elements(self, table4_sla):
        text = codec.render(codec.encode_service_sla(table4_sla))
        assert "<QoS_Class>Controlled-load</QoS_Class>" in text
        assert "<Alternative_QoS>" in text
        assert "<Promotion_Offer>Accept</Promotion_Offer>" in text
        assert "<Bandwidth>45 Mbps</Bandwidth>" in text
        assert "<Memory>48MB</Memory>" in text

    def test_full_round_trip(self, table4_sla):
        node = codec.encode_service_sla(table4_sla)
        decoded = codec.decode_service_sla(node)
        assert decoded.sla_id == table4_sla.sla_id
        assert decoded.client == table4_sla.client
        assert decoded.service_class is ServiceClass.CONTROLLED_LOAD
        assert decoded.agreed_point == table4_sla.agreed_point
        assert decoded.start == table4_sla.start
        assert decoded.end == table4_sla.end
        assert decoded.price_rate == table4_sla.price_rate
        assert decoded.adaptation.accept_promotion
        assert decoded.adaptation.alternative_points == \
            table4_sla.adaptation.alternative_points

    def test_specification_round_trip(self, table4_sla):
        node = codec.encode_service_sla(table4_sla)
        decoded = codec.decode_service_sla(node)
        for original in table4_sla.specification:
            restored = decoded.specification.require(original.dimension)
            assert restored.form == original.form
            assert restored.low == original.low
            assert restored.high == original.high

    def test_discrete_specification_round_trip(self):
        spec = QoSSpecification.of(
            discrete_parameter(Dimension.CPU, [2, 4, 8]))
        sla = ServiceSLA(sla_id=1, client="c", service_name="s",
                         service_class=ServiceClass.CONTROLLED_LOAD,
                         specification=spec,
                         agreed_point=spec.best_point(),
                         start=0.0, end=10.0)
        decoded = codec.decode_service_sla(codec.encode_service_sla(sla))
        assert decoded.specification.require(Dimension.CPU).values == \
            (2.0, 4.0, 8.0)

    def test_network_round_trip(self, table1_sla):
        decoded = codec.decode_service_sla(
            codec.encode_service_sla(table1_sla))
        assert decoded.network is not None
        assert decoded.network.source_ip == "192.200.168.33"
        assert decoded.network.packet_loss_bound.relation == "<"
