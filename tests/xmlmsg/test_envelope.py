"""Tests for SOAP-style envelopes (repro.xmlmsg.envelope)."""

from __future__ import annotations

import pytest

from repro.errors import MessageError
from repro.xmlmsg.document import element, subelement
from repro.xmlmsg.envelope import Envelope


def make_envelope(**overrides) -> Envelope:
    body = element("Payload")
    subelement(body, "Value", "42")
    defaults = dict(sender="client1", recipient="aqos",
                    action="service_request", body=body)
    defaults.update(overrides)
    return Envelope(**defaults)


class TestRoundTrip:
    def test_header_fields_survive(self):
        envelope = make_envelope()
        envelope.sent_at = 3.5
        parsed = Envelope.from_xml(envelope.to_xml())
        assert parsed.sender == "client1"
        assert parsed.recipient == "aqos"
        assert parsed.action == "service_request"
        assert parsed.message_id == envelope.message_id
        assert parsed.sent_at == 3.5

    def test_body_survives(self):
        parsed = Envelope.from_xml(make_envelope().to_xml())
        assert parsed.body.tag == "Payload"
        assert parsed.body.find("Value").text == "42"

    def test_unique_message_ids(self):
        assert make_envelope().message_id != make_envelope().message_id


class TestReply:
    def test_reply_routing(self):
        request = make_envelope()
        response = request.reply("service_offer", element("Offer"))
        assert response.sender == "aqos"
        assert response.recipient == "client1"
        assert response.in_reply_to == request.message_id

    def test_in_reply_to_survives_round_trip(self):
        request = make_envelope()
        response = request.reply("service_offer", element("Offer"))
        parsed = Envelope.from_xml(response.to_xml())
        assert parsed.in_reply_to == request.message_id


class TestValidation:
    def test_wrong_root_rejected(self):
        with pytest.raises(MessageError):
            Envelope.from_xml("<NotAnEnvelope/>")

    def test_missing_header_rejected(self):
        with pytest.raises(MessageError):
            Envelope.from_xml("<Envelope><Body><X/></Body></Envelope>")

    def test_multi_payload_body_rejected(self):
        text = ("<Envelope><Header><MessageID>m</MessageID>"
                "<Sender>s</Sender><Recipient>r</Recipient>"
                "<Action>a</Action></Header>"
                "<Body><X/><Y/></Body></Envelope>")
        with pytest.raises(MessageError):
            Envelope.from_xml(text)
