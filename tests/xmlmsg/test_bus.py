"""Tests for the in-process message bus (repro.xmlmsg.bus)."""

from __future__ import annotations

import pytest

from repro.errors import MessageError
from repro.sim.trace import TraceRecorder
from repro.xmlmsg.bus import MessageBus
from repro.xmlmsg.document import element, subelement
from repro.xmlmsg.envelope import Envelope


@pytest.fixture
def bus(sim):
    return MessageBus(sim)


def request_envelope(action="query", recipient="server"):
    body = element("Query")
    subelement(body, "Name", "render*")
    return Envelope(sender="client", recipient=recipient,
                    action=action, body=body)


class TestRequestResponse:
    def test_round_trip(self, bus):
        server = bus.endpoint("server")

        def handler(envelope):
            assert envelope.body.find("Name").text == "render*"
            reply_body = element("Result", "ok")
            return envelope.reply("query_result", reply_body)

        server.on("query", handler)
        response = bus.request(request_envelope())
        assert response.action == "query_result"
        assert response.body.text == "ok"
        assert response.recipient == "client"

    def test_handler_sees_wire_form_not_sender_objects(self, bus):
        server = bus.endpoint("server")
        seen = {}

        def handler(envelope):
            seen["body"] = envelope.body
            return envelope.reply("ok", element("R"))

        server.on("query", handler)
        original = request_envelope()
        bus.request(original)
        assert seen["body"] is not original.body

    def test_unknown_endpoint(self, bus):
        with pytest.raises(MessageError):
            bus.request(request_envelope(recipient="ghost"))

    def test_unknown_action(self, bus):
        bus.endpoint("server")
        with pytest.raises(MessageError):
            bus.request(request_envelope(action="unhandled"))

    def test_handler_returning_none_is_an_error_for_request(self, bus):
        server = bus.endpoint("server")
        server.on("query", lambda envelope: None)
        with pytest.raises(MessageError):
            bus.request(request_envelope())

    def test_duplicate_endpoint_rejected(self, bus):
        bus.endpoint("server")
        with pytest.raises(MessageError):
            bus.endpoint("server")


class TestAsyncDelivery:
    def test_delivery_after_latency(self, sim):
        bus = MessageBus(sim, latency=2.0)
        server = bus.endpoint("server")
        received = []
        server.on("notify", lambda env: received.append(sim.now))
        bus.send_async(request_envelope(action="notify"))
        assert received == []
        sim.run()
        assert received == [2.0]

    def test_explicit_latency_overrides_default(self, sim):
        bus = MessageBus(sim, latency=2.0)
        server = bus.endpoint("server")
        received = []
        server.on("notify", lambda env: received.append(sim.now))
        bus.send_async(request_envelope(action="notify"), latency=5.0)
        sim.run()
        assert received == [5.0]


class TestTracing:
    def test_messages_are_traced(self, sim):
        trace = TraceRecorder()
        bus = MessageBus(sim, trace=trace)
        server = bus.endpoint("server")
        server.on("query", lambda env: env.reply("ok", element("R")))
        bus.request(request_envelope())
        messages = trace.filter(category="message")
        assert len(messages) == 1
        assert "client -> server" in messages[0].message
