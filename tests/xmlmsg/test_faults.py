"""Unit tests for the fault-injection plan (repro.xmlmsg.faults)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.random import RandomSource
from repro.xmlmsg.document import element
from repro.xmlmsg.envelope import Envelope
from repro.xmlmsg.faults import FaultPlan, FaultRule


def envelope(sender="client1", recipient="aqos", action="service_request"):
    return Envelope(sender=sender, recipient=recipient, action=action,
                    body=element("Body_Payload"))


def plan(seed=1, **rule_fields):
    return FaultPlan(RandomSource(seed).stream("faults"),
                     [FaultRule(**rule_fields)])


class TestFaultRule:
    @pytest.mark.parametrize("field_name", ["drop", "duplicate", "delay",
                                            "error", "reorder"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_validated(self, field_name, bad):
        with pytest.raises(ValidationError):
            FaultRule(**{field_name: bad})

    @pytest.mark.parametrize("bad_range", [(-1.0, 2.0), (3.0, 1.0)])
    def test_delay_range_validated(self, bad_range):
        with pytest.raises(ValidationError):
            FaultRule(delay_range=bad_range)

    def test_none_patterns_match_everything(self):
        assert FaultRule().matches(envelope())

    def test_glob_patterns(self):
        rule = FaultRule(sender="client*", recipient="aqos",
                        action="*_request")
        assert rule.matches(envelope())
        assert not rule.matches(envelope(sender="broker"))
        assert not rule.matches(envelope(action="accept_offer"))
        assert not rule.matches(envelope(recipient="uddie"))


class TestFaultPlan:
    def test_first_matching_rule_wins(self):
        rng = RandomSource(0).stream("faults")
        specific = FaultRule(action="service_request", drop=1.0)
        catchall = FaultRule(duplicate=1.0)
        chaos = FaultPlan(rng, [specific]).add(catchall)
        assert chaos.rule_for(envelope()) is specific
        assert chaos.rule_for(envelope(action="other")) is catchall

    def test_unmatched_envelope_is_exempt(self):
        chaos = plan(1, action="nonexistent_action", drop=1.0)
        decision = chaos.decide(envelope(), "request")
        assert decision.clean
        # Exempt deliveries consume no RNG and count no decision.
        assert chaos.stats.decisions == 0

    def test_certain_drop(self):
        chaos = plan(2, drop=1.0)
        for _ in range(5):
            assert chaos.decide(envelope(), "request").drop
        assert chaos.stats.dropped == 5

    def test_drop_short_circuits_other_faults(self):
        """A dropped delivery draws nothing further — the stream stays
        aligned no matter which other probabilities are set."""
        chaos = plan(3, drop=1.0, duplicate=1.0, delay=1.0, error=1.0,
                     reorder=1.0)
        decision = chaos.decide(envelope(), "request")
        assert decision.drop
        assert not decision.duplicate and not decision.error
        assert decision.delay == 0.0 and not decision.reorder

    def test_reorder_holds_back_longer_than_plain_delay(self):
        chaos = plan(4, reorder=1.0, delay_range=(0.5, 2.0))
        decision = chaos.decide(envelope(), "notify")
        assert decision.reorder
        # high + uniform(low, high): always past every plain delay.
        assert decision.delay >= 2.5

    def test_unknown_leg_rejected(self):
        with pytest.raises(ValidationError):
            plan(5, drop=0.5).decide(envelope(), "sideways")

    def test_same_seed_same_decision_stream(self):
        def schedule(seed):
            chaos = plan(seed, drop=0.3, duplicate=0.3, delay=0.3,
                         error=0.1, reorder=0.2)
            return [(d.drop, d.duplicate, d.delay, d.error, d.reorder)
                    for d in (chaos.decide(envelope(), "request")
                              for _ in range(50))]
        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_uniform_plan_covers_every_message(self):
        chaos = FaultPlan.uniform(RandomSource(0).stream("faults"),
                                  drop=0.5)
        assert chaos.rule_for(envelope()) is not None
        assert chaos.rule_for(envelope(sender="x", recipient="y",
                                       action="z")) is not None

    def test_stats_accumulate(self):
        chaos = plan(9, drop=0.5, duplicate=0.5, delay=0.5, error=0.2,
                     reorder=0.2)
        for _ in range(200):
            chaos.decide(envelope(), "request")
        stats = chaos.stats.as_dict()
        assert stats["decisions"] == 200
        for key in ("dropped", "duplicated", "delayed", "errored",
                    "reordered"):
            assert 0 < stats[key] < 200
