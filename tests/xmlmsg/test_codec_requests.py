"""Tests for the request/offer XML schemas (the Figure 7 messages)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MessageError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, NetworkDemand
from repro.sla.negotiation import Offer, ServiceRequest
from repro.units import parse_bound
from repro.xmlmsg import codec
from repro.xmlmsg.document import element


def full_request():
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        exact_parameter(Dimension.MEMORY_MB, 512))
    return ServiceRequest(
        client="alice", service_name="render",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=spec, start=5.0, end=50.0, budget_rate=12.5,
        network=NetworkDemand("1.1.1.1", "2.2.2.2", 45.0,
                              parse_bound("LessThan 10%"),
                              delay_bound_ms=20.0),
        adaptation=AdaptationOptions(
            alternative_points=({Dimension.CPU: 2.0,
                                 Dimension.MEMORY_MB: 512.0},),
            accept_promotion=True, accept_degradation=True))


class TestServiceRequestRoundTrip:
    def test_full_round_trip(self):
        original = full_request()
        decoded = codec.decode_service_request(
            codec.encode_service_request(original))
        assert decoded.client == original.client
        assert decoded.service_name == original.service_name
        assert decoded.service_class is original.service_class
        assert decoded.start == original.start
        assert decoded.end == original.end
        assert decoded.budget_rate == original.budget_rate
        assert decoded.network.bandwidth_mbps == 45.0
        assert decoded.network.delay_bound_ms == 20.0
        assert decoded.adaptation == original.adaptation
        assert decoded.specification.best_point() == \
            original.specification.best_point()

    def test_minimal_request(self):
        spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 1))
        original = ServiceRequest(client="c", service_name="s",
                                  service_class=ServiceClass.GUARANTEED,
                                  specification=spec, start=0.0, end=1.0)
        decoded = codec.decode_service_request(
            codec.encode_service_request(original))
        assert decoded.budget_rate is None
        assert decoded.network is None
        assert not decoded.adaptation.is_degradable

    def test_wrong_root_rejected(self):
        with pytest.raises(MessageError):
            codec.decode_service_request(element("Wrong"))


class TestOffersRoundTrip:
    def test_offers_round_trip(self):
        offers = [
            Offer(point={Dimension.CPU: 8.0,
                         Dimension.BANDWIDTH_MBPS: 45.0},
                  price_rate=12.5, note="best quality"),
            Offer(point={Dimension.CPU: 2.0}, price_rate=2.0,
                  note="minimum acceptable quality"),
        ]
        negotiation_id, decoded = codec.decode_offers(
            codec.encode_offers(42, offers))
        assert negotiation_id == 42
        assert len(decoded) == 2
        assert decoded[0].point == offers[0].point
        assert decoded[0].price_rate == 12.5
        assert decoded[1].note == "minimum acceptable quality"

    def test_empty_offer_list(self):
        negotiation_id, decoded = codec.decode_offers(
            codec.encode_offers(7, []))
        assert negotiation_id == 7
        assert decoded == []

    def test_wrong_root_rejected(self):
        with pytest.raises(MessageError):
            codec.decode_offers(element("Wrong"))


@settings(max_examples=40, deadline=None)
@given(
    cpu_low=st.integers(min_value=1, max_value=8),
    cpu_extra=st.integers(min_value=0, max_value=8),
    memory=st.integers(min_value=1, max_value=4096),
    start=st.floats(min_value=0, max_value=100, allow_nan=False),
    duration=st.floats(min_value=1, max_value=100, allow_nan=False),
    budget=st.one_of(st.none(),
                     st.floats(min_value=0.1, max_value=100,
                               allow_nan=False)),
    promotion=st.booleans(), degradation=st.booleans(),
    termination=st.booleans(),
)
def test_request_round_trip_property(cpu_low, cpu_extra, memory, start,
                                     duration, budget, promotion,
                                     degradation, termination):
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, cpu_low, cpu_low + cpu_extra),
        exact_parameter(Dimension.MEMORY_MB, memory))
    original = ServiceRequest(
        client="p", service_name="svc",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=spec, start=start, end=start + duration,
        budget_rate=budget,
        adaptation=AdaptationOptions(accept_promotion=promotion,
                                     accept_degradation=degradation,
                                     accept_termination=termination))
    decoded = codec.decode_service_request(
        codec.encode_service_request(original))
    assert decoded.adaptation == original.adaptation
    assert decoded.start == pytest.approx(original.start, abs=1e-4)
    assert decoded.end == pytest.approx(original.end, abs=1e-4)
    if budget is None:
        assert decoded.budget_rate is None
    else:
        assert decoded.budget_rate == pytest.approx(budget, rel=1e-4)
    assert decoded.specification.worst_point()[Dimension.CPU] == cpu_low
