"""Tests for XML helpers (repro.xmlmsg.document)."""

from __future__ import annotations

import pytest

from repro.errors import MessageError
from repro.xmlmsg.document import (
    child_text,
    element,
    parse_xml,
    pretty_xml,
    require_child,
    subelement,
)


class TestBuilding:
    def test_element_with_text_and_attributes(self):
        node = element("Tag", "hello", attr="1")
        assert node.tag == "Tag"
        assert node.text == "hello"
        assert node.get("attr") == "1"

    def test_subelement_attaches(self):
        root = element("Root")
        child = subelement(root, "Child", "x")
        assert list(root) == [child]


class TestParsing:
    def test_round_trip(self):
        root = element("Root")
        subelement(root, "A", "1")
        subelement(root, "B", "2")
        parsed = parse_xml(pretty_xml(root))
        assert child_text(parsed, "A") == "1"
        assert child_text(parsed, "B") == "2"

    def test_malformed_xml_raises_message_error(self):
        with pytest.raises(MessageError):
            parse_xml("<unclosed>")

    def test_require_child_missing(self):
        with pytest.raises(MessageError):
            require_child(element("Root"), "Missing")

    def test_child_text_default(self):
        assert child_text(element("Root"), "Missing", default="d") == "d"

    def test_child_text_missing_raises(self):
        with pytest.raises(MessageError):
            child_text(element("Root"), "Missing")

    def test_child_text_strips_whitespace(self):
        root = parse_xml("<R><A>  padded  </A></R>")
        assert child_text(root, "A") == "padded"


class TestPrettyPrinting:
    def test_nested_indentation(self):
        root = element("Outer")
        inner = subelement(root, "Inner")
        subelement(inner, "Leaf", "v")
        text = pretty_xml(root)
        lines = text.splitlines()
        assert lines[0] == "<Outer>"
        assert lines[1].startswith("  <Inner>")
        assert lines[2].startswith("    <Leaf>")

    def test_leaf_element_unchanged(self):
        assert pretty_xml(element("Leaf", "v")) == "<Leaf>v</Leaf>"
