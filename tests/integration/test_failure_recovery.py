"""Integration: failure injection against the full stack.

The paper's core promise — guaranteed sessions ride out resource
failures thanks to the adaptive reserve — exercised end-to-end with
stochastic failures, plus the deterministic Section 5.6 schedule.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.resources.failures import FailureInjector, FailureSchedule
from repro.sla.document import AdaptationOptions, SlaStatus
from repro.sla.negotiation import ServiceRequest


def g_request(client, cpu, end=400.0):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=end)


class TestDeterministicFailures:
    def test_section56_failure_schedule_rides_through(self):
        testbed = build_testbed()
        broker = testbed.broker
        outcome = broker.request_service(g_request("sla3", 10))
        other = broker.request_service(g_request("other", 4))
        assert outcome.accepted and other.accepted
        FailureSchedule.of((100.0, -3), (200.0, 3)).apply(
            testbed.sim, testbed.machine)
        testbed.sim.run(until=300.0)
        # No degradation notice was ever raised for either session: the
        # adaptive reserve absorbed the 3-node failure.
        assert broker.hub.for_sla(outcome.sla.sla_id) == []
        assert broker.hub.for_sla(other.sla.sla_id) == []

    def test_failure_beyond_reserve_raises_notices(self):
        testbed = build_testbed()
        broker = testbed.broker
        outcome = broker.request_service(g_request("big", 15))
        assert outcome.accepted
        # 15 entitled; fail 15 nodes: eff Cg=0, Ca=6, Cb raidable 3
        # (min=2) -> shortfall 6.
        testbed.machine.fail_nodes(15)
        notices = broker.hub.for_sla(outcome.sla.sla_id)
        assert notices
        assert "shortfall" in notices[0].detail


class TestStochasticFailures:
    def test_small_failures_never_violate_guarantees(self):
        testbed = build_testbed(seed=5)
        broker = testbed.broker
        for index in range(3):
            outcome = broker.request_service(
                g_request(f"user{index}", 4, end=800.0))
            assert outcome.accepted
        injector = FailureInjector(
            testbed.sim, testbed.machine, testbed.rng.stream("fail"),
            mtbf=40.0, mttr=20.0, max_concurrent_failures=3)
        injector.start()
        testbed.sim.run(until=700.0)
        assert injector.failures_injected > 5
        # Committed 12 <= eff Cg (>= 23 - ... >= 12) at 3 concurrent
        # failures; the reserve covers everything.
        for account in broker.ledger.accounts():
            assert account.total_penalties() == 0.0

    def test_controlled_load_soaks_failures_by_degrading(self):
        testbed = build_testbed(seed=6)
        broker = testbed.broker
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 12))
        outcome = broker.request_service(ServiceRequest(
            client="elastic", service_name="simulation-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=spec, start=0.0, end=500.0,
            adaptation=AdaptationOptions(accept_degradation=True)))
        filler = broker.request_service(g_request("filler", 13, end=500.0))
        assert outcome.accepted and filler.accepted
        # Entitled total is 2 + 13 = 15; failing 9 nodes leaves
        # eff Cg=6 + Ca=6 + raidable Cb=3 = 15, exactly enough.
        testbed.machine.fail_nodes(9)
        testbed.sim.run(until=50.0)
        # The guaranteed filler is whole; the elastic session fell back
        # to its floor entitlement.
        holding = broker.partition_holding(filler.sla.sla_id)
        assert holding.served == 13.0
        elastic = broker.partition_holding(outcome.sla.sla_id)
        assert elastic.served == 2.0
        assert outcome.sla.status is SlaStatus.ACTIVE

    def test_unrecoverable_overload_penalizes_or_terminates(self):
        testbed = build_testbed(seed=7)
        broker = testbed.broker
        outcome = broker.request_service(g_request("big", 15, end=500.0))
        assert outcome.accepted
        # 15 entitled vs 14 raidable after a 10-node failure: a genuine
        # shortfall that adaptation cannot hide.
        testbed.machine.fail_nodes(10)
        testbed.sim.run(until=20.0)
        notices = broker.hub.for_sla(outcome.sla.sla_id)
        assert notices
        account = broker.ledger.account(outcome.sla.sla_id)
        terminated = outcome.sla.status is SlaStatus.TERMINATED
        assert terminated or account.total_penalties() > 0.0
