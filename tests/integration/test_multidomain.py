"""Integration: the Figure 1 multi-domain architecture."""

from __future__ import annotations

import pytest

from repro.core.testbed import build_multidomain
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, SlaStatus
from repro.sla.negotiation import ServiceRequest


@pytest.fixture
def world():
    return build_multidomain(domains=2)


def cross_domain_request(client="alice"):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, 4),
                               exact_parameter(Dimension.BANDWIDTH_MBPS,
                                               100))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=50.0,
        network=NetworkDemand("10.1.0.1", "10.2.0.1", 100.0))


class TestCrossDomainSessions:
    def test_session_with_cross_domain_flow(self, world):
        broker = world.brokers["domain1"]
        outcome = broker.request_service(cross_domain_request())
        assert outcome.accepted
        booking = broker.allocation.get(
            outcome.sla.sla_id).reservation.network_booking
        from repro.network.interdomain import EndToEndAllocation
        assert isinstance(booking, EndToEndAllocation)

    def test_each_broker_manages_its_own_domain(self, world):
        first = world.brokers["domain1"].request_service(
            cross_domain_request("a"))
        second = world.brokers["domain2"].request_service(
            cross_domain_request("b"))
        assert first.accepted and second.accepted
        assert world.brokers["domain1"].partition.committed_total() == 4
        assert world.brokers["domain2"].partition.committed_total() == 4

    def test_interdomain_bandwidth_shared(self, world):
        broker = world.brokers["domain1"]
        # The inter-domain link is 622 Mbps; six 100 Mbps sessions fit,
        # the seventh is refused on the network leg.
        outcomes = [broker.request_service(cross_domain_request(f"c{i}"))
                    for i in range(7)]
        accepted = [o for o in outcomes if o.accepted]
        # Compute also constrains (Cg=15 per domain, 4 CPUs each -> 3
        # sessions fit the commitment rule).
        assert 1 <= len(accepted) <= 6

    def test_termination_releases_cross_domain_flow(self, world):
        broker = world.brokers["domain1"]
        outcome = broker.request_service(cross_domain_request())
        assert outcome.accepted
        assert world.coordinator.can_allocate("site1", "site2", 522.0,
                                              10, 40)
        broker.terminate_session(outcome.sla.sla_id)
        assert outcome.sla.status is SlaStatus.TERMINATED
        assert world.coordinator.can_allocate("site1", "site2", 622.0,
                                              10, 40)

    def test_remote_congestion_reaches_owning_broker(self, world):
        broker = world.brokers["domain1"]
        outcome = broker.request_service(cross_domain_request())
        assert outcome.accepted
        # Congest the inter-domain link via domain1's NRM (it owns it).
        world.coordinator.nrm_for("domain1").set_congestion(
            "site1", "site2", 0.1)
        notices = broker.hub.for_sla(outcome.sla.sla_id)
        assert notices
