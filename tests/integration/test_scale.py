"""Scale smoke tests: the stack at well beyond the paper's testbed size.

Not micro-benchmarks (those live in ``benchmarks/``) — these assert
the system stays correct and tractable at a 600-node machine with
hundreds of concurrent sessions.
"""

from __future__ import annotations

import time

import pytest

from repro.core.capacity import CapacityPartition
from repro.core.testbed import build_testbed
from repro.experiments.harness import request_from_spec
from repro.qos.classes import ServiceClass
from repro.sim.random import RandomSource
from repro.workloads.generators import WorkloadConfig, generate_workload


class TestLargePartition:
    def test_five_hundred_users(self):
        partition = CapacityPartition(3000, 1000, 1000,
                                      best_effort_min=200)
        for index in range(400):
            partition.admit_guaranteed(f"g{index}", 7)
            partition.set_guaranteed_demand(f"g{index}", 7)
        for index in range(100):
            partition.set_best_effort_demand(f"b{index}", 15)
        report = partition.apply_failure(500)
        assert report.guarantees_honored
        assert partition.total_served() <= sum(
            partition.effective_sizes()) + 1e-6

    def test_rebalance_speed(self):
        partition = CapacityPartition(3000, 1000, 1000)
        for index in range(300):
            partition.admit_guaranteed(f"g{index}", 10)
            partition.set_guaranteed_demand(f"g{index}", 10)
        started = time.perf_counter()
        for _ in range(50):
            partition.rebalance()
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"50 rebalances took {elapsed:.2f}s"


class TestLargeBrokerRun:
    def test_hundreds_of_sessions(self):
        testbed = build_testbed(total_cpu=600, guaranteed_cpu=360,
                                adaptive_cpu=120, best_effort_cpu=120,
                                best_effort_min=30,
                                machine_nodes=1000)
        broker = testbed.broker
        config = WorkloadConfig(horizon=300.0, arrival_rate=1.2,
                                mean_duration=50.0)
        workload = generate_workload(config, RandomSource(5))
        assert len(workload) > 200
        for session in workload.sessions:
            def issue(s=session):
                if s.service_class is ServiceClass.BEST_EFFORT:
                    broker.request_best_effort(s.user, s.cpu_best,
                                               duration=s.duration)
                else:
                    broker.request_service(request_from_spec(s))
            testbed.sim.schedule_at(session.arrival, issue)
        started = time.perf_counter()
        last_end = max(s.end for s in workload.sessions)
        testbed.sim.run(until=last_end + 1.0)
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0, f"scale run took {elapsed:.1f}s"
        assert broker.stats.accepted > 100
        # Leak audit at scale.
        assert testbed.broker.allocation.open_sessions() == []
        assert testbed.partition.committed_total() == 0.0
        assert testbed.compute_rm.running_jobs() == []
