"""Integration: the Figure 2 component interaction sequence.

A full session replays the sequence diagram — QueryServices,
RequestService, resource queries, SLA negotiation, resource
allocation, service invocation, QoS management — and the trace proves
each interaction happened in order.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, SlaStatus
from repro.sla.lifecycle import QoSFunction
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound


@pytest.fixture
def session_outcome(testbed):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 10),
        exact_parameter(Dimension.MEMORY_MB, 2048),
        exact_parameter(Dimension.DISK_MB, 15360),
    )
    request = ServiceRequest(
        client="scientists", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33",
                              100.0, parse_bound("LessThan 10%")))
    return testbed.broker.request_service(request)


class TestSequence:
    def test_session_established_and_active(self, testbed, session_outcome):
        assert session_outcome.accepted
        assert session_outcome.sla.status is SlaStatus.ACTIVE

    def test_trace_shows_figure2_order(self, testbed, session_outcome):
        messages = [entry.message for entry in testbed.trace]
        discovery = next(index for index, message in enumerate(messages)
                         if "discovery" in message)
        reservation = next(index for index, message in enumerate(messages)
                           if "temporarily reserved" in message)
        launch = next(index for index, message in enumerate(messages)
                      if "launched" in message)
        established = next(index for index, message in enumerate(messages)
                           if "established" in message)
        assert discovery < reservation < launch
        assert discovery < established

    def test_lifecycle_functions_recorded(self, session_outcome):
        functions = session_outcome.session.functions_performed()
        assert functions[:4] == [QoSFunction.SPECIFICATION,
                                 QoSFunction.MAPPING,
                                 QoSFunction.NEGOTIATION,
                                 QoSFunction.RESERVATION]
        assert QoSFunction.ALLOCATION in functions
        assert QoSFunction.MONITORING in functions

    def test_qos_management_phase_runs(self, testbed, session_outcome):
        report = testbed.broker.conformance_test(
            session_outcome.sla.sla_id)
        assert report.conformant

    def test_clearing_on_completion(self, testbed, session_outcome):
        testbed.sim.run(until=120.0)
        sla = session_outcome.sla
        assert sla.status in (SlaStatus.COMPLETED, SlaStatus.EXPIRED)
        functions = session_outcome.session.functions_performed()
        assert QoSFunction.TERMINATION in functions
        assert QoSFunction.ACCOUNTING in functions
