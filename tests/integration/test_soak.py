"""Soak test: the full stack under combined churn and turbulence.

A long run with Poisson arrivals across all three classes, stochastic
node failures, stochastic link congestion, periodic SLA-Verif polling
and the periodic optimizer — then a leak audit: every session closed,
every reservation released, every slot table drained, the partition
empty, and the books consistent.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.experiments.harness import request_from_spec
from repro.network.congestion import CongestionInjector
from repro.qos.classes import ServiceClass
from repro.resources.failures import FailureInjector
from repro.sim.random import RandomSource
from repro.sla.document import SlaStatus
from repro.workloads.generators import WorkloadConfig, generate_workload

HORIZON = 600.0


@pytest.fixture(scope="module")
def soaked():
    testbed = build_testbed(seed=31, optimizer_interval=25.0)
    broker = testbed.broker
    sim = testbed.sim
    rng = RandomSource(31)

    config = WorkloadConfig(horizon=HORIZON, arrival_rate=0.12,
                            mean_duration=60.0)
    workload = generate_workload(config, rng.stream("workload"))
    for session in workload.sessions:
        def issue(s=session):
            if s.service_class is ServiceClass.BEST_EFFORT:
                broker.request_best_effort(s.user, s.cpu_best,
                                           duration=s.duration)
            else:
                broker.request_service(request_from_spec(s))
        sim.schedule_at(session.arrival, issue)

    FailureInjector(sim, testbed.machine, rng.stream("failures"),
                    mtbf=80.0, mttr=30.0, max_concurrent_failures=4,
                    trace=testbed.trace).start()
    CongestionInjector(sim, testbed.nrm, rng=rng.stream("congestion"),
                       mtbc=90.0, mean_duration=30.0,
                       severity=(0.5, 0.9), trace=testbed.trace).start()
    broker.verifier.start_polling(10.0)
    # Run well past the horizon so every session's window has ended.
    sim.run(until=HORIZON + 300.0)
    return testbed, workload


class TestNoLeaks:
    def test_every_sla_closed(self, soaked):
        testbed, _workload = soaked
        for sla in testbed.repository.all():
            assert not sla.status.is_live, \
                f"SLA {sla.sla_id} leaked in state {sla.status}"

    def test_no_open_sessions(self, soaked):
        testbed, _workload = soaked
        assert testbed.broker.allocation.open_sessions() == []

    def test_compute_slot_table_drained(self, soaked):
        testbed, _workload = soaked
        now = testbed.sim.now
        assert testbed.compute_rm.slot_table.entries_at(now) == []
        assert not testbed.compute_rm.gara.live_reservations()

    def test_network_flows_released(self, soaked):
        testbed, _workload = soaked
        assert testbed.nrm.flows() == []

    def test_partition_empty(self, soaked):
        testbed, _workload = soaked
        partition = testbed.partition
        assert partition.guaranteed_holdings() == []
        assert partition.best_effort_served() == 0.0
        assert partition.committed_total() == 0.0

    def test_no_running_jobs(self, soaked):
        testbed, _workload = soaked
        assert testbed.compute_rm.running_jobs() == []


class TestBooksConsistent:
    def test_every_accepted_session_has_an_account(self, soaked):
        testbed, _workload = soaked
        broker = testbed.broker
        assert broker.stats.accepted > 0
        for sla in testbed.repository.all():
            account = broker.ledger.account(sla.sla_id)
            assert account.closed
            assert account.gross_revenue() >= 0.0

    def test_counters_add_up(self, soaked):
        testbed, _workload = soaked
        stats = testbed.broker.stats
        closed = stats.completed + stats.terminated + stats.expired
        assert closed == stats.accepted

    def test_activity_happened(self, soaked):
        testbed, _workload = soaked
        broker = testbed.broker
        # The turbulence actually exercised the adaptation machinery.
        assert broker.verifier.tests_run > 10
        assert broker.stats.optimizer_runs > 5
        categories = testbed.trace.categories()
        for expected in ("broker", "compute", "failure", "congestion"):
            assert expected in categories

    def test_deterministic_replay(self):
        def run():
            testbed = build_testbed(seed=77, optimizer_interval=25.0)
            rng = RandomSource(77)
            config = WorkloadConfig(horizon=200.0, arrival_rate=0.1)
            workload = generate_workload(config, rng.stream("w"))
            for session in workload.sessions:
                def issue(s=session):
                    if s.service_class is ServiceClass.BEST_EFFORT:
                        testbed.broker.request_best_effort(
                            s.user, s.cpu_best, duration=s.duration)
                    else:
                        testbed.broker.request_service(
                            request_from_spec(s))
                testbed.sim.schedule_at(session.arrival, issue)
            FailureInjector(testbed.sim, testbed.machine,
                            rng.stream("f"), mtbf=50.0, mttr=20.0).start()
            testbed.sim.run(until=400.0)
            return (testbed.broker.stats.accepted,
                    testbed.broker.stats.completed,
                    round(testbed.broker.ledger.provider_net(
                        testbed.sim.now), 6))

        assert run() == run()
