"""Integration: the Figure 5 testbed — clients drive the AQoS broker
purely through XML messages over the bus."""

from __future__ import annotations

import pytest

from repro.core.gateway import BrokerGateway, ClientStub
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, SlaStatus
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound
from repro.xmlmsg.bus import MessageBus


@pytest.fixture
def world(testbed):
    bus = MessageBus(testbed.sim, trace=testbed.trace)
    BrokerGateway(testbed.broker, bus)
    client1 = ClientStub("client1", bus)
    client2 = ClientStub("client2", bus)
    return testbed, bus, client1, client2


def guaranteed_request(client="client1", cpu=10):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 2048))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33",
                              100.0, parse_bound("LessThan 10%")))


class TestClientFlow:
    def test_request_offer_accept_cycle(self, world):
        testbed, _bus, client1, _client2 = world
        negotiation_id, offers, reason = client1.request_service(
            guaranteed_request())
        assert reason == ""
        assert negotiation_id is not None
        assert len(offers) == 1
        sla, failure = client1.accept_offer(negotiation_id)
        assert failure == ""
        assert sla.client == "client1"
        stored = testbed.repository.get(sla.sla_id)
        assert stored.status is SlaStatus.ACTIVE

    def test_reject_leaves_no_session(self, world):
        testbed, _bus, client1, _client2 = world
        negotiation_id, _offers, _reason = client1.request_service(
            guaranteed_request())
        client1.reject_offer(negotiation_id)
        assert testbed.repository.live() == []

    def test_verify_sla_returns_table3_values(self, world):
        _testbed, _bus, client1, _client2 = world
        negotiation_id, _offers, _ = client1.request_service(
            guaranteed_request())
        sla, _ = client1.accept_offer(negotiation_id)
        measured_id, values = client1.verify_sla(sla.sla_id)
        assert measured_id == sla.sla_id
        assert values[Dimension.CPU] == 10.0
        assert values[Dimension.BANDWIDTH_MBPS] == pytest.approx(100.0)

    def test_two_clients_share_the_broker(self, world):
        testbed, _bus, client1, client2 = world
        first_id, _, _ = client1.request_service(guaranteed_request())
        second_id, _, _ = client2.request_service(
            guaranteed_request(client="client2", cpu=5))
        assert first_id != second_id
        sla1, _ = client1.accept_offer(first_id)
        sla2, _ = client2.accept_offer(second_id)
        assert {s.client for s in testbed.repository.live()} == \
            {"client1", "client2"}

    def test_capacity_failure_surfaces_as_offer_failure(self, world):
        _testbed, _bus, client1, client2 = world
        negotiation_id, _, _ = client1.request_service(guaranteed_request())
        client1.accept_offer(negotiation_id)
        _id, offers, reason = client2.request_service(
            guaranteed_request(client="client2", cpu=10))
        assert offers == []
        assert "resources" in reason

    def test_controlled_load_offers_include_floor(self, world):
        _testbed, _bus, client1, _client2 = world
        spec = QoSSpecification.of(range_parameter(Dimension.CPU, 2, 8))
        request = ServiceRequest(
            client="client1", service_name="simulation-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=spec, start=0.0, end=50.0)
        _id, offers, _ = client1.request_service(request)
        assert len(offers) == 2
        assert offers[0].price_rate > offers[1].price_rate

    def test_message_trace_records_soap_flow(self, world):
        testbed, _bus, client1, _client2 = world
        negotiation_id, _, _ = client1.request_service(guaranteed_request())
        client1.accept_offer(negotiation_id)
        messages = [entry.message for entry in
                    testbed.trace.filter(category="message")]
        assert any("client1 -> aqos: service_request" in m
                   for m in messages)
        assert any("client1 -> aqos: accept_offer" in m for m in messages)
