"""Tests for the metrics registry (repro.telemetry.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.telemetry.metrics import (DEFAULT_BUCKETS, Histogram,
                                     MetricsRegistry)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestInstruments:
    def test_counter_is_keyed_by_name_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", op="create").inc()
        registry.counter("repro_ops_total", op="create").inc()
        registry.counter("repro_ops_total", op="cancel").inc()
        assert registry.counter_value("repro_ops_total", op="create") == 2
        assert registry.counter_value("repro_ops_total", op="cancel") == 1
        assert registry.counter_value("repro_ops_total", op="other") == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", a="1", b="2").inc()
        assert registry.counter_value("repro_x_total", b="2", a="1") == 1

    def test_negative_counter_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("repro_x_total").inc(-1.0)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_active", pool="g")
        gauge.set(4.0)
        gauge.add(-1.0)
        assert registry.gauge_value("repro_active", pool="g") == 3.0

    def test_kind_reuse_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing_total").inc()
        with pytest.raises(ValidationError):
            registry.gauge("repro_thing_total")

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("bad name")
        with pytest.raises(ValidationError):
            registry.counter("repro_ok_total", **{"bad-label": "x"})


class TestHistogram:
    def test_buckets_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValidationError):
            Histogram(())
        with pytest.raises(ValidationError):
            Histogram((2.0, 1.0))

    def test_cumulative_ends_at_inf(self):
        histogram = Histogram((1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(1.0, 2), (5.0, 3),
                                          (float("inf"), 4)]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(104.2)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTimeWeightedGauge:
    def test_mean_is_exact_time_weighted(self):
        clock = FakeClock()
        registry = MetricsRegistry(now=clock)
        gauge = registry.time_gauge("repro_capacity_effective", pool="g")
        gauge.set(15.0)
        clock.now = 30.0
        gauge.set(12.0)
        clock.now = 60.0
        # 15 over [0,30) + 12 over [30,60) -> mean 13.5.
        assert gauge.value == 12.0
        assert gauge.mean() == pytest.approx(13.5)

    def test_window_opens_at_first_set(self):
        clock = FakeClock()
        registry = MetricsRegistry(now=clock)
        clock.now = 50.0
        gauge = registry.time_gauge("repro_late")
        gauge.set(10.0)
        clock.now = 60.0
        # No zero-filled lead-in over [0, 50).
        assert gauge.mean() == pytest.approx(10.0)

    def test_unset_gauge_means_zero(self):
        registry = MetricsRegistry()
        assert registry.time_gauge("repro_never").mean() == 0.0


class TestRendering:
    def test_prometheus_snapshot_groups_families(self):
        clock = FakeClock()
        registry = MetricsRegistry(now=clock)
        registry.counter("repro_ops_total", op="b").inc(2)
        registry.counter("repro_ops_total", op="a").inc()
        registry.gauge("repro_active").set(3)
        registry.histogram("repro_latency", buckets=(1.0,)).observe(0.5)
        registry.time_gauge("repro_cap", pool="g").set(15.0)
        clock.now = 10.0
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_ops_total counter" in lines
        assert lines.count("# TYPE repro_ops_total counter") == 1
        # Sorted label values within the family.
        assert lines.index('repro_ops_total{op="a"} 1') \
            < lines.index('repro_ops_total{op="b"} 2')
        assert "# TYPE repro_latency histogram" in lines
        assert 'repro_latency_bucket{le="+Inf"} 1' in lines
        assert "repro_latency_sum 0.5" in lines
        assert "repro_latency_count 1" in lines
        assert 'repro_cap{pool="g"} 15' in lines
        assert 'repro_cap_timeweighted_mean{pool="g"} 15' in lines

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("repro_z_total").inc()
            registry.counter("repro_a_total", op="x").inc()
            registry.gauge("repro_m", pool="b").set(2)
            return registry.render_prometheus()

        assert build() == build()

    def test_as_dict_flattens_keys(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", op="create").inc()
        registry.gauge("repro_active").set(2)
        data = registry.as_dict()
        assert data["repro_ops_total{op=create}"] == 1
        assert data["repro_active"] == 2
