"""The telemetry hub installed on a full control-plane testbed."""

from __future__ import annotations

import json

import pytest

from repro.core.testbed import (attach_control_plane, build_testbed,
                                install_telemetry)
from repro.telemetry import Telemetry, events_jsonl

from ..chaos.conftest import guaranteed_request


@pytest.fixture
def testbed():
    return attach_control_plane(build_testbed())


@pytest.fixture
def telemetry(testbed):
    return install_telemetry(testbed)


class TestInstallation:
    def test_hub_adopts_the_existing_registry_and_stream(self, testbed,
                                                         telemetry):
        assert telemetry.metrics is testbed.broker.metrics
        assert telemetry.stream is testbed.trace.stream

    def test_install_is_idempotent(self, testbed, telemetry):
        assert install_telemetry(testbed) is telemetry

    def test_every_component_holds_the_same_hub(self, testbed, telemetry):
        broker = testbed.broker
        assert broker.telemetry is telemetry
        assert broker.verifier.telemetry is telemetry
        assert broker.reservation_system.telemetry is telemetry
        assert broker.compute_rm.gara.telemetry is telemetry
        assert testbed.bus.telemetry is telemetry

    def test_capacity_gauges_are_primed_at_install(self, testbed,
                                                   telemetry):
        data = telemetry.metrics.as_dict()
        assert data["repro_capacity_effective{pool=g}"] == 15
        assert data["repro_capacity_effective{pool=a}"] == 6
        assert data["repro_capacity_effective{pool=b}"] == 5

    def test_disabled_by_default(self):
        testbed = attach_control_plane(build_testbed())
        assert testbed.telemetry is None
        assert testbed.broker.telemetry is None
        assert testbed.bus.telemetry is None


class TestEndToEnd:
    def test_admission_produces_a_connected_span_tree(self, testbed,
                                                      telemetry):
        outcome = testbed.broker.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        assert outcome.accepted
        spans = telemetry.tracer.spans
        components = {span.component for span in spans}
        assert {"aqos-broker", "reservation-system",
                "aqos-discovery", "uddie"} <= components
        # Everything belongs to connected trees: each non-root parent
        # is a recorded span of the same trace.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].trace_id == span.trace_id

    def test_transport_counters_land_in_the_shared_registry(self, testbed,
                                                            telemetry):
        testbed.broker.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        assert telemetry.metrics.counter_value(
            "repro_bus_requests_total", action="find_services") == 1

    def test_dedup_counters_are_bound_to_the_hub_registry(self, testbed,
                                                          telemetry):
        endpoint = testbed.bus.endpoint("probe")
        assert endpoint.dedup._hits is telemetry.metrics.counter(
            "repro_dedup_hits_total", endpoint="probe")

    def test_report_has_all_three_sections(self, testbed, telemetry):
        testbed.broker.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        report = telemetry.report(title="t")
        assert "t: span trees" in report
        assert "t: metrics snapshot" in report
        assert "t: event stream (JSONL)" in report
        assert "# TYPE repro_bus_requests_total counter" in report

    def test_jsonl_export_is_parseable_and_sorted_keys(self, testbed,
                                                       telemetry):
        testbed.broker.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        lines = events_jsonl(telemetry.stream).splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert {"time", "category", "message"} <= set(record)

    def test_legacy_trace_rides_the_same_stream(self, testbed, telemetry):
        testbed.broker.request_service(
            guaranteed_request(client="user1", cpu=4,
                               with_network=False))
        categories = {event.category
                      for event in telemetry.stream.events}
        # Component trace rows and finished spans interleave in one log.
        assert "span" in categories
        assert "broker" in categories


class TestEmptyHub:
    def test_empty_report_renders_fallbacks(self):
        hub = Telemetry(now=lambda: 0.0)
        report = hub.report()
        assert "(no spans)" in report
        assert "(no metrics)" in report
        assert "(no events)" in report
