"""Tests for the capacity gauge set (repro.telemetry.capacity)."""

from __future__ import annotations

import pytest

from repro.core.capacity import CapacityPartition
from repro.telemetry.capacity import POOLS, CapacityGauges
from repro.telemetry.metrics import MetricsRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return MetricsRegistry(now=clock)


def observed_partition(gauges, **kwargs):
    """A partition wired to the gauges from its very first rebalance."""
    partition = CapacityPartition(**kwargs)
    partition.observer = gauges.on_rebalance
    gauges.prime(partition)
    return partition


class TestGaugeFeed:
    def test_prime_records_the_nominal_split(self, registry):
        gauges = CapacityGauges(registry)
        observed_partition(gauges, guaranteed=15, adaptive=6,
                           best_effort=5)
        data = registry.as_dict()
        assert data["repro_capacity_effective{pool=g}"] == 15
        assert data["repro_capacity_effective{pool=a}"] == 6
        assert data["repro_capacity_effective{pool=b}"] == 5
        assert registry.counter_value(
            "repro_capacity_rebalances_total") == 1

    def test_every_rebalance_refreshes_the_gauges(self, registry, clock):
        gauges = CapacityGauges(registry)
        partition = observed_partition(gauges, guaranteed=15, adaptive=6,
                                       best_effort=5)
        clock.now = 30.0
        partition.apply_failure(4.0)
        data = registry.as_dict()
        assert data["repro_capacity_effective{pool=g}"] == 11
        assert data["repro_capacity_failed"] == 4
        clock.now = 60.0
        partition.apply_repair()
        assert registry.as_dict()["repro_capacity_effective{pool=g}"] == 15

    def test_time_weighted_occupancy_is_exact(self, registry, clock):
        gauges = CapacityGauges(registry)
        partition = observed_partition(gauges, guaranteed=15, adaptive=6,
                                       best_effort=5)
        clock.now = 30.0
        partition.apply_failure(8.0)
        clock.now = 60.0
        partition.apply_repair()
        clock.now = 120.0
        # Cg: 15 over [0,30), 7 over [30,60), 15 over [60,120).
        mean = registry.as_dict()[
            "repro_capacity_effective_timeweighted_mean{pool=g}"]
        assert mean == pytest.approx((30 * 15 + 30 * 7 + 60 * 15) / 120)

    def test_borrowing_shows_up_as_allocated_and_transfer(self, registry):
        gauges = CapacityGauges(registry)
        partition = observed_partition(gauges, guaranteed=10, adaptive=6,
                                       best_effort=5)
        partition.admit_guaranteed("user-1", 10.0)
        partition.set_guaranteed_demand("user-1", 10.0)
        # A failure shrinks Cg to 6; Adapt() borrows 4 from Ca so the
        # commitment stays served — and the gauges show it.
        partition.apply_failure(4.0)
        data = registry.as_dict()
        assert data["repro_capacity_allocated{pool=a,tier=guaranteed}"] \
            == pytest.approx(4.0)
        assert data["repro_capacity_adapt_transfer"] == pytest.approx(4.0)

    def test_shortfall_sets_gauge_and_counter(self, registry):
        gauges = CapacityGauges(registry)
        partition = observed_partition(gauges, guaranteed=10, adaptive=0,
                                       best_effort=0)
        partition.admit_guaranteed("user-1", 10.0)
        partition.set_guaranteed_demand("user-1", 10.0)
        partition.apply_failure(6.0)
        assert registry.gauge_value("repro_capacity_shortfall") \
            == pytest.approx(6.0)
        assert registry.counter_value(
            "repro_capacity_shortfall_events_total") >= 1

    def test_none_report_without_history_is_a_noop(self, registry):
        gauges = CapacityGauges(registry)

        class Bare:
            last_report = None

        gauges.on_rebalance(Bare(), None)
        assert registry.as_dict() == {}

    def test_pool_keys_match_the_paper(self):
        assert POOLS == ("g", "a", "b")
