"""Telemetry export round-trips: JSONL re-export and the Prometheus
snapshot schema, both pinned byte-for-byte."""

from __future__ import annotations

import json

import pytest

from repro.core.testbed import build_testbed, install_telemetry
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest
from repro.telemetry import events_jsonl, prometheus_snapshot
from repro.telemetry.events import EventStream, TelemetryEvent

#: Metric families every admission-bearing run must expose, with their
#: pinned Prometheus types.  Extending telemetry may add families, but
#: these must never silently vanish or change kind.
PINNED_FAMILIES = {
    "repro_capacity_allocated": "gauge",
    "repro_capacity_effective": "gauge",
    "repro_capacity_idle": "gauge",
    "repro_capacity_rebalances_total": "counter",
    "repro_capacity_utilization": "gauge",
    "repro_gara_cpu_reserved": "gauge",
    "repro_gara_operations_total": "counter",
    "repro_sla_active_sessions": "gauge",
}


@pytest.fixture
def telemetry():
    testbed = build_testbed()
    hub = install_telemetry(testbed)
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 256))
    outcome = testbed.broker.request_service(ServiceRequest(
        client="user1", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0))
    assert outcome.accepted
    testbed.sim.run(until=50.0)
    return hub


class TestJsonlRoundTrip:
    def test_parse_and_reemit_is_byte_identical(self, telemetry):
        exported = events_jsonl(telemetry.stream)
        assert exported, "admission run produced no events"
        rebuilt = EventStream()
        for line in exported.splitlines():
            row = json.loads(line)
            rebuilt.append(TelemetryEvent(
                time=row["time"], category=row["category"],
                message=row["message"], details=row["details"]))
        assert events_jsonl(rebuilt) == exported

    def test_every_line_is_self_contained_json(self, telemetry):
        for line in events_jsonl(telemetry.stream).splitlines():
            row = json.loads(line)
            assert set(row) == {"time", "category", "message",
                                "details"}
            assert isinstance(row["details"], dict)

    def test_export_does_not_consume_the_stream(self, telemetry):
        first = events_jsonl(telemetry.stream)
        second = events_jsonl(telemetry.stream)
        assert first == second
        assert len(telemetry.stream) == len(first.splitlines())


class TestPrometheusSchema:
    def test_pinned_families_present_with_pinned_types(self, telemetry):
        text = prometheus_snapshot(telemetry.metrics)
        types = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, family, kind = line.split(" ")
                types[family] = kind
        for family, kind in PINNED_FAMILIES.items():
            assert types.get(family) == kind, (
                f"{family} missing or changed type "
                f"(got {types.get(family)!r}, pinned {kind!r})")

    def test_every_sample_row_belongs_to_a_typed_family(self, telemetry):
        text = prometheus_snapshot(telemetry.metrics)
        declared = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE "):
                declared.add(line.split(" ")[2])
                continue
            assert not line.startswith("#"), f"unexpected comment {line}"
            name = line.split("{")[0].split(" ")[0]
            assert name in declared, f"sample {name} has no TYPE header"
            value = line.rsplit(" ", 1)[1]
            float(value)  # parses as a Prometheus sample value

    def test_snapshot_is_repeatable(self, telemetry):
        assert (prometheus_snapshot(telemetry.metrics)
                == prometheus_snapshot(telemetry.metrics))
