"""Tests for the span layer (repro.telemetry.spans)."""

from __future__ import annotations

import pytest

from repro.telemetry.events import EventStream
from repro.telemetry.spans import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestParentage:
    def test_root_span_starts_a_fresh_trace(self, tracer):
        with tracer.span("negotiate", component="broker") as span:
            assert span.trace_id == "trace-1"
            assert span.parent_id is None

    def test_nested_spans_parent_to_the_context(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_explicit_remote_parent_resumes_the_senders_trace(self, tracer):
        with tracer.span("request:create") as request:
            pass
        # The receiving side of a bus delivery: no local context, but
        # the envelope carried the sender's (trace_id, span_id).
        with tracer.span("handle:create",
                         trace_id=request.trace_id,
                         parent_id=request.span_id) as handled:
            assert handled.trace_id == request.trace_id
            assert handled.parent_id == request.span_id

    def test_siblings_share_the_parent(self, tracer):
        with tracer.span("call") as call:
            with tracer.span("attempt-1") as first:
                pass
            with tracer.span("attempt-2") as second:
                pass
        assert first.parent_id == call.span_id
        assert second.parent_id == call.span_id
        assert first.span_id != second.span_id


class TestLifecycle:
    def test_span_times_come_from_the_sim_clock(self, tracer, clock):
        clock.now = 5.0
        with tracer.span("op") as span:
            clock.now = 8.0
        assert span.start == 5.0
        assert span.end == 8.0
        assert span.duration == pytest.approx(3.0)

    def test_escaping_exception_marks_the_span_and_reraises(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("op") as span:
                raise RuntimeError("boom")
        assert span.status == "error:RuntimeError"
        assert span.end is not None
        assert tracer.current() is None

    def test_finish_is_idempotent(self, tracer, clock):
        span = tracer.start("op")
        tracer.finish(span)
        first_end = span.end
        clock.now = 99.0
        tracer.finish(span, status="error:Late")
        assert span.end == first_end
        assert span.status == "ok"

    def test_finished_spans_are_emitted_to_the_stream(self, clock):
        stream = EventStream()
        tracer = Tracer(clock, stream=stream)
        with tracer.span("op", component="broker", sla_id=7):
            pass
        events = stream.events
        assert len(events) == 1
        event = events[0]
        assert event.category == "span"
        assert "broker: op (ok)" in event.message
        assert event.details["sla_id"] == 7
        assert event.details["trace_id"] == "trace-1"


class TestDeterminismAndRendering:
    def test_two_fresh_tracers_produce_identical_ids(self, clock):
        def run(tracer):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [(s.trace_id, s.span_id, s.parent_id)
                    for s in tracer.spans]

        assert run(Tracer(clock)) == run(Tracer(clock))

    def test_render_tree_nests_by_parentage(self, tracer):
        with tracer.span("outer", component="broker"):
            with tracer.span("inner", component="gara", op="create"):
                pass
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0] == "trace trace-1"
        assert lines[1].startswith("  [")
        assert "broker: outer (ok)" in lines[1]
        assert lines[2].startswith("    [")
        assert "gara: inner (ok) op=create" in lines[2]

    def test_orphan_parent_renders_as_root(self, tracer):
        # A parent span that never reached this tracer (e.g. the leg
        # was dropped before delivery) must not hide its children.
        with tracer.span("handle", trace_id="trace-x",
                         parent_id="span-elsewhere"):
            pass
        tree = tracer.render_tree("trace-x")
        assert "handle (ok)" in tree

    def test_trace_ids_in_first_seen_order(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.trace_ids() == ["trace-1", "trace-2"]
