"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.capacity import CapacityPartition
from repro.core.testbed import Testbed, build_testbed
from repro.sim.engine import Simulator
from repro.sim.random import RandomSource
from repro.sim.trace import TraceRecorder


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def trace() -> TraceRecorder:
    """A fresh trace recorder."""
    return TraceRecorder()


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def partition() -> CapacityPartition:
    """The paper's Cg=15 / Ca=6 / Cb=5 partition."""
    return CapacityPartition(15, 6, 5, best_effort_min=2)


@pytest.fixture
def testbed() -> Testbed:
    """A fully wired single-domain testbed (Figure 5 shape)."""
    return build_testbed()
