"""Public-API surface sanity: every ``__all__`` name resolves, every
public item is documented, the error hierarchy is coherent."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro
from repro import errors

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.qos",
    "repro.xmlmsg",
    "repro.rsl",
    "repro.gara",
    "repro.resources",
    "repro.network",
    "repro.registry",
    "repro.sla",
    "repro.monitoring",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.experiments",
    "repro.telemetry",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), \
                f"{package_name}.__all__ lists missing name {name!r}"

    def test_all_is_sorted(self, package_name):
        module = importlib.import_module(package_name)
        names = list(getattr(module, "__all__", []))
        assert names == sorted(names), \
            f"{package_name}.__all__ is not sorted"

    def test_package_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_exported_items_documented(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                assert inspect.getdoc(item), \
                    f"{package_name}.{name} has no docstring"

    def test_public_methods_documented(self, package_name):
        module = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if not inspect.isclass(item):
                continue
            for method_name, method in inspect.getmembers(
                    item, predicate=inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__module__ is None or \
                        not method.__module__.startswith("repro"):
                    continue  # inherited from stdlib bases
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, \
            f"{package_name}: undocumented public methods: {undocumented}"


class TestErrorHierarchy:
    def test_every_error_derives_from_base(self):
        for name in dir(errors):
            item = getattr(errors, name)
            if (inspect.isclass(item) and issubclass(item, Exception)
                    and item.__module__ == "repro.errors"):
                assert issubclass(item, errors.GQoSMError), name

    def test_lookup_style_errors_are_key_errors(self):
        assert issubclass(errors.ReservationNotFound, KeyError)
        assert issubclass(errors.ServiceNotFound, KeyError)

    def test_value_style_errors_are_value_errors(self):
        for error in (errors.UnitError, errors.RSLError,
                      errors.QoSSpecificationError):
            assert issubclass(error, ValueError)

    def test_layering(self):
        assert issubclass(errors.CapacityError, errors.ReservationError)
        assert issubclass(errors.NegotiationError, errors.SLAError)
        assert issubclass(errors.NetworkError, errors.ResourceError)

    def test_one_except_catches_everything(self):
        with pytest.raises(errors.GQoSMError):
            raise errors.CapacityError("full")
        with pytest.raises(errors.GQoSMError):
            raise errors.LifecycleError("bad phase")


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_lazy_testbed_builder(self):
        testbed = repro.build_testbed()
        assert testbed.partition.total == 26
