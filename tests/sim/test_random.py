"""Tests for seeded randomness (repro.sim.random)."""

from __future__ import annotations

import pytest

from repro.sim.random import RandomSource


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.uniform(0, 1) for _ in range(10)] == \
               [b.uniform(0, 1) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(7)
        b = RandomSource(8)
        assert [a.uniform(0, 1) for _ in range(10)] != \
               [b.uniform(0, 1) for _ in range(10)]

    def test_named_streams_are_stable(self):
        a = RandomSource(7).stream("arrivals")
        b = RandomSource(7).stream("arrivals")
        assert [a.exponential(2.0) for _ in range(5)] == \
               [b.exponential(2.0) for _ in range(5)]

    def test_named_streams_decorrelate(self):
        source = RandomSource(7)
        arrivals = source.stream("arrivals")
        failures = source.stream("failures")
        assert [arrivals.uniform(0, 1) for _ in range(5)] != \
               [failures.uniform(0, 1) for _ in range(5)]

    def test_stream_is_cached(self):
        source = RandomSource(7)
        assert source.stream("x") is source.stream("x")


class TestDistributions:
    def test_exponential_mean(self):
        source = RandomSource(11)
        samples = [source.exponential(5.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            RandomSource(0).exponential(0.0)

    def test_pareto_is_heavy_tailed(self):
        source = RandomSource(11)
        samples = [source.pareto(2.0, scale=1.0) for _ in range(10_000)]
        assert min(samples) >= 1.0
        assert max(samples) > 10.0

    def test_randint_bounds(self):
        source = RandomSource(3)
        samples = [source.randint(2, 5) for _ in range(1000)]
        assert set(samples) == {2, 3, 4, 5}

    def test_probability_extremes(self):
        source = RandomSource(3)
        assert all(source.probability(1.0) for _ in range(100))
        assert not any(source.probability(0.0) for _ in range(100))

    def test_probability_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RandomSource(0).probability(1.5)

    def test_weighted_choice_respects_weights(self):
        source = RandomSource(5)
        picks = [source.weighted_choice(["a", "b"], [0.9, 0.1])
                 for _ in range(5000)]
        assert picks.count("a") > picks.count("b") * 3

    def test_shuffle_does_not_mutate_input(self):
        source = RandomSource(5)
        items = [1, 2, 3, 4, 5]
        shuffled = source.shuffle(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == items

    def test_sample_without_replacement(self):
        source = RandomSource(5)
        drawn = source.sample(range(100), 10)
        assert len(set(drawn)) == 10
