"""Tests for the event queue (repro.sim.events)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, Event, EventQueue


def _noop() -> None:
    pass


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue()
        queue.push(5.0, _noop, label="late")
        queue.push(1.0, _noop, label="early")
        queue.push(3.0, _noop, label="middle")
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["early", "middle", "late"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, _noop, label="normal")
        queue.push(1.0, _noop, priority=PRIORITY_HIGH, label="high")
        queue.push(1.0, _noop, priority=PRIORITY_LOW, label="low")
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["high", "normal", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(2.0, _noop, label=f"event-{index}")
        labels = [queue.pop().label for _ in range(10)]
        assert labels == [f"event-{index}" for index in range(10)]


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop, label="first")
        queue.push(2.0, _noop, label="second")
        queue.cancel(first)
        assert queue.pop().label == "second"

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        assert len(queue) == 2
        queue.cancel(event)
        assert len(queue) == 1

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop)
        queue.push(5.0, _noop)
        queue.cancel(first)
        assert queue.peek_time() == 5.0


class TestEmptyQueue:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None
