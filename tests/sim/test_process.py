"""Tests for generator-based processes (repro.sim.process)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.process import Timeout


class TestProcesses:
    def test_process_sleeps_and_resumes(self, sim):
        log = []

        def worker():
            log.append(("start", sim.now))
            yield Timeout(3.0)
            log.append(("mid", sim.now))
            yield Timeout(2.0)
            log.append(("end", sim.now))

        sim.spawn(worker())
        sim.run()
        assert log == [("start", 0.0), ("mid", 3.0), ("end", 5.0)]

    def test_process_finished_flag(self, sim):
        def worker():
            yield Timeout(1.0)

        process = sim.spawn(worker())
        assert not process.finished
        sim.run()
        assert process.finished

    def test_process_return_value_captured(self, sim):
        def worker():
            yield Timeout(1.0)
            return 42

        process = sim.spawn(worker())
        sim.run()
        assert process.result == 42

    def test_interleaved_processes(self, sim):
        log = []

        def worker(name, delay):
            for _ in range(2):
                yield Timeout(delay)
                log.append((name, sim.now))

        sim.spawn(worker("fast", 1.0))
        sim.spawn(worker("slow", 3.0))
        sim.run()
        assert log == [("fast", 1.0), ("fast", 2.0),
                       ("slow", 3.0), ("slow", 6.0)]

    def test_interrupt_stops_process(self, sim):
        log = []

        def worker():
            yield Timeout(1.0)
            log.append("a")
            yield Timeout(1.0)
            log.append("b")

        process = sim.spawn(worker())
        sim.run(until=1.5)
        process.interrupt()
        sim.run()
        assert log == ["a"]
        assert process.finished

    def test_yielding_non_timeout_raises(self, sim):
        def bad():
            yield 5.0  # not a Timeout

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)
