"""Tests for the trace recorder (repro.sim.trace)."""

from __future__ import annotations

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_and_iterate(self):
        trace = TraceRecorder()
        trace.record(1.0, "gara", "created reservation", handle=1001)
        trace.record(2.0, "broker", "SLA established")
        assert len(trace) == 2
        entries = list(trace)
        assert entries[0].details == {"handle": 1001}
        assert entries[1].category == "broker"

    def test_filter_by_category(self):
        trace = TraceRecorder()
        trace.record(1.0, "gara", "a")
        trace.record(2.0, "broker", "b")
        trace.record(3.0, "gara", "c")
        assert [e.message for e in trace.filter(category="gara")] == ["a", "c"]

    def test_filter_by_substring(self):
        trace = TraceRecorder()
        trace.record(1.0, "x", "reservation created")
        trace.record(2.0, "x", "job launched")
        assert len(trace.filter(contains="reservation")) == 1

    def test_combined_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "gara", "reservation created")
        trace.record(2.0, "broker", "reservation relayed")
        hits = trace.filter(category="broker", contains="reservation")
        assert len(hits) == 1

    def test_categories_in_first_seen_order(self):
        trace = TraceRecorder()
        trace.record(1.0, "b", "x")
        trace.record(2.0, "a", "y")
        trace.record(3.0, "b", "z")
        assert trace.categories() == ["b", "a"]

    def test_render_contains_rows(self):
        trace = TraceRecorder()
        trace.record(1.5, "broker", "offer sent")
        text = trace.render()
        assert "broker" in text
        assert "offer sent" in text

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "x", "y")
        trace.clear()
        assert len(trace) == 0

    def test_entries_returns_copy(self):
        trace = TraceRecorder()
        trace.record(1.0, "x", "y")
        trace.entries.clear()
        assert len(trace) == 1
