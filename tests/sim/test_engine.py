"""Tests for the discrete-event simulator (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


class TestScheduling:
    def test_clock_advances_to_event_times(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(10.0, lambda: fired.append("b"))
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_remaining_events_fire_on_next_run(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append("b"))
        sim.run(until=5.0)
        sim.run()
        assert fired == ["b"]

    def test_clock_lands_on_until_when_idle(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_run_returns_processed_count(self, sim):
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        assert sim.run() == 3


class TestMaxEvents:
    def test_runaway_loop_is_caught(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestStep:
    def test_step_processes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]

    def test_step_on_idle_returns_false(self, sim):
        assert sim.step() is False


class TestTracing:
    def test_labelled_events_are_traced(self):
        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        sim.schedule(1.0, lambda: None, label="my-event")
        sim.schedule(2.0, lambda: None)  # unlabelled: not traced
        sim.run()
        assert len(trace) == 1
        assert trace.entries[0].message == "my-event"
        assert trace.entries[0].time == 1.0
