"""Every example script must run clean — examples are part of the API.

Each example is executed in-process (fast: everything is simulated)
and its stdout is checked for the artifacts it promises.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "<Service-Specific>" in out       # Table 1
        assert "<QoS_Levels>" in out             # Table 3
        assert "Broker activity log" in out      # Figure 6 view
        assert "completed" in out or "expired" in out

    def test_collaborative_visualization(self, capsys):
        out = run_example("collaborative_visualization", capsys)
        assert "Composite SLA established" in out
        assert "three sub-SLAs" in out
        assert "t3" in out                        # the replayed table

    def test_adaptive_degradation(self, capsys):
        out = run_example("adaptive_degradation", capsys)
        assert "congested" in out
        assert "Scenario 3" in out or "Scenario 2" in out \
            or "restore" in out
        assert "net revenue" in out

    def test_provider_revenue(self, capsys):
        out = run_example("provider_revenue", capsys)
        assert "optimizer runs" in out
        assert "greedy rev" in out
        assert "exact rev" in out

    def test_multidomain_grid(self, capsys):
        out = run_example("multidomain_grid", capsys)
        assert "cross-domain guaranteed sessions" in out
        assert "domain1" in out and "domain3" in out
        assert "without a single SLA penalty" in out
