"""Tests for the UDDIe registry (repro.registry)."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError, ServiceNotFound
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.registry.query import PropertyConstraint, ServiceQuery
from repro.registry.uddie import UddieRegistry


@pytest.fixture
def registry():
    registry = UddieRegistry()
    registry.register(
        "render-service", "cardiff",
        capability=QoSSpecification.of(
            range_parameter(Dimension.CPU, 0, 64),
            range_parameter(Dimension.BANDWIDTH_MBPS, 0, 622)),
        properties={"os": "linux", "nodes": 64, "secure": True})
    registry.register(
        "render-service", "soton",
        capability=QoSSpecification.of(
            range_parameter(Dimension.CPU, 0, 8)),
        properties={"os": "irix", "nodes": 8})
    registry.register(
        "storage-service", "cardiff",
        capability=QoSSpecification.of(
            range_parameter(Dimension.DISK_MB, 0, 1_000_000)),
        properties={"protocol": "gridftp"})
    return registry


class TestRegistration:
    def test_register_assigns_ids(self, registry):
        records = registry.records()
        assert len(records) == 3
        assert len({record.record_id for record in records}) == 3

    def test_duplicate_name_provider_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.register("render-service", "cardiff")

    def test_same_name_different_provider_allowed(self, registry):
        providers = {record.provider
                     for record in registry.find(
                         ServiceQuery(name_pattern="render-service"))}
        assert providers == {"cardiff", "soton"}

    def test_unregister(self, registry):
        record = registry.records()[0]
        registry.unregister(record.record_id)
        assert len(registry) == 2
        with pytest.raises(ServiceNotFound):
            registry.get(record.record_id)

    def test_unregister_unknown(self, registry):
        with pytest.raises(ServiceNotFound):
            registry.unregister(999_999)


class TestNameQueries:
    def test_glob_pattern(self, registry):
        assert len(registry.find(ServiceQuery(name_pattern="render*"))) == 2
        assert len(registry.find(ServiceQuery(name_pattern="*-service"))) == 3
        assert registry.find(ServiceQuery(name_pattern="nothing*")) == []


class TestPropertyQueries:
    def test_string_equality(self, registry):
        query = ServiceQuery(constraints=(
            PropertyConstraint("os", "=", "linux"),))
        assert [r.provider for r in registry.find(query)] == ["cardiff"]

    def test_numeric_comparison(self, registry):
        query = ServiceQuery(constraints=(
            PropertyConstraint("nodes", ">=", 32),))
        matches = registry.find(query)
        assert len(matches) == 1
        assert matches[0].properties["nodes"] == 64

    def test_missing_property_fails_constraint(self, registry):
        query = ServiceQuery(constraints=(
            PropertyConstraint("gpu", "=", "yes"),))
        assert registry.find(query) == []

    def test_multiple_constraints_conjunct(self, registry):
        query = ServiceQuery(constraints=(
            PropertyConstraint("os", "=", "linux"),
            PropertyConstraint("nodes", ">", 100),))
        assert registry.find(query) == []

    def test_invalid_operator_rejected(self):
        with pytest.raises(RegistryError):
            PropertyConstraint("x", "~", 1)

    def test_ordering_operator_on_strings_raises(self, registry):
        query = ServiceQuery(constraints=(
            PropertyConstraint("os", ">", "linux"),))
        with pytest.raises(RegistryError):
            registry.find(query)


class TestQoSQueries:
    def test_capability_must_dominate_request(self, registry):
        demanding = ServiceQuery(
            name_pattern="render*",
            qos=QoSSpecification.of(range_parameter(Dimension.CPU, 16, 32)))
        matches = registry.find(demanding)
        assert [record.provider for record in matches] == ["cardiff"]

    def test_modest_request_matches_both(self, registry):
        modest = ServiceQuery(
            name_pattern="render*",
            qos=QoSSpecification.of(range_parameter(Dimension.CPU, 1, 4)))
        assert len(registry.find(modest)) == 2

    def test_dimension_not_advertised_fails(self, registry):
        query = ServiceQuery(
            name_pattern="storage*",
            qos=QoSSpecification.of(range_parameter(Dimension.CPU, 1, 2)))
        assert registry.find(query) == []

    def test_combined_name_property_qos(self, registry):
        query = ServiceQuery(
            name_pattern="render*",
            constraints=(PropertyConstraint("secure", "=", True),),
            qos=QoSSpecification.of(
                range_parameter(Dimension.BANDWIDTH_MBPS, 100, 622)))
        matches = registry.find(query)
        assert len(matches) == 1
        assert matches[0].provider == "cardiff"
