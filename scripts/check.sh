#!/bin/sh
# The tier-1 gate: static analysis (strict — warnings and stale
# baseline entries fail) followed by the test suite.  Both run
# offline with no external linter dependency.
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.analysis (strict) =="
python -m repro.analysis src --strict

echo "== pytest =="
python -m pytest -x -q "$@"

echo "== chaos smoke (fixed seed) =="
# One seeded chaos run of the quickstart flow: exercises fault
# injection, retries, dedup and dead-lettering end to end; the fixed
# seed keeps it deterministic run-to-run.
python -m repro quickstart --chaos 7 > /dev/null
echo "chaos smoke OK (seed 7)"

echo "== telemetry smoke (byte-determinism) =="
# Two fixed-seed telemetry runs must print byte-identical reports:
# span ids, JSONL event stream and metrics snapshot are all functions
# of the seeds alone.
tel_a="$(mktemp)"; tel_b="$(mktemp)"
python -m repro quickstart --telemetry > "$tel_a"
python -m repro quickstart --telemetry > "$tel_b"
diff "$tel_a" "$tel_b" > /dev/null || {
    echo "telemetry report is not deterministic" >&2; exit 1; }
rm -f "$tel_a" "$tel_b"
echo "telemetry smoke OK (deterministic)"

echo "== throughput smoke (batched admission) =="
# Reduced-n run of the batched-admission benchmark: asserts the
# BENCH_throughput.json schema and that batch=64 is at least as fast
# as sequential. The full 10x sweep at n=10k stays manual:
#   python -m pytest benchmarks/bench_throughput.py -s
BENCH_THROUGHPUT_SMOKE=1 python -m pytest \
    benchmarks/bench_throughput.py -q > /dev/null
echo "throughput smoke OK (batch=64 >= sequential)"

echo "== crash-recovery smoke (byte-determinism) =="
# Two fixed-seed crash episodes must print byte-identical reports:
# the crash point, the journal replay and the reconciliation counters
# are all functions of the seed alone.
cr_a="$(mktemp)"; cr_b="$(mktemp)"
python -m repro quickstart --crash 7 > "$cr_a"
python -m repro quickstart --crash 7 > "$cr_b"
diff "$cr_a" "$cr_b" > /dev/null || {
    echo "crash-recovery report is not deterministic" >&2; exit 1; }
rm -f "$cr_a" "$cr_b"
echo "crash-recovery smoke OK (deterministic)"

echo "== workload-atlas smoke (reduced sweep) =="
# Two-scenario, two-reserve-point pass over the atlas benchmark:
# asserts the BENCH_workload_atlas.json schema and that no guaranteed
# SLA violates absent injected failures. The full five-point sweep
# over all six families stays manual:
#   python -m pytest benchmarks/bench_workload_atlas.py -s
BENCH_ATLAS_SMOKE=1 python -m pytest \
    benchmarks/bench_workload_atlas.py -q > /dev/null
echo "workload-atlas smoke OK (invariants hold)"

echo "== obs smoke (flight-recorder byte-determinism) =="
# Two fixed-seed replays of the same atlas scenario must explain every
# admission verdict byte-identically: decision ids, span stamps and
# journal LSNs are all functions of the seed alone.
obs_a="$(mktemp)"; obs_b="$(mktemp)"
python -m repro obs why all > "$obs_a"
python -m repro obs why all > "$obs_b"
diff "$obs_a" "$obs_b" > /dev/null || {
    echo "flight-recorder report is not deterministic" >&2; exit 1; }
rm -f "$obs_a" "$obs_b"
echo "obs smoke OK (deterministic)"

echo "== obs-overhead smoke (guard discipline) =="
# Reduced-n run of the provenance-overhead benchmark: asserts the
# BENCH_obs.json schema and that the disabled path leaves the decision
# log uninstalled. The full 5% gate at n=10k stays manual:
#   python -m pytest benchmarks/bench_obs_overhead.py -s
BENCH_OBS_SMOKE=1 python -m pytest \
    benchmarks/bench_obs_overhead.py -q > /dev/null
echo "obs-overhead smoke OK (guards free when disabled)"

echo "== federation smoke (reduced scaling run) =="
# Reduced-n run of the federation benchmark: asserts the
# BENCH_federation.json schema and exercises the crashed-home reroute
# path at N=2 and N=4. The full run at n=2048 stays manual:
#   python -m pytest benchmarks/bench_federation.py -s
BENCH_FEDERATION_SMOKE=1 python -m pytest \
    benchmarks/bench_federation.py -q > /dev/null
echo "federation smoke OK (reroute path at N=2/4)"

echo "== bench trend (headline regression gate) =="
# Every BENCH_*.json headline metric vs the recorded baseline in
# benchmarks/BENCH_trend.json; >20% regression in the bad direction
# fails. Refresh after intentional regeneration with:
#   python scripts/bench_trend.py --update
python scripts/bench_trend.py --check
echo "bench trend OK (within tolerance)"
