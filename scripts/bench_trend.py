#!/usr/bin/env python
"""Benchmark trend tracking across the BENCH_*.json artifact set.

Every benchmark writes a machine-readable artifact listed in
``benchmarks/artifacts_latest.txt``; this script extracts one headline
metric per artifact into ``benchmarks/BENCH_trend.json`` so regressions
are visible as a diff and enforceable as a gate:

* ``--update`` — re-extract every headline from the artifacts on disk
  and rewrite the trend baseline (run after intentionally regenerating
  benchmarks);
* ``--check`` — re-extract and compare against the recorded baseline,
  exiting non-zero when any metric regressed more than the tolerance
  (default 20%) in its bad direction.  Improvements never fail.

An artifact listed in the manifest but absent on disk fails ``--check``
(the artifact set went stale); a metric present on disk but missing
from the baseline is reported and passes (a new benchmark — refresh
the baseline with ``--update``).

Stdlib-only on purpose: it runs inside ``scripts/check.sh`` before the
package is even imported.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable, Dict, Tuple

REPO = pathlib.Path(__file__).resolve().parents[1]
BENCH_DIR = REPO / "benchmarks"
MANIFEST = BENCH_DIR / "artifacts_latest.txt"
TREND = BENCH_DIR / "BENCH_trend.json"
DEFAULT_TOLERANCE = 0.20


def _chaos_completion(data: "Dict[str, Any]") -> float:
    """Completion rate at the harshest drop probability measured."""
    worst = max(data["points"], key=lambda point: point["drop"])
    return float(worst["completion_rate"])


def _atlas_revenue(data: "Dict[str, Any]") -> float:
    """Best diurnal-day revenue across the reserve sweep."""
    sweep = data["reserve_sweep"]["diurnal_day"]
    return max(float(entry["revenue"]) for entry in sweep.values())


def _throughput_batch64(data: "Dict[str, Any]") -> float:
    for entry in data["batches"]:
        if entry["batch_size"] == 64:
            return float(entry["admissions_per_s"])
    raise KeyError("no batch=64 entry in BENCH_throughput.json")


#: artifact name -> (metric label, extractor, direction).  Direction
#: "higher" means larger is better (a drop is a regression);
#: "lower" means smaller is better (a rise is a regression).
HEADLINES: "Dict[str, Tuple[str, Callable[[Dict[str, Any]], float], str]]" = {
    "BENCH_chaos.json": (
        "completion_rate_at_max_drop", _chaos_completion, "higher"),
    "BENCH_federation.json": (
        "fed2_admissions_per_s",
        lambda data: float(data["domains"]["2"]["admissions_per_s"]),
        "higher"),
    "BENCH_obs.json": (
        "disabled_admissions_per_s",
        lambda data: float(data["disabled"]["admissions_per_s"]),
        "higher"),
    "BENCH_recovery.json": (
        "memory_journal_overhead_fraction",
        lambda data: float(data["memory_journal_overhead_fraction"]),
        "lower"),
    "BENCH_slot_table.json": (
        "indexed_create_s_n10000",
        lambda data: float(data["sizes"]["10000"]["indexed"]["create_s"]),
        "lower"),
    "BENCH_telemetry.json": (
        "guard_per_op_s",
        lambda data: float(data["guard_per_op_s"]),
        "lower"),
    "BENCH_throughput.json": (
        "batch64_admissions_per_s", _throughput_batch64, "higher"),
    "BENCH_workload_atlas.json": (
        "diurnal_day_best_revenue", _atlas_revenue, "higher"),
}


def manifest_names() -> "list[str]":
    names = []
    for line in MANIFEST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            names.append(line)
    return sorted(names)


def extract() -> "Dict[str, Dict[str, Any]]":
    """Headline metrics for every manifest artifact present on disk."""
    trend: "Dict[str, Dict[str, Any]]" = {}
    for name in manifest_names():
        if name == TREND.name:
            continue
        path = BENCH_DIR / name
        if not path.exists():
            trend[name] = {"error": "artifact missing"}
            continue
        if name not in HEADLINES:
            trend[name] = {"error": "no headline extractor"}
            continue
        metric, extractor, direction = HEADLINES[name]
        data = json.loads(path.read_text())
        trend[name] = {
            "metric": metric,
            "value": extractor(data),
            "direction": direction,
        }
    return trend


def cmd_update() -> int:
    trend = extract()
    problems = [name for name, entry in trend.items() if "error" in entry]
    if problems:
        for name in problems:
            print(f"bench-trend: cannot update — {name}: "
                  f"{trend[name]['error']}", file=sys.stderr)
        return 1
    TREND.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")
    for name in sorted(trend):
        entry = trend[name]
        print(f"{name}: {entry['metric']} = {entry['value']:g} "
              f"({entry['direction']} is better)")
    print(f"wrote {TREND.relative_to(REPO)}")
    return 0


def cmd_check(tolerance: float) -> int:
    if not TREND.exists():
        print(f"bench-trend: no baseline at {TREND.relative_to(REPO)}; "
              f"run 'python scripts/bench_trend.py --update' after "
              f"regenerating the benchmarks", file=sys.stderr)
        return 1
    baseline = json.loads(TREND.read_text())
    current = extract()
    failures = []
    for name in sorted(current):
        entry = current[name]
        if "error" in entry:
            failures.append(f"{name}: {entry['error']}")
            continue
        base = baseline.get(name)
        if base is None or "value" not in base:
            print(f"{name}: {entry['metric']} = {entry['value']:g} "
                  f"(new — not in baseline; refresh with --update)")
            continue
        base_value = float(base["value"])
        value = float(entry["value"])
        if base_value == 0.0:
            delta = 0.0
        elif entry["direction"] == "higher":
            delta = (base_value - value) / abs(base_value)
        else:
            delta = (value - base_value) / abs(base_value)
        verdict = "REGRESSED" if delta > tolerance else "ok"
        print(f"{name}: {entry['metric']} = {value:g} "
              f"(baseline {base_value:g}, "
              f"{'worse' if delta > 0 else 'better/equal'} by "
              f"{abs(delta):.1%}, tolerance {tolerance:.0%}) {verdict}")
        if delta > tolerance:
            failures.append(
                f"{name}: {entry['metric']} regressed {delta:.1%} "
                f"(> {tolerance:.0%}): {base_value:g} -> {value:g}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name}: in baseline but no longer in the manifest")
    if failures:
        for failure in failures:
            print(f"bench-trend: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="extract / gate headline benchmark metrics")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--update", action="store_true",
                       help="rewrite benchmarks/BENCH_trend.json from "
                            "the artifacts on disk")
    group.add_argument("--check", action="store_true",
                       help="fail when any headline regressed past the "
                            "tolerance vs the recorded baseline")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression "
                             "(default: 0.20)")
    args = parser.parse_args(argv)
    if args.update:
        return cmd_update()
    return cmd_check(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
