#!/usr/bin/env python
"""The paper's motivating application: collaborative simulation +
visualization across three sites (Section 5.6's experiment).

Two groups of scientists run a simulation on the SGI machine at
site A; the input database lives at site B, and the remote group sits
at site C. The composite SLA has three sub-SLAs:

* SLA_n1 — 622 Mbps from site B to site A (data feed),
* SLA_n2 — 45 Mbps from site C to site A (visualization stream),
* SLA_3  — 10 processor nodes, 2 GB memory, 15 GB disk at site A.

The script co-allocates all three, replays the t1..t5 events of the
worked example — including the 3-node failure at t3 that the adaptive
capacity absorbs — and prints the resulting allocation timeline.

Run with::

    python examples/collaborative_visualization.py
"""

from __future__ import annotations

from repro.core.testbed import build_testbed
from repro.experiments.example56 import format_example56, run_example56
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.resources.failures import FailureSchedule
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound

#: The example's five measurement instants.
T1, T2, T3, T4, T5 = 10.0, 20.0, 30.0, 40.0, 50.0


def main() -> None:
    testbed = build_testbed(link_mbps=622.0)
    broker = testbed.broker
    sim = testbed.sim

    # --- composite SLA: two network sub-SLAs + one compute sub-SLA ---
    data_feed = ServiceRequest(
        client="scientists-siteB", service_name="data-transfer-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.BANDWIDTH_MBPS, 622)),
        start=0.0, end=T5,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 622.0,
                              parse_bound("LessThan 10%")))
    # The visualization stream's QoS comes from *application-level*
    # metrics via the Figure 3 QoS Mapping function: 9 remote
    # scientists at site C each need a 5 Mbps stream slice -> 45 Mbps.
    from repro.qos.mapping import COLLABORATIVE_VISUALIZATION
    viz_spec = COLLABORATIVE_VISUALIZATION.map_requirements(
        {"participants": 9})
    viz_stream = ServiceRequest(
        client="scientists-siteC", service_name="visualization-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            viz_spec.require(Dimension.BANDWIDTH_MBPS)),
        start=0.0, end=T5,
        network=NetworkDemand("10.10.10.3", "192.200.168.33", 45.0))
    simulation = ServiceRequest(
        client="scientists-siteA", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.CPU, 10),
            exact_parameter(Dimension.MEMORY_MB, 2048),
            exact_parameter(Dimension.DISK_MB, 15360)),
        start=0.0, end=T5)

    outcomes = [broker.request_service(request)
                for request in (data_feed, viz_stream, simulation)]
    for outcome in outcomes:
        assert outcome.accepted, outcome.reason
    print("Composite SLA established — three sub-SLAs:")
    for outcome in outcomes:
        sla = outcome.sla
        print(f"  SLA {sla.sla_id}: {sla.service_name} for "
              f"{sla.client!r} (rate {sla.price_rate:g})")

    # --- the t3 failure / t4 recovery of the worked example ----------
    FailureSchedule.of((T3, -3), (T3 + 5.0, 3)).apply(sim, testbed.machine)

    # A second guaranteed user (4 nodes) plus best-effort pressure, as
    # in the example's measurements.
    other = broker.request_service(ServiceRequest(
        client="local-users", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(exact_parameter(Dimension.CPU, 4)),
        start=0.0, end=T5 + 10.0))
    assert other.accepted
    broker.request_best_effort("students", 12, duration=T5 + 10.0)

    print("\nAllocation over the experiment window:")
    header = (f"{'t':>6} {'eff Cg':>7} {'G served':>9} {'BE served':>10} "
              f"{'adapt':>6} {'util':>6}")
    print(header)
    print("-" * len(header))
    for instant in (T1, T2, T3 + 1.0, T4 + 5.0, T5 + 5.0):
        sim.run(until=instant)
        snapshot = testbed.partition.snapshot()
        print(f"{sim.now:>6g} {snapshot['eff_g']:>7g} "
              f"{snapshot['guaranteed_served']:>9g} "
              f"{snapshot['best_effort_served']:>10g} "
              f"{snapshot['adapt_transfer']:>6g} "
              f"{snapshot['utilization']:>6.2f}")

    sim.run(until=T5 + 20.0)
    print(f"\nProvider revenue: "
          f"{broker.ledger.provider_net(sim.now):.1f} "
          f"(penalties {broker.ledger.total_penalties():.1f})")

    # --- the abstract replay of the Section 5.6 table -----------------
    print("\nSection 5.6 timeline replayed on the bare partition:")
    print(format_example56(run_example56()))


if __name__ == "__main__":
    main()
