#!/usr/bin/env python
"""Quickstart: one QoS session end to end.

Builds the paper's Figure 5 testbed (26 grid nodes partitioned
Cg=15 / Ca=6 / Cb=5), submits a guaranteed service request with a
network demand, accepts the SLA offer, runs an explicit SLA
conformance test (the Table 3 reply), and prints the broker activity
log — the reproduction of the Figure 6 screenshot.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound
from repro.xmlmsg import codec


def main() -> None:
    testbed = build_testbed()
    broker = testbed.broker

    # --- the client's QoS requirements (Table 1's numbers) -----------
    specification = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 64),
    )
    request = ServiceRequest(
        client="user1",
        service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification,
        start=0.0, end=100.0,
        network=NetworkDemand(
            source_ip="135.200.50.101", dest_ip="192.200.168.33",
            bandwidth_mbps=10.0,
            packet_loss_bound=parse_bound("LessThan 10%")),
    )

    # --- discovery, negotiation, SLA establishment, allocation -------
    outcome = broker.request_service(request)
    assert outcome.accepted, outcome.reason
    sla = outcome.sla
    print("=" * 70)
    print(f"SLA {sla.sla_id} established for {sla.client!r} at rate "
          f"{sla.price_rate:g}")
    print("=" * 70)

    # --- the SLA portion relayed to the resource managers (Table 1) --
    print("\nSLA portion relayed to the RMs (Table 1):\n")
    print(codec.render(codec.encode_service_specific(sla)))

    # --- explicit SLA conformance test (Table 3) ----------------------
    testbed.sim.run(until=10.0)
    print("\nSLA conformance-test reply (Table 3):\n")
    print(codec.render(broker.verifier.conformance_reply_xml(sla.sla_id)))

    # --- run the session to completion --------------------------------
    testbed.sim.run(until=120.0)
    print(f"\nSession finished: status={sla.status.value}, provider "
          f"revenue {broker.ledger.provider_net(testbed.sim.now):.1f}")

    # --- the broker activity log (the Figure 6 screenshot) ------------
    print("\nBroker activity log (Figure 6 view):")
    print("-" * 70)
    print(testbed.trace.render())


if __name__ == "__main__":
    main()
