#!/usr/bin/env python
"""The Figure 1 architecture under turbulence.

Three administrative domains, each with its own AQoS broker, compute
RM and NRM, joined by inter-domain links. Cross-domain sessions
co-allocate bandwidth through the inter-domain coordinator while node
failures and link congestion strike at random — and every broker's
adaptive partition keeps its guaranteed sessions whole.

Run with::

    python examples/multidomain_grid.py
"""

from __future__ import annotations

from repro.core.testbed import build_multidomain
from repro.experiments.reporting import format_table
from repro.network.congestion import CongestionInjector
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.resources.failures import FailureInjector
from repro.sim.random import RandomSource
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest

HORIZON = 400.0


def main() -> None:
    world = build_multidomain(domains=3)
    sim = world.sim
    rng = RandomSource(2026)

    # --- cross-domain guaranteed sessions ------------------------------
    established = []
    for index in range(6):
        source_domain = 1 + index % 3
        dest_domain = 1 + (index + 1) % 3
        broker = world.brokers[f"domain{source_domain}"]
        outcome = broker.request_service(ServiceRequest(
            client=f"org-{index}",
            service_name="simulation-service",
            service_class=ServiceClass.GUARANTEED,
            specification=QoSSpecification.of(
                exact_parameter(Dimension.CPU, 3),
                exact_parameter(Dimension.BANDWIDTH_MBPS, 60)),
            start=sim.now, end=HORIZON,
            network=NetworkDemand(f"10.{source_domain}.0.1",
                                  f"10.{dest_domain}.0.1", 60.0)))
        if outcome.accepted:
            established.append((broker, outcome.sla))
    print(f"{len(established)} cross-domain guaranteed sessions "
          f"established across 3 domains")

    # --- turbulence: node failures + link congestion -------------------
    for domain, machine in world.machines.items():
        FailureInjector(sim, machine, rng.stream(f"fail-{domain}"),
                        mtbf=60.0, mttr=25.0,
                        max_concurrent_failures=4).start()
    for domain in world.brokers:
        nrm = world.coordinator.nrm_for(domain)
        try:
            CongestionInjector(sim, nrm, rng=rng.stream(f"cong-{domain}"),
                               mtbc=80.0, mean_duration=25.0,
                               severity=(0.5, 0.9)).start()
        except ValueError:
            pass  # the last domain owns no links

    sim.run(until=HORIZON + 10.0)

    # --- outcome per domain --------------------------------------------
    rows = []
    for domain, broker in sorted(world.brokers.items()):
        snapshot = broker.snapshot()
        rows.append([
            domain,
            int(snapshot["accepted"]),
            int(snapshot["completed"] + snapshot["terminated"]
                + broker.stats.expired),
            round(snapshot["penalties"], 1),
            round(snapshot["net_revenue"], 1),
            broker.scenarios.stats.restorations,
        ])
    print()
    print(format_table(
        ["domain", "accepted", "closed", "penalties", "net revenue",
         "restorations"],
        rows, title="Per-domain outcome after the turbulent run"))

    whole = sum(1 for broker, sla in established
                if broker.ledger.account(sla.sla_id).total_penalties()
                == 0.0)
    print(f"\n{whole}/{len(established)} guaranteed sessions finished "
          f"without a single SLA penalty.")


if __name__ == "__main__":
    main()
