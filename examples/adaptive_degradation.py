#!/usr/bin/env python
"""Scenario 3 in action: QoS degradation and adaptation.

A controlled-load visualization session shares a link with a
guaranteed data feed. Link congestion strikes; the NRM notifies
SLA-Verif, the broker's Scenario 3 handler degrades the elastic
session to its pre-agreed lower quality, and when the congestion
clears, a completed session triggers Scenario 2 restoration.

Run with::

    python examples/adaptive_degradation.py
"""

from __future__ import annotations

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, NetworkDemand
from repro.sla.negotiation import ServiceRequest


def main() -> None:
    testbed = build_testbed()
    broker = testbed.broker
    sim = testbed.sim

    # An elastic (controlled-load) visualization stream: anywhere
    # between 100 and 400 Mbps is acceptable.
    elastic = broker.request_service(ServiceRequest(
        client="viz-team", service_name="visualization-service",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=QoSSpecification.of(
            range_parameter(Dimension.CPU, 2, 4),
            range_parameter(Dimension.BANDWIDTH_MBPS, 100, 400)),
        start=0.0, end=300.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 400.0),
        adaptation=AdaptationOptions(accept_degradation=True,
                                     accept_promotion=True)))
    assert elastic.accepted, elastic.reason

    # A short guaranteed transfer on the same link.
    rigid = broker.request_service(ServiceRequest(
        client="data-team", service_name="data-transfer-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.BANDWIDTH_MBPS, 200)),
        start=0.0, end=100.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 200.0)))
    assert rigid.accepted, rigid.reason

    def show(label: str) -> None:
        sla = elastic.sla
        print(f"[t={sim.now:6.1f}] {label}")
        print(f"           elastic delivered point: "
              f"{ {d.value: v for d, v in sla.delivered_point.items()} }"
              f" (rate {broker.ledger.account(sla.sla_id).current_rate:g})")

    show("both sessions established")

    # --- congestion strikes -------------------------------------------
    sim.run(until=50.0)
    print(f"\n[t={sim.now:6.1f}] !! link siteA-siteB congested to 40%")
    testbed.nrm.set_congestion("siteA", "siteB", 0.4)
    show("after the NRM degradation notice (Scenario 3)")
    assert elastic.sla.is_degraded()

    # --- congestion clears; the rigid session completes at t=100 ------
    sim.run(until=90.0)
    print(f"\n[t={sim.now:6.1f}] congestion cleared")
    testbed.nrm.set_congestion("siteA", "siteB", 1.0)
    sim.run(until=110.0)
    show("after the guaranteed transfer completed (Scenario 2 restore)")
    assert not elastic.sla.is_degraded()

    sim.run(until=320.0)
    print("\nFinal accounting (per-session invoices):")
    from repro.core.accounting import render_invoice
    for account in broker.ledger.accounts():
        sla = broker.repository.get(account.sla_id)
        print()
        print(render_invoice(account, now=sim.now, client=sla.client,
                             service=sla.service_name))
    print(f"\nprovider net revenue: "
          f"{broker.ledger.provider_net(sim.now):.1f}")
    print(f"Scenario statistics: {broker.scenarios.stats}")


if __name__ == "__main__":
    main()
