#!/usr/bin/env python
"""The Section 5.3 optimization heuristic under churn.

A provider runs many controlled-load sessions whose SLAs allow a range
of qualities. As sessions come and go, the periodically-executed
optimizer re-selects each session's delivered quality to maximize
revenue within capacity — and the script compares the greedy heuristic
against the exact reference solver on the same instances.

Run with::

    python examples/provider_revenue.py
"""

from __future__ import annotations

from repro.core.optimizer import candidates_for, exact_optimize, greedy_optimize
from repro.core.testbed import build_testbed
from repro.experiments.reporting import format_table
from repro.qos.classes import ServiceClass
from repro.qos.cost import PricingPolicy
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector
from repro.sim.random import RandomSource
from repro.sla.document import AdaptationOptions
from repro.sla.negotiation import ServiceRequest


def churn_demo() -> None:
    """Full-stack: periodic optimizer keeps sessions as high as fits."""
    testbed = build_testbed(optimizer_interval=10.0)
    broker = testbed.broker
    sim = testbed.sim
    rng = RandomSource(7)

    def spawn(index: int) -> None:
        floor = rng.randint(1, 3)
        best = floor + rng.randint(1, 4)
        duration = rng.uniform(40.0, 120.0)
        broker.request_service(ServiceRequest(
            client=f"tenant-{index}", service_name="simulation-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=QoSSpecification.of(
                range_parameter(Dimension.CPU, floor, best)),
            start=sim.now, end=sim.now + duration,
            adaptation=AdaptationOptions(accept_degradation=True,
                                         accept_promotion=True)))

    for index in range(8):
        sim.schedule_at(index * 15.0, lambda i=index: spawn(i))
    sim.run(until=250.0)

    print("Full-stack churn run (optimizer every 10 time units):")
    print(f"  requests: {broker.stats.requests}, accepted: "
          f"{broker.stats.accepted}, optimizer runs: "
          f"{broker.stats.optimizer_runs}")
    print(f"  provider net revenue: "
          f"{broker.ledger.provider_net(sim.now):.1f}")


def heuristic_vs_exact() -> None:
    """Standalone: the greedy heuristic against the exact solver."""
    policy = PricingPolicy()
    rng = RandomSource(13)
    rows = []
    for instance in range(6):
        services = {}
        for index in range(rng.randint(4, 8)):
            floor = rng.randint(1, 3)
            best = floor + rng.randint(1, 6)
            key = f"svc-{index}"
            spec = QoSSpecification.of(
                range_parameter(Dimension.CPU, floor, best))
            services[key] = candidates_for(
                key, spec, ServiceClass.CONTROLLED_LOAD, policy, levels=4)
        capacity = ResourceVector(cpu=float(rng.randint(10, 25)))
        greedy = greedy_optimize(services, capacity)
        exact = exact_optimize(services, capacity)
        gap = (greedy.revenue / exact.revenue * 100.0
               if exact.revenue > 0 else 100.0)
        rows.append([instance, len(services), capacity.cpu,
                     round(greedy.revenue, 2), round(exact.revenue, 2),
                     f"{gap:.1f}%", greedy.explored, exact.explored])
    print()
    print(format_table(
        ["inst", "services", "cpu cap", "greedy rev", "exact rev",
         "greedy/exact", "greedy steps", "B&B nodes"],
        rows, title="Heuristic quality (Section 5.3 ablation)"))


def main() -> None:
    churn_demo()
    heuristic_vs_exact()


if __name__ == "__main__":
    main()
