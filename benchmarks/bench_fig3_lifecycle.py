"""F3 — Figure 3: the QoS management phase machine.

Regenerates the phase → function mapping of Figure 3 and benchmarks
driving a session through all three phases with every legal function.
"""

from __future__ import annotations

import pytest

from repro.sla.lifecycle import (
    PHASE_FUNCTIONS,
    Phase,
    QoSFunction,
    QoSSession,
)

from .conftest import report


def test_fig3_phase_function_table():
    lines = []
    for phase in (Phase.ESTABLISHMENT, Phase.ACTIVE, Phase.CLEARING):
        functions = ", ".join(f.value for f in PHASE_FUNCTIONS[phase])
        lines.append(f"  {phase.value:<14} {functions}")
    report("F3 — Figure 3: QoS management functions per phase",
           "\n".join(lines))
    assert QoSFunction.ADAPTATION in PHASE_FUNCTIONS[Phase.ACTIVE]
    assert QoSFunction.TERMINATION in PHASE_FUNCTIONS[Phase.CLEARING]


def drive_full_lifecycle(session_id: int) -> QoSSession:
    session = QoSSession(session_id=session_id)
    for function in PHASE_FUNCTIONS[Phase.ESTABLISHMENT]:
        session.perform(function, time=0.0)
    session.enter_active()
    for function in PHASE_FUNCTIONS[Phase.ACTIVE]:
        session.perform(function, time=1.0)
    session.enter_clearing("completion")
    for function in PHASE_FUNCTIONS[Phase.CLEARING]:
        session.perform(function, time=2.0)
    session.close()
    return session


def test_fig3_lifecycle_benchmark(benchmark):
    counter = [0]

    def run():
        counter[0] += 1
        return drive_full_lifecycle(counter[0])

    session = benchmark(run)
    assert session.phase is Phase.CLOSED
    assert len(session.history) == sum(
        len(functions) for functions in PHASE_FUNCTIONS.values())
