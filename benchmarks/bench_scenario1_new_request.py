"""S1 — Scenario 1: new service requests under pressure.

Synthetic evaluation of the paper's first adaptation scenario: as
offered load rises, the broker squeezes degradable sessions (and
terminates consenting ones) to admit new guaranteed work. The
regenerated series reports, per load level, how many requests were
admitted with and without Scenario 1 adaptation.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.experiments.reporting import format_table
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sim.random import RandomSource
from repro.sla.document import AdaptationOptions
from repro.sla.negotiation import ServiceRequest

from .conftest import report


def offered_stream(count: int, seed: int):
    """A mix of stretchy controlled-load and rigid guaranteed requests."""
    rng = RandomSource(seed)
    requests = []
    for index in range(count):
        if rng.probability(0.5):
            floor = rng.randint(1, 2)
            best = floor + rng.randint(2, 6)
            spec = QoSSpecification.of(
                range_parameter(Dimension.CPU, floor, best))
            requests.append(ServiceRequest(
                client=f"cl-{index}", service_name="simulation-service",
                service_class=ServiceClass.CONTROLLED_LOAD,
                specification=spec, start=0.0, end=1000.0,
                adaptation=AdaptationOptions(
                    accept_degradation=True,
                    accept_termination=rng.probability(0.3))))
        else:
            cpu = rng.randint(2, 5)
            spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
            requests.append(ServiceRequest(
                client=f"g-{index}", service_name="simulation-service",
                service_class=ServiceClass.GUARANTEED,
                specification=spec, start=0.0, end=1000.0))
    return requests


def admit_all(requests, *, scenario1: bool):
    testbed = build_testbed()
    broker = testbed.broker
    if not scenario1:
        # Disable the handler: requests see only raw capacity.
        broker.scenarios.free_capacity_for = lambda *args: False
    accepted = sum(1 for request in requests
                   if broker.request_service(request).accepted)
    return accepted, broker.scenarios.stats


def test_scenario1_series():
    rows = []
    for count in (6, 10, 14, 18):
        requests = offered_stream(count, seed=count)
        with_adaptation, stats = admit_all(requests, scenario1=True)
        without_adaptation, _ = admit_all(requests, scenario1=False)
        rows.append([count, without_adaptation, with_adaptation,
                     stats.squeezes, stats.terminations_for_compensation])
    report("S1 — Scenario 1: admissions with vs without adaptation",
           format_table(["offered", "admitted (no adapt)",
                         "admitted (adapt)", "squeezes", "terminations"],
                        rows))
    # Adaptation never admits fewer, and helps somewhere in the sweep.
    assert all(row[2] >= row[1] for row in rows)
    assert any(row[2] > row[1] for row in rows)


def test_scenario1_burst_benchmark(benchmark):
    requests = offered_stream(14, seed=14)

    def run():
        return admit_all(requests, scenario1=True)[0]

    admitted = benchmark(run)
    assert admitted >= 1
