"""X2 — ablation: the Section 5.3 heuristic vs the exact solver.

The paper proposes a heuristic for the revenue-maximizing quality
selection; this experiment measures (a) how close the greedy heuristic
gets to the exact branch-and-bound optimum, and (b) how the two scale
with the number of controlled-load services.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import (
    candidates_for,
    exact_optimize,
    greedy_optimize,
)
from repro.experiments.reporting import format_table
from repro.qos.classes import ServiceClass
from repro.qos.cost import PricingPolicy
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.qos.vector import ResourceVector
from repro.sim.random import RandomSource

from .conftest import report


def random_instance(service_count: int, seed: int):
    rng = RandomSource(seed)
    policy = PricingPolicy()
    services = {}
    for index in range(service_count):
        floor = rng.randint(1, 3)
        best = floor + rng.randint(1, 6)
        key = f"svc-{index:02d}"
        spec = QoSSpecification.of(
            range_parameter(Dimension.CPU, floor, best),
            range_parameter(Dimension.BANDWIDTH_MBPS,
                            10 * floor, 10 * best))
        services[key] = candidates_for(key, spec,
                                       ServiceClass.CONTROLLED_LOAD,
                                       policy, levels=4)
    capacity = ResourceVector(cpu=float(service_count * 2 + 4),
                              bandwidth_mbps=float(service_count * 25))
    return services, capacity


def test_x2_heuristic_quality_table():
    rows = []
    ratios = []
    for service_count in (3, 5, 7, 9):
        for seed in (1, 2, 3):
            services, capacity = random_instance(service_count, seed)
            greedy = greedy_optimize(services, capacity)
            exact = exact_optimize(services, capacity)
            ratio = (greedy.revenue / exact.revenue
                     if exact.revenue > 0 else 1.0)
            ratios.append(ratio)
            rows.append([service_count, seed,
                         round(greedy.revenue, 2),
                         round(exact.revenue, 2),
                         f"{ratio * 100:.1f}%",
                         greedy.explored, exact.explored])
    report("X2 — optimizer ablation: greedy heuristic vs exact B&B",
           format_table(["services", "seed", "greedy rev", "exact rev",
                         "ratio", "greedy steps", "B&B nodes"], rows))
    # The heuristic is near-optimal on instances of the paper's scale
    # (observed: 89-100% per instance, ~97% on average).
    assert min(ratios) >= 0.85
    assert sum(ratios) / len(ratios) >= 0.95


def test_x2_greedy_benchmark(benchmark):
    services, capacity = random_instance(9, seed=1)
    result = benchmark(greedy_optimize, services, capacity)
    assert result.feasible


def test_x2_exact_benchmark(benchmark):
    services, capacity = random_instance(9, seed=1)
    result = benchmark(exact_optimize, services, capacity)
    assert result.feasible


def test_x2_greedy_scaling_benchmark(benchmark):
    """Greedy cost on a 40-service instance (beyond exact's reach)."""
    services, capacity = random_instance(40, seed=5)
    result = benchmark(greedy_optimize, services, capacity)
    assert result.feasible
