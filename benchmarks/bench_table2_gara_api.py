"""T2 — Table 2: the GARA API primitives.

Exercises the paper's primitive set —
``reservation_create / bind / unbind / cancel`` (plus commit and
modify) — and benchmarks the full reservation lifecycle against the
slot table.
"""

from __future__ import annotations

import pytest

from repro.gara.api import GaraApi
from repro.gara.slot_table import SlotTable
from repro.qos.vector import ResourceVector
from repro.rsl.builder import reservation_rsl
from repro.sim.engine import Simulator

from .conftest import report


def test_table2_primitives_inventory():
    primitives = [name for name in dir(GaraApi)
                  if name.startswith("reservation_")]
    report("T2 — Table 2: GARA API primitives",
           "\n".join(f"  globus_gara_{name}(...)"
                     for name in sorted(primitives)))
    for required in ("reservation_create", "reservation_bind",
                     "reservation_unbind", "reservation_cancel"):
        assert required in primitives


def test_table2_lifecycle_benchmark(benchmark):
    sim = Simulator()
    gara = GaraApi(sim, SlotTable(ResourceVector(cpu=1000)),
                   confirm_timeout=1e9)
    rsl = reservation_rsl(ResourceVector(cpu=4), 0.0, 1e8)

    def lifecycle():
        handle = gara.reservation_create(rsl)
        gara.reservation_commit(handle)
        gara.reservation_bind(handle, pid=1234)
        gara.reservation_unbind(handle)
        gara.reservation_cancel(handle)
        return handle

    handle = benchmark(lifecycle)
    assert not gara.reservation_status(handle).state.is_live


def test_table2_create_under_load_benchmark(benchmark):
    """Creation cost with many live bookings in the table."""
    sim = Simulator()
    gara = GaraApi(sim, SlotTable(ResourceVector(cpu=100_000)),
                   confirm_timeout=1e9)
    for index in range(200):
        gara.reservation_create(
            reservation_rsl(ResourceVector(cpu=2),
                            float(index), float(index + 50)))
    rsl = reservation_rsl(ResourceVector(cpu=2), 10.0, 60.0)

    def create_and_cancel():
        handle = gara.reservation_create(rsl)
        gara.reservation_cancel(handle)

    benchmark(create_and_cancel)
