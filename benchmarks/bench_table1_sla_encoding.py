"""T1 — Table 1: the SLA portion relayed to the resource managers.

Regenerates the paper's ``<Service-Specific>`` XML (4 CPU, 64MB,
10 Mbps, ``LessThan 10%``) from an established SLA document and
benchmarks the encode/decode round trip.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand, ServiceSLA
from repro.units import parse_bound
from repro.xmlmsg import codec

from .conftest import report


def paper_sla() -> ServiceSLA:
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 64),
    )
    return ServiceSLA(
        sla_id=1055, client="user1", service_name="simulation",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        agreed_point=spec.best_point(), start=0.0, end=100.0,
        network=NetworkDemand("192.200.168.33", "135.200.50.101", 10.0,
                              parse_bound("LessThan 10%")))


def test_table1_artifact_matches_paper():
    text = codec.render(codec.encode_service_specific(paper_sla()))
    report("T1 — Table 1: SLA portion relayed to the RMs", text)
    for fragment in ("<CPU-QoS>4 CPU</CPU-QoS>",
                     "<Memory-QoS>64MB</Memory-QoS>",
                     "<Source_IP>192.200.168.33</Source_IP>",
                     "<Dest_IP>135.200.50.101</Dest_IP>",
                     "<Bandwidth>10 Mbps</Bandwidth>",
                     "<Packet_Loss>LessThan 10%</Packet_Loss>"):
        assert fragment in text


def test_table1_roundtrip_benchmark(benchmark):
    sla = paper_sla()

    def round_trip():
        node = codec.encode_service_specific(sla)
        return codec.decode_service_specific(node)

    sla_id, point, network = benchmark(round_trip)
    assert sla_id == 1055
    assert point[Dimension.CPU] == 4.0
    assert network.bandwidth_mbps == 10.0
