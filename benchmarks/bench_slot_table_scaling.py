"""Slot-table scaling: sweep-line profile index vs naive event-point scan.

Measures create (admission-checked reserve + release) and point/window
query latency at n ∈ {100, 1k, 10k} live bookings for both the indexed
:class:`SlotTable` and the seed's :class:`NaiveSlotTable`, plus the
EXPERIMENTS.md T2 anchor point (create against 200 live bookings, which
the seed measured at ~4.8 ms). Results are written to
``benchmarks/BENCH_slot_table.json`` so the speedup claim is a
checked-in, regenerable artifact.

Tables are populated with ``force=True`` so the naive oracle's O(n²)
admission scan does not make population itself quadratic-times-n; the
timed create is a normal (admission-checked) reserve.
"""

from __future__ import annotations

import time

from repro.gara._reference import NaiveSlotTable
from repro.gara.slot_table import SlotTable
from repro.qos.vector import ResourceVector

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_slot_table.json"
SIZES = (100, 1_000, 10_000)
#: Fewer repeats for the naive table at large n (a single naive create
#: against 10k bookings costs hundreds of milliseconds).
REPEATS = {"indexed": 200, "naive": 3}
CAPACITY = ResourceVector(cpu=1e9, memory_mb=1e9, disk_mb=1e9,
                          bandwidth_mbps=1e9)
DEMAND = ResourceVector(cpu=2.0, memory_mb=64.0)


def _populate(table, count: int) -> None:
    for index in range(count):
        table.reserve(DEMAND, float(index), float(index + 50), force=True)


def _best_of(repeats: int, operation) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _measure(kind: str, table, count: int) -> "dict[str, float]":
    repeats = REPEATS[kind]
    mid = count / 2.0

    def create_and_release():
        entry = table.reserve(DEMAND, mid, mid + 50.0)
        table.release(entry)

    return {
        "create_s": _best_of(repeats, create_and_release),
        "usage_at_s": _best_of(repeats, lambda: table.usage_at(mid)),
        "available_at_s": _best_of(repeats, lambda: table.available_at(mid)),
        "peak_usage_s": _best_of(
            repeats, lambda: table.peak_usage(mid, mid + 50.0)),
    }


def test_slot_table_scaling_artifact():
    results = {"capacity": "effectively unbounded (admission never fails)",
               "workload": "n live bookings, 50-wide staggered windows",
               "metric": "best-of-N wall-clock seconds per operation",
               "sizes": {}}
    for count in SIZES:
        per_size = {}
        for kind, cls in (("indexed", SlotTable), ("naive", NaiveSlotTable)):
            table = cls(CAPACITY)
            _populate(table, count)
            per_size[kind] = _measure(kind, table, count)
        per_size["create_speedup"] = (per_size["naive"]["create_s"]
                                      / per_size["indexed"]["create_s"])
        results["sizes"][str(count)] = per_size

    # The EXPERIMENTS.md T2 anchor: create against 200 live bookings.
    anchor = {}
    for kind, cls in (("indexed", SlotTable), ("naive", NaiveSlotTable)):
        table = cls(CAPACITY)
        _populate(table, 200)
        anchor[kind] = _measure(kind, table, 200)
    speedup_200 = anchor["naive"]["create_s"] / anchor["indexed"]["create_s"]
    results["t2_anchor_n200"] = {
        "indexed_create_s": anchor["indexed"]["create_s"],
        "naive_create_s": anchor["naive"]["create_s"],
        "create_speedup": speedup_200,
    }

    write_artifact(ARTIFACT_NAME, results)

    lines = [f"{'n':>7} {'create idx':>12} {'create naive':>13} "
             f"{'speedup':>9} {'usage_at idx':>13} {'usage_at naive':>15}"]
    for count in SIZES:
        row = results["sizes"][str(count)]
        lines.append(
            f"{count:>7} {row['indexed']['create_s'] * 1e6:>10.1f}µs "
            f"{row['naive']['create_s'] * 1e3:>10.2f}ms "
            f"{row['create_speedup']:>8.0f}x "
            f"{row['indexed']['usage_at_s'] * 1e6:>11.2f}µs "
            f"{row['naive']['usage_at_s'] * 1e3:>13.3f}ms")
    lines.append(f"T2 anchor (n=200): "
                 f"{anchor['indexed']['create_s'] * 1e6:.1f}µs indexed vs "
                 f"{anchor['naive']['create_s'] * 1e3:.2f}ms naive "
                 f"({speedup_200:.0f}x)")
    report("Slot-table scaling — sweep-line index vs event-point scan",
           "\n".join(lines))

    assert speedup_200 >= 10, (
        f"create at n=200 only {speedup_200:.1f}x faster than the scan")
    # The indexed table must not degrade super-logarithmically: even at
    # 10k live bookings a create stays well under the seed's 4.8 ms.
    assert results["sizes"]["10000"]["indexed"]["create_s"] < 2e-3
