"""F5 — Figure 5: the test-bed architecture.

Clients send XML messages to the AQoS broker over the (simulated
SOAP/HTTP) message bus; the AQoS and UDDIe serve them. Benchmarks the
full XML request→offer→accept round trip including the wire encoding.
"""

from __future__ import annotations

import pytest

from repro.core.gateway import BrokerGateway, ClientStub
from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest
from repro.xmlmsg.bus import MessageBus

from .conftest import report


def wired_world():
    testbed = build_testbed()
    bus = MessageBus(testbed.sim, trace=testbed.trace)
    BrokerGateway(testbed.broker, bus)
    return testbed, ClientStub("client1", bus)


def small_request(client="client1", cpu=2):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return ServiceRequest(client=client,
                          service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=50.0)


def test_fig5_xml_flow_artifact():
    testbed, client = wired_world()
    negotiation_id, offers, reason = client.request_service(small_request())
    assert reason == ""
    sla, failure = client.accept_offer(negotiation_id)
    assert failure == ""
    rows = testbed.trace.filter(category="message")
    body = "\n".join(f"  {row.message}" for row in rows)
    report("F5 — Figure 5: XML-over-bus message flow", body)
    assert any("service_request" in row.message for row in rows)
    assert any("accept_offer" in row.message for row in rows)


def test_fig5_request_offer_accept_benchmark(benchmark):
    testbed, client = wired_world()
    counter = [0]

    def xml_round_trip():
        counter[0] += 1
        negotiation_id, offers, reason = client.request_service(
            small_request(f"client-{counter[0]}"))
        assert reason == ""
        sla, failure = client.accept_offer(negotiation_id)
        assert failure == ""
        testbed.broker.terminate_session(sla.sla_id)
        return sla

    sla = benchmark(xml_round_trip)
    assert sla is not None


def test_fig5_verification_request_benchmark(benchmark):
    testbed, client = wired_world()
    negotiation_id, _offers, _ = client.request_service(small_request())
    sla, _ = client.accept_offer(negotiation_id)

    measured_id, values = benchmark(client.verify_sla, sla.sla_id)
    assert measured_id == sla.sla_id
