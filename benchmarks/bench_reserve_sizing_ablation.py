"""X3 — ablation: sizing the adaptive reserve ``Ca``.

"The algorithm reserves an 'adaptive capacity', based on the specified
rate of resource failure or congestion provided by the system
administrator" (Section 5.4). This ablation makes that sizing rule
quantitative: with total capacity fixed at 26 nodes and the best-effort
pool fixed at 5, the split between ``Cg`` and ``Ca`` sweeps from
"no reserve" to "big reserve", under stochastic node failures of
increasing intensity. Reported per point: guaranteed violation-time
fraction and guaranteed acceptance — the provisioning trade-off the
administrator navigates.

A second ablation sweeps the protected best-effort minimum, the other
administrator knob ("a minimum capacity for 'best effort' clients").
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines import AdaptivePolicy
from repro.experiments.harness import run_policy_workload
from repro.experiments.reporting import format_table
from repro.sim.random import RandomSource
from repro.workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)

from .conftest import report

HORIZON = 600.0


def failure_events(mean_failures: int, magnitude: int, seed: int):
    """Deterministic, non-overlapping failure/repair episodes.

    Episodes are sequential so the failed capacity at any instant is
    exactly ``magnitude`` — the quantity the reserve is sized against.
    """
    rng = RandomSource(seed)
    events = []
    time = 0.0
    for _ in range(mean_failures):
        time += rng.exponential(HORIZON / (mean_failures + 1))
        if time >= HORIZON - 20.0:
            break
        duration = rng.uniform(20.0, 60.0)
        repair_at = min(HORIZON - 1.0, time + duration)
        events.append((time, -float(magnitude)))
        events.append((repair_at, float(magnitude)))
        time = repair_at  # next episode starts after this repair
    return events


def workload(seed: int):
    """A guaranteed-heavy workload that keeps ``Cg`` near-fully sold,
    so the reserve (not slack commitments) is what covers failures."""
    config = WorkloadConfig(horizon=HORIZON, class_mix=(0.8, 0.1, 0.1),
                            guaranteed_cpu=(3, 8))
    rate = arrival_rate_for_load(1.6, 26.0, config)
    return generate_workload(replace(config, arrival_rate=rate),
                             RandomSource(seed))


def test_x3_reserve_size_sweep():
    shared_workload = workload(seed=77)
    rows = []
    results = {}
    for magnitude in (4, 8, 12):
        failures = failure_events(5, magnitude, seed=magnitude)
        for ca in (0, 2, 4, 6, 8):
            cg = 21 - ca
            policy = AdaptivePolicy(cg, ca, 5, best_effort_min=2)
            result = run_policy_workload(policy, shared_workload,
                                         failures=failures)
            results[(magnitude, ca)] = result
            rows.append([magnitude, cg, ca,
                         round(result.guaranteed_acceptance, 3),
                         round(result.violation_time_fraction, 4)])
    report("X3 — sizing the adaptive reserve (Cg + Ca = 21 fixed)",
           format_table(["failure size", "Cg", "Ca", "acc(G)",
                         "viol-frac"], rows))
    for magnitude in (4, 8, 12):
        # Violations are non-increasing in the reserve size...
        fractions = [results[(magnitude, ca)].violation_time_fraction
                     for ca in (0, 2, 4, 6, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
        # ...and a reserve at least as large as the failure absorbs it
        # completely (the paper's sizing rule; episodes never overlap).
        covered = [ca for ca in (0, 2, 4, 6, 8) if ca >= magnitude]
        for ca in covered:
            assert results[(magnitude, ca)].violation_time_fraction == 0.0
    # Large failures with no reserve must hurt, or the sweep proves
    # nothing.
    assert results[(12, 0)].violation_time_fraction > 0.0
    # Acceptance falls as the reserve grows: the provisioning trade-off.
    acceptance = [results[(8, ca)].guaranteed_acceptance
                  for ca in (0, 2, 4, 6, 8)]
    assert acceptance[0] >= acceptance[-1]


def test_x3_best_effort_minimum_sweep():
    shared_workload = workload(seed=78)
    failures = failure_events(5, 8, seed=9)  # beyond the reserve
    rows = []
    fractions = []
    for minimum in (0, 1, 2, 3, 4, 5):
        policy = AdaptivePolicy(15, 6, 5, best_effort_min=minimum)
        result = run_policy_workload(policy, shared_workload,
                                     failures=failures)
        fractions.append(result.violation_time_fraction)
        rows.append([minimum,
                     round(result.violation_time_fraction, 4),
                     round(result.best_effort_cpu_time, 0)])
    report("X3b — the protected best-effort minimum under 8-node failures",
           format_table(["BE minimum", "viol-frac(G)", "BE cpu-time"],
                        rows))
    # Protecting more of Cb leaves less to raid: guaranteed violations
    # are non-decreasing in the minimum.
    assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))


def test_x3_sweep_point_benchmark(benchmark):
    shared_workload = workload(seed=77)
    failures = failure_events(5, 4, seed=4)

    def run_point():
        policy = AdaptivePolicy(15, 6, 5, best_effort_min=2)
        return run_policy_workload(policy, shared_workload,
                                   failures=failures)

    result = benchmark(run_point)
    assert result.violation_time_fraction == 0.0
