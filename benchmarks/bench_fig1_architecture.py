"""F1 — Figure 1: the multi-domain G-QoSM architecture.

Stands up the two-domain architecture (one AQoS + RM + NRM per domain,
inter-domain links between them), establishes cross-domain sessions
through the inter-domain coordinator, and benchmarks architecture
construction and cross-domain establishment.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_multidomain
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest

from .conftest import report


def cross_request(client):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 2),
        exact_parameter(Dimension.BANDWIDTH_MBPS, 50))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0,
        network=NetworkDemand("10.1.0.1", "10.2.0.1", 50.0))


def test_fig1_architecture_inventory():
    world = build_multidomain(domains=2)
    lines = []
    for domain, broker in world.brokers.items():
        lines.append(f"  {domain}: AQoS broker, RM "
                     f"({broker.compute_rm.machine.name}, "
                     f"{broker.compute_rm.machine.grid_nodes} nodes), "
                     f"NRM ({domain})")
    lines.append(f"  inter-domain links: "
                 f"{len(world.topology.links())}")
    report("F1 — Figure 1: G-QoSM architecture (2 domains)",
           "\n".join(lines))
    assert len(world.brokers) == 2


def test_fig1_construction_benchmark(benchmark):
    world = benchmark(build_multidomain, domains=2)
    assert len(world.brokers) == 2


def test_fig1_cross_domain_session_benchmark(benchmark):
    counter = [0]

    def establish_cross_domain():
        # A fresh world each round: establishment mutates global state.
        world = build_multidomain(domains=2)
        counter[0] += 1
        outcome = world.brokers["domain1"].request_service(
            cross_request(f"client-{counter[0]}"))
        assert outcome.accepted, outcome.reason
        return outcome

    outcome = benchmark(establish_cross_domain)
    assert outcome.sla is not None
