"""E56 — the Section 5.6 worked example.

Replays the paper's timeline (Cg=15/Ca=6/Cb=5, the t3 three-node
failure, SLA3's 10-node allocation, the t5 expiry) and asserts its
legible anchors; benchmarks the replay and the underlying rebalance
pass at the example's scale.
"""

from __future__ import annotations

import pytest

from repro.core.capacity import CapacityPartition
from repro.experiments.example56 import (
    format_example56,
    run_example56,
)

from .conftest import report


def test_example56_anchors():
    result = run_example56()
    report("E56 — Section 5.6 timeline (replayed)",
           format_example56(result))
    t3 = result.row("t3")
    assert t3.effective_cg == 12.0            # 3 nodes inaccessible
    assert t3.adapt_transfer == pytest.approx(2.0)  # deficit from Ca
    assert t3.sla3_served == 10.0             # min(g(u), c(u,t))
    assert result.guarantees_always_honored
    assert result.never_underutilized
    t5 = result.row("t5")
    assert t5.sla3_served == 0.0
    assert t5.best_effort_served == pytest.approx(
        result.row("t4").best_effort_served + 10.0)


def test_example56_replay_benchmark(benchmark):
    result = benchmark(run_example56)
    assert result.guarantees_always_honored


def test_example56_rebalance_benchmark(benchmark):
    """One rebalance pass at the example's scale (2 guaranteed users +
    1 best-effort borrower over 26 nodes)."""
    partition = CapacityPartition(15, 6, 5)
    partition.admit_guaranteed("sla3", 10)
    partition.admit_guaranteed("other", 4)
    partition.set_guaranteed_demand("sla3", 10)
    partition.set_guaranteed_demand("other", 4)
    partition.set_best_effort_demand("be", 26)

    result = benchmark(partition.rebalance)
    assert result.guarantees_honored


def test_rebalance_scaling_benchmark(benchmark):
    """Rebalance with 100 guaranteed users and 50 borrowers (scale
    stress for the water-fill)."""
    partition = CapacityPartition(600, 200, 200, best_effort_min=50)
    for index in range(100):
        partition.admit_guaranteed(f"g{index}", 6)
        partition.set_guaranteed_demand(f"g{index}", 6)
    for index in range(50):
        partition.set_best_effort_demand(f"b{index}", 8)

    result = benchmark(partition.rebalance)
    assert result.guarantees_honored
