"""X7 — the workload atlas: reserve sizing across scenario families.

X3 sized the adaptive reserve against synthetic non-overlapping
failure episodes on one workload shape. The atlas generalizes the
question: with the paper's partition (``Cg + Ca = 21``, ``Cb = 5``)
fixed in total, how does the ``Cg``/``Ca`` split trade guaranteed
acceptance against violation time under *each* traffic family —
diurnal swings, flash crowds, heavy tails, tenant mixes, correlated
rack outages and best-effort floods?

Two measurement layers per scenario:

* an **Algorithm-1 policy sweep** (fast path, `run_policy_workload`)
  over ``Ca ∈ {0, 2, 4, 6, 8}`` with the scenario's own compiled
  sessions and failure timeline;
* one **full-stack replay headline** (broker, batched admission,
  telemetry, verifier) at the atlas seed, whose invariants the
  regression suite already pins.

Artifact: ``BENCH_workload_atlas.json``. Reduced mode for check.sh:
``BENCH_ATLAS_SMOKE=1`` sweeps two scenarios at two reserve points,
asserts the schema and the zero-guaranteed-violation invariant, and
writes nothing.
"""

from __future__ import annotations

import os

from repro.baselines import AdaptivePolicy
from repro.experiments.harness import run_policy_workload
from repro.experiments.reporting import format_table
from repro.workloads import (DEFAULT_SEED, check_invariants,
                             replay_scenario, scenario_names, scenarios)

from .conftest import report, write_artifact

SMOKE = os.environ.get("BENCH_ATLAS_SMOKE") == "1"

#: Cg + Ca = 21 fixed, Cb = 5 — the X3 frame, per scenario family.
RESERVES = (0, 6) if SMOKE else (0, 2, 4, 6, 8)

SMOKE_SCENARIOS = ("flash_crowd_release", "rack_failure_cascade")

REPLAY_HEADLINE_KEYS = (
    "family", "sessions", "offered_load", "guaranteed_accepted",
    "guaranteed_requests", "controlled_accepted", "controlled_requests",
    "best_effort_granted", "best_effort_requests",
    "violations_detected", "guaranteed_violations", "restorations",
    "degraded_sessions", "terminated_sessions", "utilization_mean",
    "revenue")


def atlas_specs():
    if SMOKE:
        return tuple(spec for spec in scenarios()
                     if spec.name in SMOKE_SCENARIOS)
    return scenarios()


def sweep_scenario(spec):
    """The Ca sweep for one scenario on the policy fast path."""
    compiled = spec.compile(DEFAULT_SEED)
    failures = [(time, float(delta))
                for time, delta in compiled.failure_events]
    points = {}
    for ca in RESERVES:
        cg = 21 - ca
        policy = AdaptivePolicy(cg, ca, 5, best_effort_min=2)
        result = run_policy_workload(policy, compiled.workload,
                                     failures=failures)
        points[ca] = {
            "cg": cg,
            "guaranteed_acceptance":
                round(result.guaranteed_acceptance, 6),
            "violation_time_fraction":
                round(result.violation_time_fraction, 6),
            "mean_utilization": round(result.mean_utilization, 6),
            "revenue": round(result.revenue, 6),
        }
    return compiled, points


def test_x7_atlas_reserve_sizing():
    sweeps = {}
    replays = {}
    rows = []
    for spec in atlas_specs():
        compiled, points = sweep_scenario(spec)
        sweeps[spec.name] = points
        replay = replay_scenario(spec, seed=DEFAULT_SEED)
        assert check_invariants(replay) == [], \
            f"{spec.name} broke its invariants in the benchmark replay"
        replays[spec.name] = {
            key: replay.report[key] for key in REPLAY_HEADLINE_KEYS}
        replays[spec.name]["workload_fingerprint"] = \
            replay.report["workload_fingerprint"]
        for ca in RESERVES:
            rows.append([spec.name, 21 - ca, ca,
                         points[ca]["guaranteed_acceptance"],
                         points[ca]["violation_time_fraction"]])

    report("X7 — reserve sizing across the workload atlas "
           "(Cg + Ca = 21 fixed)",
           format_table(["scenario", "Cg", "Ca", "acc(G)", "viol-frac"],
                        rows))

    # Schema and invariant assertions (also the smoke contract).
    for name, points in sweeps.items():
        for ca, point in points.items():
            assert 0.0 <= point["guaranteed_acceptance"] <= 1.0
            assert 0.0 <= point["violation_time_fraction"] <= 1.0
    for name, headline in replays.items():
        assert headline["sessions"] > 0
        spec = next(s for s in atlas_specs() if s.name == name)
        if not spec.has_failures:
            # The atlas's core QoS claim: absent injected failures no
            # guaranteed SLA is ever violated, at any reserve split on
            # the full stack's own partition.
            assert headline["guaranteed_violations"] == 0

    if SMOKE:
        return
    # The correlated-failure family must show the X3 trade-off: a
    # bigger reserve strictly helps when the outage exceeds it.
    cascade = sweeps["rack_failure_cascade"]
    assert cascade[0]["violation_time_fraction"] >= \
        cascade[8]["violation_time_fraction"] - 1e-9

    write_artifact("BENCH_workload_atlas.json", {
        "seed": DEFAULT_SEED,
        "reserves": list(RESERVES),
        "scenarios": list(scenario_names()),
        "reserve_sweep": sweeps,
        "replay_headlines": replays,
    })
