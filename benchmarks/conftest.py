"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index). The regenerated artifact is printed
through :func:`report` so that ``pytest benchmarks/ --benchmark-only -s``
shows the artifacts alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import sys

import pytest


def report(title: str, body: str) -> None:
    """Print a regenerated artifact block (visible with ``-s``)."""
    bar = "=" * 72
    sys.stdout.write(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def fresh_testbed():
    """A fresh single-domain testbed per benchmark round."""
    from repro.core.testbed import build_testbed
    return build_testbed()
