"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index). The regenerated artifact is printed
through :func:`report` so that ``pytest benchmarks/ --benchmark-only -s``
shows the artifacts alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict

import pytest

#: The manifest of machine-readable benchmark artifacts.  Every
#: ``BENCH_*.json`` a bench writes must be listed here; the guard in
#: :func:`write_artifact` is what keeps the manifest from going stale.
ARTIFACTS_MANIFEST = (pathlib.Path(__file__).resolve().parent
                      / "artifacts_latest.txt")


def report(title: str, body: str) -> None:
    """Print a regenerated artifact block (visible with ``-s``)."""
    bar = "=" * 72
    sys.stdout.write(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def manifest_artifacts() -> "set[str]":
    """The BENCH_*.json names listed in ``artifacts_latest.txt``."""
    names = set()
    for line in ARTIFACTS_MANIFEST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            names.add(line)
    return names


def write_artifact(name: str, results: Dict[str, object]) -> None:
    """Write one BENCH_*.json artifact, failing loudly when unlisted.

    Raises:
        AssertionError: When ``name`` is missing from
            ``artifacts_latest.txt`` — a bench started writing a new
            artifact without updating the manifest, which is exactly
            the staleness this guard exists to stop.
    """
    listed = manifest_artifacts()
    assert name in listed, (
        f"{name} is not listed in {ARTIFACTS_MANIFEST.name} "
        f"(listed: {sorted(listed)}); add it to the manifest so "
        f"downstream readers know the artifact set changed")
    path = ARTIFACTS_MANIFEST.parent / name
    path.write_text(json.dumps(results, indent=2) + "\n")


@pytest.fixture
def fresh_testbed():
    """A fresh single-domain testbed per benchmark round."""
    from repro.core.testbed import build_testbed
    return build_testbed()
