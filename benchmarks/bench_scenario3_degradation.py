"""S3 — Scenario 3: QoS degradation under failure injection.

The classical adaptation case: capacity fails mid-session. The series
sweeps the failure magnitude and compares the paper's adaptive
partition against the static baseline — guaranteed violations stay at
zero while the failure fits inside the adaptive reserve, whereas the
static split violates immediately.
"""

from __future__ import annotations

import pytest

from repro.baselines import AdaptivePolicy, StaticPartitionPolicy
from repro.experiments.reporting import format_table

from .conftest import report


def violation_after_failure(policy, failed_nodes: float) -> float:
    """Total guaranteed shortfall after a failure, with Cg fully sold."""
    for index, commitment in enumerate((6, 5, 4)):
        assert policy.admit_guaranteed(f"u{index}", commitment)
        policy.set_guaranteed_demand(f"u{index}", commitment)
    policy.set_best_effort_demand("be", 10)
    result = policy.apply_failure(failed_nodes)
    return sum(result.shortfalls.values())


def test_scenario3_failure_sweep():
    """Adaptive vs the two static variants.

    ``static-wasted`` keeps Cg=15 and leaves the 6 reserve nodes
    unwired (a provider with spare capacity but no adaptation scheme to
    route it to guarantees); ``static-folded`` sells the reserve inside
    a Cg of 21 (no spare at all). The adaptive partition beats both:
    the reserve exists *and* automatically backs the guarantees.
    """
    rows = []
    for failed in (1, 3, 6, 9, 12):
        adaptive = violation_after_failure(
            AdaptivePolicy(15, 6, 5, best_effort_min=2), failed)
        static_wasted = violation_after_failure(
            StaticPartitionPolicy(15, 6, 5, fold_adaptive=False), failed)
        static_folded = violation_after_failure(
            StaticPartitionPolicy(15, 6, 5), failed)
        rows.append([failed, round(adaptive, 1), round(static_wasted, 1),
                     round(static_folded, 1)])
    report("S3 — Scenario 3: guaranteed shortfall vs failure size",
           format_table(["failed nodes", "adaptive", "static-wasted",
                         "static-folded"], rows))
    by_failed = {row[0]: row for row in rows}
    # The reserve absorbs up to Ca (+ raidable Cb) of failures.
    assert by_failed[3][1] == 0.0
    assert by_failed[6][1] == 0.0
    # Without the adaptation wiring, the same spare capacity does not
    # protect anyone.
    assert by_failed[6][2] > 0.0
    # Selling the reserve leaves nothing for failures either.
    assert by_failed[9][3] > 0.0
    # Adaptive never does worse than either static variant.
    assert all(row[1] <= row[2] and row[1] <= row[3] for row in rows)


def test_scenario3_adapt_benchmark(benchmark):
    """Cost of one failure -> Adapt() -> rebalance reaction."""
    policy = AdaptivePolicy(15, 6, 5, best_effort_min=2)
    for index, commitment in enumerate((6, 5, 4)):
        policy.admit_guaranteed(f"u{index}", commitment)
        policy.set_guaranteed_demand(f"u{index}", commitment)
    policy.set_best_effort_demand("be", 10)

    def fail_and_repair():
        policy.apply_failure(3)
        policy.apply_repair()

    benchmark(fail_and_repair)


def test_scenario3_full_stack_benchmark(benchmark):
    """Failure reaction through the whole broker stack."""
    from repro.core.testbed import build_testbed
    from repro.qos.classes import ServiceClass
    from repro.qos.parameters import Dimension, exact_parameter
    from repro.qos.specification import QoSSpecification
    from repro.sla.negotiation import ServiceRequest

    testbed = build_testbed()
    outcome = testbed.broker.request_service(ServiceRequest(
        client="u", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.CPU, 14)),
        start=0.0, end=1e6))
    assert outcome.accepted

    def fail_and_recover():
        testbed.machine.fail_nodes(3)
        testbed.machine.repair_nodes()

    benchmark(fail_and_recover)
    holding = testbed.broker.partition_holding(outcome.sla.sla_id)
    assert holding.served == 14.0
