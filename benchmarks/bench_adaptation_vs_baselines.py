"""X1 — the deferred quantitative evaluation: adaptation vs baselines.

The paper postpones evaluation to future work; this is that experiment.
A Poisson session workload with the three service classes sweeps the
offered load, with periodic node failures injected, and all four
policies (the paper's adaptive partition, static partitioning, FCFS and
proportional share) run the identical workload. Reported per point:
guaranteed acceptance, violation-time fraction, utilization,
best-effort throughput and provider revenue.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines import (
    AdaptivePolicy,
    FcfsPolicy,
    ProportionalSharePolicy,
    StaticPartitionPolicy,
)
from repro.experiments.harness import run_policy_workload
from repro.experiments.reporting import format_table
from repro.sim.random import RandomSource
from repro.workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)

from .conftest import report

POLICIES = (AdaptivePolicy, StaticPartitionPolicy, FcfsPolicy,
            ProportionalSharePolicy)
LOADS = (0.4, 0.8, 1.2)
FAILURES = tuple((100.0 + 150.0 * k, delta)
                 for k, deltas in enumerate(((-4.0,), (4.0,), (-4.0,),
                                             (4.0,)))
                 for delta in deltas)


def workload_at(load: float):
    config = WorkloadConfig(horizon=600.0)
    rate = arrival_rate_for_load(load, 26.0, config)
    return generate_workload(replace(config, arrival_rate=rate),
                             RandomSource(99))


def run_point(policy_class, load: float):
    policy = policy_class(15, 6, 5, best_effort_min=2)
    return run_policy_workload(policy, workload_at(load),
                               failures=FAILURES)


def test_x1_policy_sweep():
    rows = []
    results = {}
    for load in LOADS:
        for policy_class in POLICIES:
            result = run_point(policy_class, load)
            results[(load, result.policy_name)] = result
            rows.append([
                load, result.policy_name,
                round(result.guaranteed_acceptance, 3),
                round(result.violation_time_fraction, 3),
                round(result.mean_utilization, 3),
                round(result.best_effort_cpu_time, 0),
                round(result.revenue, 0),
            ])
    report("X1 — adaptation vs baselines (load sweep, failures injected)",
           format_table(["load", "policy", "acc(G)", "viol-frac",
                         "util", "BE cpu-time", "revenue"], rows))

    for load in LOADS:
        adaptive = results[(load, "adaptive")]
        static = results[(load, "static")]
        fcfs = results[(load, "fcfs")]
        proportional = results[(load, "proportional")]
        # Headline shape 1: the adaptive reserve keeps guaranteed
        # violations at zero through every 4-node failure.
        assert adaptive.violation_time_fraction == 0.0
        # Headline shape 2: best-effort work rides idle capacity under
        # the adaptive scheme but starves under the rigid split.
        assert adaptive.best_effort_cpu_time > static.best_effort_cpu_time
        # Headline shape 3: classless policies violate guarantees once
        # the system is loaded and failing.
        if load >= 0.8:
            assert max(fcfs.violation_time_fraction,
                       proportional.violation_time_fraction) > 0.0


def test_x1_single_point_benchmark(benchmark):
    result = benchmark(run_point, AdaptivePolicy, 0.8)
    assert result.violation_time_fraction == 0.0


def test_x1_full_stack_run():
    """The same evaluation through the complete broker stack.

    Unlike the fast-path policy harness, this exercises discovery,
    negotiation, GARA, monitoring, the scenario handlers and the real
    accounting ledger — so revenue here is *net of penalties* and the
    optimizer/adaptation actually move operating points.
    """
    from repro.core.testbed import build_testbed
    from repro.experiments.harness import run_broker_workload
    from repro.resources.failures import FailureSchedule

    rows = []
    for load in (0.4, 0.8):
        testbed = build_testbed(seed=7, optimizer_interval=25.0)
        testbed.broker.verifier.start_polling(10.0)
        FailureSchedule.of((100.0, -4), (250.0, 4), (400.0, -4),
                           (550.0, 4)).apply(testbed.sim,
                                             testbed.machine)
        result = run_broker_workload(testbed, workload_at(load))
        rows.append([load,
                     round(result.guaranteed_acceptance, 3),
                     round(result.controlled_acceptance, 3),
                     round(result.violation_time_fraction, 3),
                     round(result.mean_utilization, 3),
                     round(result.revenue, 0),
                     round(testbed.broker.ledger.total_penalties(), 1)])
    report("X1b — full-stack broker run (net revenue, real penalties)",
           format_table(["load", "acc(G)", "acc(CL)", "viol-frac",
                         "util", "net revenue", "penalties"], rows))
    for row in rows:
        # The reserve covers every 4-node failure end-to-end.
        assert row[3] == 0.0
        assert row[5] > 0.0
