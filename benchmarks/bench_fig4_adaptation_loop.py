"""F4 — Figure 4: the adaptation interaction loop.

One full turn of the Figure 4 loop: (1) negotiation & SLA
establishment, (2) resource allocation, (3) resource monitoring,
(4) QoS adaptation on degradation, (5) re-negotiation (restoration /
promotion). Benchmarks the degradation→adaptation reaction specifically.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions, NetworkDemand
from repro.sla.negotiation import ServiceRequest

from .conftest import report


def elastic_request(client="viz"):
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 4),
        range_parameter(Dimension.BANDWIDTH_MBPS, 100, 400))
    return ServiceRequest(
        client=client, service_name="visualization-service",
        service_class=ServiceClass.CONTROLLED_LOAD, specification=spec,
        start=0.0, end=500.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 400.0),
        adaptation=AdaptationOptions(accept_degradation=True,
                                     accept_promotion=True))


def run_loop():
    testbed = build_testbed()
    broker = testbed.broker
    outcome = broker.request_service(elastic_request())  # phases 1+2
    assert outcome.accepted
    broker.conformance_test(outcome.sla.sla_id)           # phase 3
    testbed.nrm.set_congestion("siteA", "siteB", 0.4)     # -> phase 4
    degraded = outcome.sla.is_degraded()
    testbed.nrm.set_congestion("siteA", "siteB", 1.0)
    broker.scenarios.on_service_termination()             # phase 5
    restored = not outcome.sla.is_degraded()
    return testbed, degraded, restored


def test_fig4_loop_behaviour():
    testbed, degraded, restored = run_loop()
    adaptation_rows = testbed.trace.filter(category="broker",
                                           contains="Scenario")
    body = "\n".join(f"  [{row.time:6.2f}] {row.message}"
                     for row in adaptation_rows) or "  (trace empty)"
    report("F4 — Figure 4: adaptation loop (degrade -> restore)", body)
    assert degraded
    assert restored


def test_fig4_loop_benchmark(benchmark):
    _testbed, degraded, restored = benchmark(run_loop)
    assert degraded and restored


def test_fig4_degradation_reaction_benchmark(benchmark):
    """Just the Scenario 3 reaction to an NRM notice."""
    testbed = build_testbed()
    broker = testbed.broker
    outcome = broker.request_service(elastic_request())
    assert outcome.accepted
    floor = outcome.sla.floor_point()
    best = dict(outcome.sla.agreed_point)

    def degrade_and_restore():
        testbed.nrm.set_congestion("siteA", "siteB", 0.4)
        testbed.nrm.set_congestion("siteA", "siteB", 1.0)
        broker.apply_point(outcome.sla, best)

    benchmark(degrade_and_restore)
