"""Admission throughput — batched pipeline vs sequential baseline.

The sequential broker pays one full capacity rebalance (O(n) over the
guaranteed holdings) and one journal store append per admission, so at
n=10k live bookings the rebalance dominates and throughput collapses.
``request_services`` amortizes both across the batch: one deferred
rebalance and one WAL group-commit per batch, with admit/reject
decisions byte-identical to sequential order (pinned by the
differential test in ``tests/core/test_batch_admission.py``).

Measured here, written to ``benchmarks/BENCH_throughput.json``:
admissions/sec at n=10k live GUARANTEED bookings for batch sizes
{1, 8, 64, 256}, where batch=1 is the plain ``request_service``
baseline. The acceptance gate is >=10x at batch=64.

All requests share one validity window so the slot table stays at two
boundaries and every admission does identical O(1) table work — the
quantity under test is the per-admission rebalance + commit cost, not
slot-table scaling (that is ``bench_slot_table_scaling.py``).

Batch sizes are measured in ascending order on one growing testbed:
later (larger) batch sizes face *more* live holdings than the
sequential baseline did, so the reported speedup is conservative.

``BENCH_THROUGHPUT_SMOKE=1`` switches to a reduced workload for
``scripts/check.sh``: same schema, asserts batch=64 is at least as
fast as batch=1, and skips the artifact write and the 10x gate (the
effect needs the full n to dominate the fixed per-admission cost).
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List

from repro.core.broker import ServiceRequest
from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.recover import install_journal

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_throughput.json"

SMOKE = bool(os.environ.get("BENCH_THROUGHPUT_SMOKE"))
#: Live bookings in place before measurement starts.
PRELOAD = 256 if SMOKE else 10_000
#: Admissions timed per batch size (same count for every size).
ADMISSIONS = 128 if SMOKE else 512
BATCH_SIZES = (1, 8, 64, 256)
#: Chunk size used to bring the testbed up to PRELOAD bookings.
PRELOAD_CHUNK = 256
TARGET_SPEEDUP = 10.0

#: One shared validity window — keeps every slot-table probe O(1).
WINDOW = (0.0, 1_000_000.0)


def _request(index: int) -> ServiceRequest:
    specification = QoSSpecification.from_iterable([
        exact_parameter(Dimension.CPU, 1),
        exact_parameter(Dimension.MEMORY_MB, 64),
    ])
    return ServiceRequest(
        client=f"user{index}", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification, start=WINDOW[0], end=WINDOW[1])


def _build_loaded_testbed():
    """A journaled testbed scaled to hold PRELOAD + all timed admissions."""
    headroom = PRELOAD + ADMISSIONS * len(BATCH_SIZES)
    guaranteed = headroom + 1000
    testbed = build_testbed(
        total_cpu=guaranteed + 1000,
        guaranteed_cpu=guaranteed, adaptive_cpu=600, best_effort_cpu=400,
        machine_nodes=2 * (guaranteed + 1000),
        memory_mb=float(headroom + 1000) * 64.0 * 2,
        disk_mb=float(headroom + 1000) * 64.0 * 4)
    install_journal(testbed)
    broker = testbed.broker
    admitted = 0
    while admitted < PRELOAD:
        chunk = min(PRELOAD_CHUNK, PRELOAD - admitted)
        outcomes = broker.request_services(
            [_request(admitted + i) for i in range(chunk)])
        assert all(outcome.accepted for outcome in outcomes), (
            "preload admission rejected — testbed scaled wrong")
        admitted += chunk
    return testbed, admitted


def _measure(broker, batch_size: int, first_index: int) -> Dict[str, object]:
    """Time ADMISSIONS admissions at one batch size."""
    requests = [_request(first_index + i) for i in range(ADMISSIONS)]
    gc.disable()
    try:
        started = time.perf_counter()
        if batch_size == 1:
            # The sequential baseline: the pre-batching admission path.
            for request in requests:
                broker.request_service(request)
        else:
            for offset in range(0, ADMISSIONS, batch_size):
                broker.request_services(requests[offset:offset + batch_size])
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return {
        "batch_size": batch_size,
        "admissions": ADMISSIONS,
        "elapsed_s": elapsed,
        "admissions_per_s": ADMISSIONS / elapsed,
    }


def validate_schema(results: Dict[str, object]) -> None:
    """Assert the artifact shape ``scripts/check.sh`` smoke relies on."""
    for key in ("workload", "live_bookings", "batches",
                "speedup_batch64_vs_sequential", "target_speedup"):
        assert key in results, f"BENCH_throughput results missing {key!r}"
    batches = results["batches"]
    assert [entry["batch_size"] for entry in batches] == list(BATCH_SIZES)
    for entry in batches:
        for key in ("batch_size", "admissions", "elapsed_s",
                    "admissions_per_s"):
            assert key in entry, f"batch entry missing {key!r}"
        assert entry["elapsed_s"] > 0.0


def test_throughput_artifact():
    testbed, preloaded = _build_loaded_testbed()
    broker = testbed.broker

    batches: List[Dict[str, object]] = []
    next_index = preloaded
    for batch_size in BATCH_SIZES:
        batches.append(_measure(broker, batch_size, next_index))
        next_index += ADMISSIONS

    rates = {entry["batch_size"]: entry["admissions_per_s"]
             for entry in batches}
    speedup = rates[64] / rates[1]

    results = {
        "workload": f"GUARANTEED admissions (CPU=1, 64MB, shared window) "
                    f"against {preloaded} live bookings, in-memory "
                    f"journal, {ADMISSIONS} admissions per batch size",
        "live_bookings": preloaded,
        "batches": batches,
        "speedup_batch64_vs_sequential": speedup,
        "target_speedup": TARGET_SPEEDUP,
    }
    validate_schema(results)
    if not SMOKE:
        write_artifact(ARTIFACT_NAME, results)

    lines = [f"live bookings at start: {preloaded}"]
    for entry in batches:
        lines.append(
            f"batch={entry['batch_size']:>3}:  "
            f"{entry['admissions_per_s']:>10.0f} admissions/s  "
            f"({entry['elapsed_s'] * 1e3 / ADMISSIONS:.3f}ms/admission)")
    lines.append(f"speedup at batch=64: {speedup:.1f}x "
                 f"(target >={TARGET_SPEEDUP:.0f}x)")
    report("Throughput — batched admission vs sequential baseline"
           + (" [SMOKE]" if SMOKE else ""), "\n".join(lines))

    if SMOKE:
        # Reduced-n smoke: batching must never be a pessimization.
        assert rates[64] >= rates[1], (
            f"batched admission slower than sequential in smoke mode: "
            f"{rates[64]:.0f}/s vs {rates[1]:.0f}/s")
    else:
        assert speedup >= TARGET_SPEEDUP, (
            f"batch=64 admission is only {speedup:.1f}x the sequential "
            f"baseline at n={preloaded} (target {TARGET_SPEEDUP:.0f}x)")
