"""Control-plane resilience under a message-drop sweep.

Replays a three-client Figure 2 workload at drop probabilities from 0
to 0.2 (every other fault family off, three chaos seeds per point) and
records, per point: how many sessions established, how many of those
completed, how many retries/timeouts the resilient callers spent, and
how many notifications dead-lettered. The acceptance anchor is that up
to 20% drop probability every *established* guaranteed SLA still
completes — the retry/dedup machinery converts transport loss into
latency, never into a violated guarantee. Results are written to
``benchmarks/BENCH_chaos.json`` as a regenerable artifact.
"""

from __future__ import annotations


from repro.core.testbed import build_testbed, install_chaos
from repro.errors import CircuitOpenError
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import SlaStatus
from repro.sla.negotiation import ServiceRequest

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_chaos.json"
DROP_PROBABILITIES = (0.0, 0.05, 0.1, 0.15, 0.2)
CHAOS_SEEDS = (7, 19, 31)
CLIENTS = (("user1", 6), ("user2", 5), ("user3", 4))


def _request(client: str, cpu: int) -> ServiceRequest:
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 1024))
    return ServiceRequest(client=client, service_name="simulation-service",
                          service_class=ServiceClass.GUARANTEED,
                          specification=spec, start=0.0, end=100.0)


def _run_point(drop: float, chaos_seed: int) -> "dict[str, float]":
    testbed = build_testbed()
    install_chaos(testbed, chaos_seed, drop=drop, duplicate=0.0,
                  delay=0.0, error=0.0, reorder=0.0)
    sla_ids = []
    retries = timeouts = 0
    for name, cpu in CLIENTS:
        client = testbed.client(name)
        try:
            negotiation_id, offers, _reason = client.request_service(
                _request(name, cpu))
            if negotiation_id is not None and offers:
                sla, _failure = client.accept_offer(negotiation_id)
                if sla is not None:
                    sla_ids.append(sla.sla_id)
        except CircuitOpenError:
            pass
        retries += client.caller.stats.retries
        timeouts += client.caller.stats.timeouts
    testbed.sim.run(until=150.0)
    completed = sum(
        1 for sla_id in sla_ids
        if testbed.repository.get(sla_id).status is SlaStatus.COMPLETED)
    effective_g, effective_a, effective_b = testbed.partition.effective_sizes()
    conserved = abs((effective_g + effective_a + effective_b)
                    - (testbed.partition.total - testbed.partition.failed)) \
        < 1e-9
    return {
        "established": len(sla_ids),
        "completed": completed,
        "retries": retries,
        "timeouts": timeouts,
        "dead_letters": len(testbed.bus.dead_letters),
        "faults_injected": testbed.faults.stats.dropped,
        "capacity_conserved": conserved,
    }


def test_bus_chaos_drop_sweep_artifact():
    results = {
        "workload": "3 guaranteed clients (6+5+4 CPU), Fig.2 sessions "
                    "over the bus, 0..100 validity, run to t=150",
        "fault_model": "uniform request/reply drop, all other families "
                       "off",
        "seeds": list(CHAOS_SEEDS),
        "points": [],
    }
    for drop in DROP_PROBABILITIES:
        per_seed = [_run_point(drop, seed) for seed in CHAOS_SEEDS]
        established = sum(row["established"] for row in per_seed)
        completed = sum(row["completed"] for row in per_seed)
        point = {
            "drop": drop,
            "established": established,
            "completed": completed,
            "completion_rate": (completed / established
                                if established else 1.0),
            "retries": sum(row["retries"] for row in per_seed),
            "timeouts": sum(row["timeouts"] for row in per_seed),
            "dead_letters": sum(row["dead_letters"] for row in per_seed),
            "faults_injected": sum(row["faults_injected"]
                                   for row in per_seed),
            "capacity_conserved": all(row["capacity_conserved"]
                                      for row in per_seed),
        }
        results["points"].append(point)

    write_artifact(ARTIFACT_NAME, results)

    lines = [f"{'drop':>6} {'estab':>6} {'compl':>6} {'rate':>6} "
             f"{'retries':>8} {'timeouts':>9} {'dead':>5}"]
    for point in results["points"]:
        lines.append(
            f"{point['drop']:>6.2f} {point['established']:>6} "
            f"{point['completed']:>6} {point['completion_rate']:>6.2f} "
            f"{point['retries']:>8} {point['timeouts']:>9} "
            f"{point['dead_letters']:>5}")
    report("Bus chaos — SLA completion & retry cost vs drop probability",
           "\n".join(lines))

    for point in results["points"]:
        assert point["capacity_conserved"], point["drop"]
        # The acceptance anchor: established guarantees always complete.
        assert point["completed"] == point["established"], point["drop"]
    # The sweep must actually exercise the retry machinery...
    assert results["points"][-1]["retries"] > 0
    assert results["points"][-1]["faults_injected"] > 0
    # ...and a fault-free run must spend none of it.
    assert results["points"][0]["retries"] == 0
    assert results["points"][0]["established"] == \
        3 * len(CHAOS_SEEDS)
