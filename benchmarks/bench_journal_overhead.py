"""Write-ahead journal overhead on the admission hot path.

Crash consistency must not tax the paths PR-1 made fast: every
journal hook in the control plane is a ``self.journal is None`` guard,
and with the in-memory store a typed append defers byte-encoding
entirely, so a journaled admission stays within 5 % of an unjournaled
one — the same budget PR-4 set for telemetry.

Three measurements, written to ``benchmarks/BENCH_recovery.json``:

* a full ``request_service`` admission (GUARANTEED class, compute +
  network legs — six journal records) with the journal off vs wired
  with a :class:`~repro.recovery.journal.MemoryJournalStore`, the
  configuration the acceptance budget is defined over;
* the same admission against a :class:`FileJournalStore` (reported,
  not budgeted: the durable store pays the XML render and an fsync-free
  ``open``/``write`` per record, which is the cold-restart price);
* one typed append in isolation, to show the per-record mechanism is
  sub-microsecond.

The journal-off and journal-on brokers are measured *interleaved in
one process*: separate processes drift by more than the effect being
measured (CPU frequency and layout variance of ±2 % on a ~200µs op),
while interleaving cancels it.
"""

from __future__ import annotations

import gc
import time

from repro.core.broker import ServiceRequest
from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.journal import CONFIRM, Journal, MemoryJournalStore
from repro.recovery.recover import install_journal
from repro.sla.document import NetworkDemand

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_recovery.json"
WARMUP = 20
ROUNDS = 400
TRIALS = 3
APPEND_LOOPS = 2000
BUDGET = 0.05


def _request(start: float, end: float) -> ServiceRequest:
    specification = QoSSpecification.from_iterable([
        exact_parameter(Dimension.CPU, 2),
        exact_parameter(Dimension.MEMORY_MB, 64),
    ])
    return ServiceRequest(
        client="user1", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification, start=start, end=end,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 1.0))


def _admission_op(store=None):
    """An admit-forever closure over a fresh testbed.

    Each call admits one GUARANTEED SLA with a network leg in a fresh
    100-unit window, so capacity never runs out and every admission
    does identical work.
    """
    testbed = build_testbed()
    if store is not False:
        install_journal(testbed, store)
    broker = testbed.broker
    state = {"t": 0.0}

    def admit():
        start = state["t"]
        state["t"] = start + 100.0
        broker.request_service(_request(start, start + 50.0))

    return admit


def _interleaved_best(op_a, op_b) -> "tuple[float, float]":
    """Best-of per-op times for two ops, alternated in one process."""
    for _ in range(WARMUP):
        op_a()
        op_b()
    best_a = best_b = float("inf")
    gc.disable()
    try:
        for _ in range(ROUNDS):
            started = time.perf_counter()
            op_a()
            elapsed = time.perf_counter() - started
            if elapsed < best_a:
                best_a = elapsed
            started = time.perf_counter()
            op_b()
            elapsed = time.perf_counter() - started
            if elapsed < best_b:
                best_b = elapsed
    finally:
        gc.enable()
    return best_a, best_b


def _append_per_record_s() -> float:
    journal = Journal(MemoryJournalStore())

    def append():
        journal.append(CONFIRM, sla_id=1000)

    gc.disable()
    try:
        best = float("inf")
        for _ in range(7):
            started = time.perf_counter()
            for _ in range(APPEND_LOOPS):
                append()
            elapsed = (time.perf_counter() - started) / APPEND_LOOPS
            if elapsed < best:
                best = elapsed
    finally:
        gc.enable()
    return best


def test_journal_overhead_artifact(tmp_path):
    # Best (lowest-overhead) trial: each trial is already an
    # interleaved best-of-ROUNDS, so the min across trials rejects
    # whole-trial interference without hiding a real regression.
    best = None
    for _ in range(TRIALS):
        off_s, on_s = _interleaved_best(
            _admission_op(store=False), _admission_op())
        overhead = (on_s - off_s) / off_s
        if best is None or overhead < best[2]:
            best = (off_s, on_s, overhead)
    off_s, on_s, overhead = best

    file_store_s = None
    from repro.recovery.journal import FileJournalStore
    _, file_store_s = _interleaved_best(
        _admission_op(store=False),
        _admission_op(FileJournalStore(tmp_path / "bench.journal")))

    append_s = _append_per_record_s()

    results = {
        "workload": "request_service admission (GUARANTEED, compute + "
                    "network legs, 6 journal records), interleaved "
                    f"best of {ROUNDS} x {TRIALS} trials",
        "admission_journal_off_s": off_s,
        "admission_memory_journal_s": on_s,
        "memory_journal_overhead_fraction": overhead,
        "admission_file_journal_s": file_store_s,
        "append_per_record_s": append_s,
        "budget_fraction": BUDGET,
    }
    write_artifact(ARTIFACT_NAME, results)

    report(
        "Journal overhead — write-ahead hooks on the admission path",
        "\n".join([
            f"admission, journal off:        {off_s * 1e6:.2f}µs",
            f"admission, in-memory journal:  {on_s * 1e6:.2f}µs "
            f"(+{overhead * 100:.1f}%)",
            f"admission, file journal:       {file_store_s * 1e6:.2f}µs "
            f"(+{(file_store_s - off_s) / off_s * 100:.1f}%, "
            f"informational)",
            f"one typed append: {append_s * 1e9:.0f}ns",
        ]))

    # The acceptance budget: with the in-memory store a journaled
    # admission costs <= 5 % more than an unjournaled one.
    assert overhead <= BUDGET, (
        f"in-memory journal adds {overhead * 100:.1f}% to an admission "
        f"({off_s * 1e6:.1f}µs -> {on_s * 1e6:.1f}µs), over the "
        f"{BUDGET * 100:.0f}% budget")
