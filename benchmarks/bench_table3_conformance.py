"""T3 — Table 3: the SLA conformance-test reply.

Establishes a session on the full testbed, runs the explicit SLA
verification (the Figure 7 "SLA verification test" button), regenerates
the ``<QoS_Levels>`` XML and benchmarks the measure-check-encode path.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound
from repro.xmlmsg import codec

from .conftest import report


def establish(testbed):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 64))
    outcome = testbed.broker.request_service(ServiceRequest(
        client="user1", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=1000.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33", 10.0,
                              parse_bound("LessThan 10%"))))
    assert outcome.accepted, outcome.reason
    return outcome.sla


def test_table3_artifact(fresh_testbed):
    sla = establish(fresh_testbed)
    node = fresh_testbed.broker.verifier.conformance_reply_xml(sla.sla_id)
    text = codec.render(node)
    report("T3 — Table 3: SLA conformance-test reply", text)
    assert f"<SLA-ID>{sla.sla_id}</SLA-ID>" in text
    assert "<Measured_Network_QoS>" in text
    assert "<Bandwidth>10 Mbps</Bandwidth>" in text
    assert "<Packet_Loss>LessThan 10%</Packet_Loss>" in text


def test_table3_conformance_benchmark(benchmark, fresh_testbed):
    sla = establish(fresh_testbed)
    verifier = fresh_testbed.broker.verifier

    result = benchmark(verifier.conformance_test, sla.sla_id)
    assert result.conformant


def test_table3_reply_encoding_benchmark(benchmark, fresh_testbed):
    sla = establish(fresh_testbed)
    verifier = fresh_testbed.broker.verifier

    node = benchmark(verifier.conformance_reply_xml, sla.sla_id)
    assert node.tag == "QoS_Levels"
