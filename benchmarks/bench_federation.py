"""Federation overhead — admission throughput and reroute latency.

The federated control plane puts every domain behind one shared bus
and routes each admission through a home-domain decision; the question
this bench answers is what that costs as the federation grows, and how
expensive the robustness path (home down, reroute to a survivor) is.

Measured here, written to ``benchmarks/BENCH_federation.json``, for
N = 1, 2 and 4 domains:

* ``admissions_per_s`` — batch=64 guaranteed admissions/sec through
  :meth:`FederatedControlPlane.request_services` with homes assigned
  round-robin (every request fits its home, so this is the local fast
  path plus federation bookkeeping);
* ``reroute_latency_s`` — mean wall-clock seconds per admission whose
  home broker is crashed: the plane detects the dead home, picks the
  acting survivor, records the reroute decision and admits there
  (``None`` at N=1 — no survivor exists).

``BENCH_FEDERATION_SMOKE=1`` reduces the workload for
``scripts/check.sh``: same schema and assertions, no artifact write.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, Optional

from repro.federation.plane import FederatedControlPlane
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_federation.json"

SMOKE = bool(os.environ.get("BENCH_FEDERATION_SMOKE"))
#: Timed admissions per domain count.
ADMISSIONS = 128 if SMOKE else 2048
BATCH_SIZE = 64
#: Timed rerouted admissions (home crashed) per domain count.
REROUTES = 16 if SMOKE else 256
DOMAIN_COUNTS = (1, 2, 4)

#: One shared validity window — keeps every slot-table probe O(1).
WINDOW = (0.0, 1_000_000.0)


def _request(index: int) -> ServiceRequest:
    specification = QoSSpecification.from_iterable([
        exact_parameter(Dimension.CPU, 1),
        exact_parameter(Dimension.MEMORY_MB, 64),
    ])
    return ServiceRequest(
        client=f"user{index}", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification, start=WINDOW[0], end=WINDOW[1])


def _build_plane(domains: int) -> FederatedControlPlane:
    """A plane whose every domain can hold the full timed workload."""
    headroom = ADMISSIONS + REROUTES + 1000
    return FederatedControlPlane(
        domains=domains, seed=0,
        testbed_defaults={
            "total_cpu": headroom + 1000,
            "guaranteed_cpu": headroom,
            "adaptive_cpu": 600, "best_effort_cpu": 400,
            "machine_nodes": 2 * (headroom + 1000),
            "memory_mb": float(headroom) * 64.0 * 2,
            "disk_mb": float(headroom) * 64.0 * 4,
        })


def _measure(domains: int) -> Dict[str, object]:
    plane = _build_plane(domains)
    names = plane.names
    requests = [_request(index) for index in range(ADMISSIONS)]
    homes = [names[index % domains] for index in range(ADMISSIONS)]
    gc.disable()
    try:
        started = time.perf_counter()
        for offset in range(0, ADMISSIONS, BATCH_SIZE):
            plane.request_services(
                requests[offset:offset + BATCH_SIZE],
                homes=homes[offset:offset + BATCH_SIZE])
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert plane.stats["local"] == ADMISSIONS, (
        "benchmark workload was not all admitted locally: "
        f"{plane.stats}")

    reroute_latency: Optional[float] = None
    if domains >= 2:
        plane.crash_broker(names[0])
        rerouted = [_request(ADMISSIONS + index)
                    for index in range(REROUTES)]
        gc.disable()
        try:
            started = time.perf_counter()
            for request in rerouted:
                plane.request_service(request, home=names[0])
            reroute_elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        assert plane.stats["rerouted"] == REROUTES, (
            f"expected {REROUTES} reroutes: {plane.stats}")
        reroute_latency = reroute_elapsed / REROUTES

    return {
        "domains": domains,
        "admissions": ADMISSIONS,
        "batch_size": BATCH_SIZE,
        "elapsed_s": elapsed,
        "admissions_per_s": ADMISSIONS / elapsed,
        "reroutes": REROUTES if domains >= 2 else 0,
        "reroute_latency_s": reroute_latency,
    }


def validate_schema(results: Dict[str, object]) -> None:
    """Assert the artifact shape ``scripts/check.sh`` smoke relies on."""
    for key in ("workload", "admissions", "batch_size", "domain_counts",
                "domains"):
        assert key in results, f"BENCH_federation results missing {key!r}"
    for count in DOMAIN_COUNTS:
        entry = results["domains"][str(count)]
        for key in ("domains", "admissions", "batch_size", "elapsed_s",
                    "admissions_per_s", "reroutes", "reroute_latency_s"):
            assert key in entry, f"N={count} entry missing {key!r}"
        assert entry["elapsed_s"] > 0.0
        if count == 1:
            assert entry["reroute_latency_s"] is None
        else:
            assert entry["reroute_latency_s"] > 0.0


def test_federation_scaling_artifact():
    measured = {str(count): _measure(count) for count in DOMAIN_COUNTS}
    results = {
        "workload": f"GUARANTEED admissions (CPU=1, 64MB, shared "
                    f"window), homes round-robin, batch={BATCH_SIZE}, "
                    f"{ADMISSIONS} timed admissions and {REROUTES} "
                    f"timed reroutes (home crashed) per domain count",
        "admissions": ADMISSIONS,
        "batch_size": BATCH_SIZE,
        "domain_counts": list(DOMAIN_COUNTS),
        "domains": measured,
    }
    validate_schema(results)
    if not SMOKE:
        write_artifact(ARTIFACT_NAME, results)

    lines = []
    for count in DOMAIN_COUNTS:
        entry = measured[str(count)]
        latency = entry["reroute_latency_s"]
        lines.append(
            f"N={count}: {entry['admissions_per_s']:>10.0f} admissions/s"
            + (f"   reroute {latency * 1e6:>8.1f} us"
               if latency is not None else "   reroute        n/a"))
    report("Federation — admission throughput and reroute latency"
           + (" [SMOKE]" if SMOKE else ""), "\n".join(lines))
