"""X5 — AQoS peering: cross-domain request overflow (Figure 1).

When a broker's own domain is full, Figure 1's AQoS-to-AQoS
interconnections let it forward requests to its neighbors. The series
compares acceptance through one broker with and without peering as the
offered burst grows past a single domain's capacity.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_multidomain
from repro.experiments.reporting import format_table
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.negotiation import ServiceRequest

from .conftest import report


def burst(count: int, cpu: int = 5):
    spec = QoSSpecification.of(exact_parameter(Dimension.CPU, cpu))
    return [ServiceRequest(client=f"client-{index}",
                           service_name="simulation-service",
                           service_class=ServiceClass.GUARANTEED,
                           specification=spec, start=0.0, end=100.0)
            for index in range(count)]


def admitted_through_domain1(count: int, *, domains: int,
                             peered: bool) -> int:
    world = build_multidomain(domains=domains)
    broker = world.brokers["domain1"]
    if not peered:
        broker._peers.clear()  # noqa: SLF001 — the ablation knob
    return sum(1 for request in burst(count)
               if broker.request_service(request).accepted)


def test_x5_overflow_series():
    rows = []
    for count in (2, 4, 6, 8, 10):
        alone = admitted_through_domain1(count, domains=2, peered=False)
        two = admitted_through_domain1(count, domains=2, peered=True)
        three = admitted_through_domain1(count, domains=3, peered=True)
        rows.append([count, alone, two, three])
    report("X5 — request overflow via AQoS peering (5-CPU guaranteed "
           "requests, Cg=15 per domain)",
           format_table(["offered", "1 domain", "2 peered", "3 peered"],
                        rows))
    by_count = {row[0]: row for row in rows}
    # A single domain saturates at floor(15/5) = 3 sessions.
    assert by_count[6][1] == 3
    # Peering doubles / triples the admissible burst.
    assert by_count[6][2] == 6
    assert by_count[10][3] == 9
    # Monotonicity: more peers never admit fewer.
    assert all(row[1] <= row[2] <= row[3] for row in rows)


def test_x5_forwarding_benchmark(benchmark):
    def run():
        return admitted_through_domain1(6, domains=2, peered=True)

    admitted = benchmark(run)
    assert admitted == 6
