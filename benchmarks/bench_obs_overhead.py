"""Observability overhead — provenance disabled vs enabled.

Decision provenance follows the telemetry guard discipline: every
broker/capacity/verifier emit site pays exactly one ``is not None``
check when ``install_observability`` has not run, with all expensive
context building (candidate lists, headroom reads, f-strings) behind
the guard.  The acceptance gate for this PR is that the disabled-mode
batch=64 admission rate stays within 5% of the recorded
``BENCH_throughput.json`` batch=64 rate — i.e. the guards are free.

Measured here, written to ``benchmarks/BENCH_obs.json``:

* ``disabled`` — batch=64 admissions/sec on a journaled testbed with
  the same workload shape as ``bench_throughput.py`` (n=10k live
  GUARANTEED bookings), observability NOT installed;
* ``enabled`` — the same measurement with ``install_observability``
  wired (decision log + SLO engine + event-stream emits), reported for
  context (no gate — enabled-mode cost buys the flight recorder);
* ``overhead_disabled_fraction`` — (reference - disabled)/reference
  against the recorded BENCH_throughput batch=64 rate.

``BENCH_OBS_SMOKE=1`` reduces the workload for ``scripts/check.sh``:
same schema, asserts only that the disabled run completes and decisions
stay un-recorded, and skips the artifact write and the 5% gate (the
gate needs full-n rates on a quiet machine to be meaningful).
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time
from typing import Dict

from repro.core.broker import ServiceRequest
from repro.core.testbed import build_testbed, install_observability
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.recovery.recover import install_journal

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_obs.json"
REFERENCE_ARTIFACT = "BENCH_throughput.json"

SMOKE = bool(os.environ.get("BENCH_OBS_SMOKE"))
#: Live bookings in place before measurement starts.
PRELOAD = 256 if SMOKE else 10_000
#: Admissions timed per mode.
ADMISSIONS = 128 if SMOKE else 512
BATCH_SIZE = 64
PRELOAD_CHUNK = 256
#: The acceptance gate: disabled-mode overhead vs the recorded
#: BENCH_throughput batch=64 rate.
MAX_DISABLED_OVERHEAD = 0.05

#: One shared validity window — keeps every slot-table probe O(1).
WINDOW = (0.0, 1_000_000.0)


def _request(index: int) -> ServiceRequest:
    specification = QoSSpecification.from_iterable([
        exact_parameter(Dimension.CPU, 1),
        exact_parameter(Dimension.MEMORY_MB, 64),
    ])
    return ServiceRequest(
        client=f"user{index}", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification, start=WINDOW[0], end=WINDOW[1])


def _build_loaded_testbed(observed: bool):
    """A journaled testbed matching bench_throughput's workload shape."""
    headroom = PRELOAD + ADMISSIONS
    guaranteed = headroom + 1000
    testbed = build_testbed(
        total_cpu=guaranteed + 1000,
        guaranteed_cpu=guaranteed, adaptive_cpu=600, best_effort_cpu=400,
        machine_nodes=2 * (guaranteed + 1000),
        memory_mb=float(headroom + 1000) * 64.0 * 2,
        disk_mb=float(headroom + 1000) * 64.0 * 4)
    install_journal(testbed)
    if observed:
        install_observability(testbed)
    broker = testbed.broker
    admitted = 0
    while admitted < PRELOAD:
        chunk = min(PRELOAD_CHUNK, PRELOAD - admitted)
        outcomes = broker.request_services(
            [_request(admitted + i) for i in range(chunk)])
        assert all(outcome.accepted for outcome in outcomes), (
            "preload admission rejected — testbed scaled wrong")
        admitted += chunk
    return testbed, admitted


def _measure(observed: bool) -> Dict[str, object]:
    """Time ADMISSIONS batch=64 admissions with provenance on or off."""
    testbed, preloaded = _build_loaded_testbed(observed)
    broker = testbed.broker
    requests = [_request(preloaded + i) for i in range(ADMISSIONS)]
    gc.disable()
    try:
        started = time.perf_counter()
        for offset in range(0, ADMISSIONS, BATCH_SIZE):
            broker.request_services(requests[offset:offset + BATCH_SIZE])
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    if observed:
        assert testbed.decisions is not None
        assert len(testbed.decisions) >= preloaded + ADMISSIONS, (
            "enabled mode recorded fewer decisions than admissions")
    else:
        assert broker.decisions is None, (
            "disabled mode must leave the decision log uninstalled")
    return {
        "observed": observed,
        "live_bookings": preloaded,
        "admissions": ADMISSIONS,
        "batch_size": BATCH_SIZE,
        "elapsed_s": elapsed,
        "admissions_per_s": ADMISSIONS / elapsed,
    }


def _reference_rate() -> "float | None":
    """The recorded BENCH_throughput batch=64 admissions/sec."""
    path = pathlib.Path(__file__).resolve().parent / REFERENCE_ARTIFACT
    if not path.exists():
        return None
    recorded = json.loads(path.read_text())
    for entry in recorded.get("batches", ()):
        if entry.get("batch_size") == BATCH_SIZE:
            return float(entry["admissions_per_s"])
    return None


def validate_schema(results: Dict[str, object]) -> None:
    """Assert the artifact shape ``scripts/check.sh`` smoke relies on."""
    for key in ("workload", "disabled", "enabled",
                "reference_admissions_per_s", "overhead_disabled_fraction",
                "max_disabled_overhead"):
        assert key in results, f"BENCH_obs results missing {key!r}"
    for mode in ("disabled", "enabled"):
        entry = results[mode]
        for key in ("observed", "live_bookings", "admissions",
                    "batch_size", "elapsed_s", "admissions_per_s"):
            assert key in entry, f"{mode} entry missing {key!r}"
        assert entry["elapsed_s"] > 0.0


def test_obs_overhead_artifact():
    disabled = _measure(observed=False)
    enabled = _measure(observed=True)

    reference = _reference_rate()
    if reference is not None and reference > 0.0:
        overhead = (reference - disabled["admissions_per_s"]) / reference
    else:
        overhead = 0.0

    results = {
        "workload": f"GUARANTEED admissions (CPU=1, 64MB, shared window) "
                    f"against {disabled['live_bookings']} live bookings, "
                    f"in-memory journal, batch={BATCH_SIZE}, "
                    f"{ADMISSIONS} timed admissions per mode",
        "disabled": disabled,
        "enabled": enabled,
        "reference_admissions_per_s": reference,
        "overhead_disabled_fraction": overhead,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    validate_schema(results)
    if not SMOKE:
        write_artifact(ARTIFACT_NAME, results)

    enabled_cost = (1.0 - enabled["admissions_per_s"]
                    / disabled["admissions_per_s"])
    lines = [
        f"disabled: {disabled['admissions_per_s']:>10.0f} admissions/s",
        f"enabled:  {enabled['admissions_per_s']:>10.0f} admissions/s "
        f"({enabled_cost:+.1%} vs disabled)",
        f"reference (BENCH_throughput batch=64): "
        + (f"{reference:.0f} admissions/s" if reference else "missing"),
        f"disabled-mode overhead vs reference: {overhead:+.1%} "
        f"(gate <= {MAX_DISABLED_OVERHEAD:.0%})",
    ]
    report("Observability — guard overhead on the batched admission path"
           + (" [SMOKE]" if SMOKE else ""), "\n".join(lines))

    if not SMOKE:
        assert overhead <= MAX_DISABLED_OVERHEAD, (
            f"disabled-mode provenance guards cost {overhead:.1%} on the "
            f"batch={BATCH_SIZE} admission path (gate "
            f"{MAX_DISABLED_OVERHEAD:.0%} vs recorded "
            f"{REFERENCE_ARTIFACT})")
