"""T4 — Table 4: a negotiated SLA with adaptation options.

Runs a controlled-load negotiation whose accepted offer carries
alternative QoS points and a promotion-offer flag, regenerates the
``<Service_SLA>`` document of Table 4, and benchmarks the negotiation
plus document encoding.
"""

from __future__ import annotations

import pytest

from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions
from repro.sla.negotiation import ServiceRequest
from repro.xmlmsg import codec

from .conftest import report


def table4_request(client="user2"):
    spec = QoSSpecification.of(
        range_parameter(Dimension.CPU, 10, 15),
        range_parameter(Dimension.MEMORY_MB, 48, 64),
        range_parameter(Dimension.BANDWIDTH_MBPS, 45, 100))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=spec, start=0.0, end=200.0,
        adaptation=AdaptationOptions(
            alternative_points=({Dimension.CPU: 10.0,
                                 Dimension.MEMORY_MB: 48.0,
                                 Dimension.BANDWIDTH_MBPS: 45.0},),
            accept_promotion=True))


def test_table4_artifact(fresh_testbed):
    outcome = fresh_testbed.broker.request_service(table4_request())
    assert outcome.accepted, outcome.reason
    text = codec.render(codec.encode_service_sla(outcome.sla))
    report("T4 — Table 4: negotiated SLA with adaptation options", text)
    assert "<QoS_Class>Controlled-load</QoS_Class>" in text
    assert "<Alternative_QoS>" in text
    assert "<Memory>48MB</Memory>" in text
    assert "<Bandwidth>45 Mbps</Bandwidth>" in text
    assert "<Promotion_Offer>Accept</Promotion_Offer>" in text


def test_table4_negotiation_benchmark(benchmark, fresh_testbed):
    broker = fresh_testbed.broker
    counter = [0]

    def negotiate_only():
        counter[0] += 1
        negotiation, reason = broker.negotiate(
            table4_request(client=f"user-{counter[0]}"))
        assert not reason
        return negotiation

    negotiation = benchmark(negotiate_only)
    assert negotiation.offers


def test_table4_document_encoding_benchmark(benchmark, fresh_testbed):
    outcome = fresh_testbed.broker.request_service(table4_request())
    sla = outcome.sla

    def encode_decode():
        return codec.decode_service_sla(codec.encode_service_sla(sla))

    decoded = benchmark(encode_decode)
    assert decoded.adaptation.accept_promotion
