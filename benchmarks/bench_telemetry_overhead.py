"""Telemetry disabled-mode overhead on the reservation hot path.

The PR-1 speedup claim must survive instrumentation: every telemetry
hook in the hot path is a single ``self.telemetry is None`` attribute
check, so the disabled-mode cost per GARA operation has to stay within
noise of the slot-table admission itself (budget: <= 5 % of an indexed
create at the EXPERIMENTS.md T2 anchor of 200 live bookings).

Three measurements, written to ``benchmarks/BENCH_telemetry.json``:

* the raw slot-table create/release at 200 live bookings (the PR-1
  baseline this PR must not regress);
* a full GARA ``reservation_create`` + ``cancel`` round trip with
  telemetry off vs installed (what the broker actually pays);
* the guard primitive itself — an attribute load plus ``is None``
  branch — measured directly, to show the disabled-mode mechanism is
  nanoseconds, not microseconds.
"""

from __future__ import annotations

import time

from repro.gara.api import GaraApi
from repro.gara.slot_table import SlotTable
from repro.qos.vector import ResourceVector
from repro.rsl.builder import reservation_rsl
from repro.sim.engine import Simulator
from repro.telemetry import Telemetry

from .conftest import report, write_artifact

ARTIFACT_NAME = "BENCH_telemetry.json"
LIVE_BOOKINGS = 200
REPEATS = 400
GUARD_LOOPS = 100_000
CAPACITY = ResourceVector(cpu=1e9, memory_mb=1e9, disk_mb=1e9,
                          bandwidth_mbps=1e9)
DEMAND = ResourceVector(cpu=2.0, memory_mb=64.0)
RSL = reservation_rsl(DEMAND, 100.0, 150.0)


def _best_of(repeats: int, operation) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _populated_table() -> SlotTable:
    table = SlotTable(CAPACITY)
    for index in range(LIVE_BOOKINGS):
        table.reserve(DEMAND, float(index), float(index + 50),
                      force=True)
    return table


def _gara(telemetry_on: bool) -> GaraApi:
    sim = Simulator()
    api = GaraApi(sim, _populated_table(), name="bench-gara")
    if telemetry_on:
        api.telemetry = Telemetry(now=lambda: sim.now)
    return api


def _gara_round_trip_s(api: GaraApi) -> float:
    def create_and_cancel():
        handle = api.reservation_create(RSL, temporary=False)
        api.reservation_cancel(handle)

    return _best_of(REPEATS, create_and_cancel)


def _guard_cost_s() -> float:
    """Cost of one disabled-mode hook: attr load + ``is None`` branch."""

    class Host:
        telemetry = None

    host = Host()
    loops = range(GUARD_LOOPS)

    def guarded():
        for _ in loops:
            if host.telemetry is not None:
                raise AssertionError  # pragma: no cover - never taken

    def empty():
        for _ in loops:
            pass

    guarded_s = _best_of(7, guarded)
    empty_s = _best_of(7, empty)
    return max(0.0, guarded_s - empty_s) / GUARD_LOOPS


def test_telemetry_overhead_artifact():
    table = _populated_table()

    def create_and_release():
        entry = table.reserve(DEMAND, 100.0, 150.0)
        table.release(entry)

    slot_create_s = _best_of(REPEATS, create_and_release)
    disabled_s = _gara_round_trip_s(_gara(telemetry_on=False))
    enabled_s = _gara_round_trip_s(_gara(telemetry_on=True))
    guard_s = _guard_cost_s()

    results = {
        "workload": f"create+cancel against {LIVE_BOOKINGS} live "
                    f"bookings, best of {REPEATS}",
        "slot_table_create_s": slot_create_s,
        "gara_disabled_s": disabled_s,
        "gara_enabled_s": enabled_s,
        "guard_per_op_s": guard_s,
        "guard_fraction_of_create": guard_s / slot_create_s,
        "enabled_overhead_fraction": (enabled_s - disabled_s)
        / disabled_s,
    }
    write_artifact(ARTIFACT_NAME, results)

    report(
        "Telemetry overhead — disabled-mode guards on the hot path",
        "\n".join([
            f"slot-table create+release (n={LIVE_BOOKINGS}): "
            f"{slot_create_s * 1e6:.2f}µs",
            f"GARA create+cancel, telemetry off:  "
            f"{disabled_s * 1e6:.2f}µs",
            f"GARA create+cancel, telemetry on:   "
            f"{enabled_s * 1e6:.2f}µs "
            f"(+{results['enabled_overhead_fraction'] * 100:.1f}%)",
            f"one None-guard: {guard_s * 1e9:.1f}ns "
            f"({results['guard_fraction_of_create'] * 100:.3f}% of a "
            f"create)",
        ]))

    # The acceptance budget: a disabled hook must cost <= 5 % of a
    # slot-table admission. One guard is the per-hook price.
    assert guard_s <= 0.05 * slot_create_s, (
        f"disabled-mode guard costs {guard_s * 1e9:.0f}ns, more than "
        f"5% of a {slot_create_s * 1e6:.1f}µs create")
