"""X4 — the value of broker-level adaptation under congestion.

Full-stack ablation: elastic sessions ride a link hit by stochastic
congestion episodes. With the Scenario 3 handler enabled, degraded
sessions are moved to their pre-agreed lower QoS (and restored later);
with the handler disabled, every degradation notice turns into SLA
penalties. The difference is the monetary value of the paper's
adaptation scheme.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.experiments.reporting import format_table
from repro.network.congestion import CongestionInjector
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sim.random import RandomSource
from repro.sla.document import AdaptationOptions, NetworkDemand
from repro.sla.negotiation import ServiceRequest

from .conftest import report

HORIZON = 400.0


POLL_INTERVAL = 5.0


def run_world(*, adaptation_enabled: bool, seed: int = 3,
              sessions: int = 3, penalty_rate: float = 1.0):
    from repro.qos.cost import PricingPolicy
    # The periodic optimizer is the restore path once congestion
    # clears (Section 5.5: "executed periodically by the AQoS broker").
    testbed = build_testbed(seed=seed, optimizer_interval=20.0,
                            pricing=PricingPolicy(
                                violation_penalty_rate=penalty_rate))
    broker = testbed.broker
    if not adaptation_enabled:
        # Sever the Scenario 3 reaction; periodic SLA-Verif polling
        # still detects the degradation and books penalties over each
        # violated poll interval.
        def penalize_only(notice):
            try:
                sla = broker.repository.get(notice.sla_id)
            except Exception:
                return
            if sla.status.is_live:
                broker.penalize(sla, notice, duration=POLL_INTERVAL)

        broker.scenarios.on_degradation = penalize_only
    broker.verifier.start_polling(POLL_INTERVAL)
    slas = []
    for index in range(sessions):
        outcome = broker.request_service(ServiceRequest(
            client=f"tenant-{index}",
            service_name="visualization-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=QoSSpecification.of(
                range_parameter(Dimension.CPU, 1, 3),
                range_parameter(Dimension.BANDWIDTH_MBPS, 40, 150)),
            start=0.0, end=HORIZON,
            network=NetworkDemand("135.200.50.101", "192.200.168.33",
                                  150.0),
            adaptation=AdaptationOptions(accept_degradation=True,
                                         accept_promotion=True)))
        assert outcome.accepted, outcome.reason
        slas.append(outcome.sla)
    injector = CongestionInjector(
        testbed.sim, testbed.nrm,
        links=[testbed.topology.link("siteA", "siteB")],
        rng=testbed.rng.stream("congestion"),
        mtbc=60.0, mean_duration=25.0, severity=(0.4, 0.7))
    injector.start()
    testbed.sim.run(until=HORIZON + 10.0)
    penalties = broker.ledger.total_penalties()
    net = broker.ledger.provider_net(testbed.sim.now)
    adaptations = broker.scenarios.stats.self_degradations
    episodes = len(injector.episodes)
    return penalties, net, adaptations, episodes


def test_x4_adaptation_value_table():
    """Sweep the SLA penalty rate to expose the economics.

    A non-adaptive provider keeps billing full rate while delivering
    degraded service and only pays proportional refunds — at a low
    penalty rate, breaking promises is profitable. As the negotiated
    penalty rate rises (Section 5.2 lists "SLA violation penalties"
    among the agreed terms), adaptation — honest re-billing at the
    degraded quality — overtakes.
    """
    rows = []
    nets = {}
    for penalty_rate in (1.0, 3.0, 6.0, 10.0):
        on = run_world(adaptation_enabled=True,
                       penalty_rate=penalty_rate)
        off = run_world(adaptation_enabled=False,
                        penalty_rate=penalty_rate)
        nets[penalty_rate] = (on[1], off[1])
        rows.append([penalty_rate,
                     round(on[0], 1), round(on[1], 1),
                     round(off[0], 1), round(off[1], 1),
                     on[2]])
        assert on[3] >= 2            # congestion actually struck
        assert on[2] >= 1            # Scenario 3 actually adapted
        assert on[0] < off[0]        # adaptation avoids penalties
    report("X4 — value of Scenario 3 adaptation vs SLA penalty rate",
           format_table(
               ["penalty rate", "ON penalties", "ON net",
                "OFF penalties", "OFF net", "self-degradations"],
               rows))
    # The adaptive provider's net is penalty-rate-invariant (no
    # violations to refund)...
    on_nets = [nets[rate][0] for rate in (1.0, 3.0, 6.0, 10.0)]
    assert max(on_nets) - min(on_nets) < 1e-6
    # ...while the violator's net falls monotonically and eventually
    # drops below the adaptive provider's.
    off_nets = [nets[rate][1] for rate in (1.0, 3.0, 6.0, 10.0)]
    assert all(a >= b for a, b in zip(off_nets, off_nets[1:]))
    assert off_nets[-1] < on_nets[-1]


def test_x4_run_benchmark(benchmark):
    penalties, _net, adaptations, _episodes = benchmark(
        run_world, adaptation_enabled=True)
    assert adaptations >= 1
