"""S2 — Scenario 2: service termination frees resources.

Synthetic evaluation of the second adaptation scenario: while a
blocking guaranteed session runs, controlled-load sessions are held at
degraded quality; when it terminates, the broker (a) restores degraded
sessions, (b) upgrades via the optimizer and (c) issues promotion
offers. The regenerated series shows the revenue-rate step at the
termination instant.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.experiments.reporting import format_table
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter, range_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import AdaptationOptions
from repro.sla.negotiation import ServiceRequest

from .conftest import report


def build_world(elastic_count=3, blocker_cpu=12, blocker_end=100.0):
    testbed = build_testbed()
    broker = testbed.broker
    elastic = []
    for index in range(elastic_count):
        outcome = broker.request_service(ServiceRequest(
            client=f"elastic-{index}",
            service_name="simulation-service",
            service_class=ServiceClass.CONTROLLED_LOAD,
            specification=QoSSpecification.of(
                range_parameter(Dimension.CPU, 1, 4)),
            start=0.0, end=400.0,
            adaptation=AdaptationOptions(accept_degradation=True,
                                         accept_promotion=True)))
        assert outcome.accepted
        elastic.append(outcome.sla)
    blocker = broker.request_service(ServiceRequest(
        client="blocker", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.CPU, blocker_cpu)),
        start=0.0, end=blocker_end))
    assert blocker.accepted
    # The blocker's arrival squeezed the elastic sessions via the
    # broker's reservation retry; squeeze any stragglers explicitly to
    # model a heavily adapted state.
    for sla in elastic:
        broker.apply_point(sla, sla.floor_point())
    return testbed, broker, elastic, blocker


def test_scenario2_revenue_step():
    testbed, broker, elastic, blocker = build_world()
    sim = testbed.sim
    sim.run(until=99.0)
    rate_before = sum(broker.ledger.account(sla.sla_id).current_rate
                      for sla in elastic)
    sim.run(until=110.0)  # blocker completes at t=100
    rate_after = sum(broker.ledger.account(sla.sla_id).current_rate
                     for sla in elastic)
    upgraded = sum(1 for sla in elastic if not sla.is_degraded())
    promotions = sum(broker.ledger.account(sla.sla_id).promotions_offered
                     for sla in elastic)
    report("S2 — Scenario 2: revenue step at service termination",
           format_table(
               ["metric", "value"],
               [["elastic sessions", len(elastic)],
                ["sum of rates before termination", round(rate_before, 2)],
                ["sum of rates after termination", round(rate_after, 2)],
                ["sessions restored to agreed QoS", upgraded],
                ["promotion offers issued", promotions],
                ["scenario-2 restorations",
                 broker.scenarios.stats.restorations]]))
    assert rate_after > rate_before
    assert upgraded == len(elastic)


def test_scenario2_reaction_benchmark(benchmark):
    def run():
        testbed, broker, elastic, _blocker = build_world()
        testbed.sim.run(until=110.0)
        return sum(1 for sla in elastic if not sla.is_degraded())

    upgraded = benchmark(run)
    assert upgraded == 3
