"""F2 — Figure 2: the full component interaction sequence.

Benchmarks one complete session through every arrow of the sequence
diagram — QueryServices, resource queries, SLA negotiation, resource
allocation, service invocation, QoS management, clearing — and prints
the interaction trace that reproduces the diagram.
"""

from __future__ import annotations

import pytest

from repro.core.testbed import build_testbed
from repro.qos.classes import ServiceClass
from repro.qos.parameters import Dimension, exact_parameter
from repro.qos.specification import QoSSpecification
from repro.sla.document import NetworkDemand
from repro.sla.negotiation import ServiceRequest
from repro.units import parse_bound

from .conftest import report


def session_request(client="scientists"):
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 10),
        exact_parameter(Dimension.MEMORY_MB, 2048),
        exact_parameter(Dimension.DISK_MB, 15360))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33",
                              100.0, parse_bound("LessThan 10%")))


def run_full_sequence():
    testbed = build_testbed()
    outcome = testbed.broker.request_service(session_request())
    assert outcome.accepted, outcome.reason
    testbed.broker.conformance_test(outcome.sla.sla_id)
    testbed.sim.run(until=120.0)
    return testbed, outcome


def test_fig2_sequence_trace():
    from repro.experiments.sequence import figure2_diagram
    testbed, outcome = run_full_sequence()
    report("F2 — Figure 2: component interaction sequence",
           figure2_diagram(testbed.trace))
    messages = [entry.message for entry in testbed.trace]
    assert any("discovery" in m for m in messages)
    assert any("temporarily reserved" in m for m in messages)
    assert any("launched" in m for m in messages)
    assert any("conformance test" in m for m in messages)
    assert any("closed" in m for m in messages)


def test_fig2_full_session_benchmark(benchmark):
    testbed, outcome = benchmark(run_full_sequence)
    assert not outcome.sla.status.is_live


def test_fig2_establishment_only_benchmark(benchmark):
    """Establishment latency (the discovery→allocation half)."""
    testbed = build_testbed()
    counter = [0]

    def establish():
        counter[0] += 1
        outcome = testbed.broker.request_service(
            session_request(f"client-{counter[0]}"))
        assert outcome.accepted
        testbed.broker.terminate_session(outcome.sla.sla_id)
        return outcome

    benchmark(establish)
